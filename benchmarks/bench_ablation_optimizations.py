"""Ablation — the Section 5.3 kNDS optimizations, toggled individually.

Records total time, DRC probes, pruned candidates and traversal volume
for: everything on, no bound pruning (optimization 1), no covered-
coverage shortcut (optimization 3), and no traversal-state dedup (the
paper's label-free BFS).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import ablation_optimizations
from repro.bench.workloads import random_concept_queries
from repro.core.knds import KNDSConfig


@pytest.mark.parametrize("variant", ["all_on", "no_pruning", "no_dedupe"])
def test_benchmark_variants(benchmark, world, variant):
    corpus = "RADIO"
    query = random_concept_queries(world.corpus(corpus), nq=5, count=1,
                                   seed=29)[0]
    configs = {
        "all_on": KNDSConfig(error_threshold=0.9),
        "no_pruning": KNDSConfig(error_threshold=0.9,
                                 prune_on_update=False,
                                 prune_at_pop=False),
        "no_dedupe": KNDSConfig(error_threshold=0.9, dedupe=False),
    }
    searcher = world.searchers[corpus]
    results = benchmark.pedantic(
        lambda: searcher.rds(query, 10, config=configs[variant]),
        rounds=3, iterations=1)
    assert len(results) == 10


def test_report_ablation_optimizations(benchmark, record, scale):
    table = benchmark.pedantic(
        lambda: ablation_optimizations(scale=scale), rounds=1, iterations=1)
    by_variant = {row[0]: row for row in table.rows}
    pruned_on = int(by_variant["all on"][3].replace(",", ""))
    pruned_off = int(by_variant["no pruning"][3].replace(",", ""))
    assert pruned_on >= pruned_off  # pruning disabled => nothing pruned
    visited_on = int(by_variant["all on"][4].replace(",", ""))
    visited_off = int(by_variant["no state dedupe"][4].replace(",", ""))
    assert visited_off >= visited_on
    record("ablation_optimizations", table)
