"""Figure 6 — distance calculation time vs query size (SDS).

Micro-benchmarks a single ``Ddd`` computation for both methods at several
document sizes, and records the full BL-vs-DRC series for both corpora.
The reproduction target is the *shape*: BL quadratic in nq, DRC
sub-quadratic, with DRC winning at realistic EMR document sizes.
"""

from __future__ import annotations

import pytest

from repro.baselines.pairwise import PairwiseDistanceBaseline
from repro.bench.experiments import fig6_distance_calc
from repro.bench.workloads import random_query_documents
from repro.core.drc import DRC


def _pair(world, corpus, nq):
    docs = random_query_documents(world.corpus(corpus), nq=nq, count=2,
                                  seed=nq)
    return docs[0].concepts, docs[1].concepts


@pytest.mark.parametrize("nq", [10, 80, 240])
@pytest.mark.parametrize("corpus", ["PATIENT", "RADIO"])
def test_benchmark_drc(benchmark, world, corpus, nq):
    left, right = _pair(world, corpus, nq)
    drc = DRC(world.ontology, world.dewey)
    drc.document_document_distance(left, right)  # warm Dewey cache
    value = benchmark(
        lambda: drc.document_document_distance(left, right))
    assert value >= 0


@pytest.mark.parametrize("nq", [10, 80, 240])
@pytest.mark.parametrize("corpus", ["PATIENT", "RADIO"])
def test_benchmark_pairwise_baseline(benchmark, world, corpus, nq):
    left, right = _pair(world, corpus, nq)
    baseline = PairwiseDistanceBaseline(world.ontology)
    baseline.document_document_distance(left, right)  # warm cones
    value = benchmark(
        lambda: baseline.document_document_distance(left, right))
    assert value >= 0


@pytest.mark.parametrize("corpus", ["PATIENT", "RADIO"])
def test_report_fig6(benchmark, record, scale, corpus):
    table = benchmark.pedantic(
        lambda: fig6_distance_calc(corpus, scale), rounds=1, iterations=1)
    # Shape assertions: BL must blow up quadratically while DRC stays
    # sub-quadratic, and DRC must win at the largest size.
    nq_values = [float(row[0]) for row in table.rows]
    bl = [float(row[1].replace(",", "")) for row in table.rows]
    drc = [float(row[2].replace(",", "")) for row in table.rows]
    span = nq_values[-1] / nq_values[0]
    assert bl[-1] / bl[0] > span  # superlinear growth
    assert drc[-1] < bl[-1]  # DRC wins at realistic sizes
    record(f"fig6_distance_calc_{corpus.lower()}", table)
