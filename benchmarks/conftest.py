"""Shared fixtures for the benchmark suite.

Every benchmark file pairs two kinds of targets:

* micro-benchmarks of a single representative operation (pytest-benchmark
  statistics);
* one ``test_report_*`` target per paper artifact that regenerates the
  full table/figure series and records it under ``benchmarks/results/``
  (also echoed to stdout), which is where ``EXPERIMENTS.md`` numbers come
  from.

The world scale defaults to ``small``; set ``REPRO_BENCH_SCALE=medium``
for runs closer to the paper's proportions.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.experiments import build_world

RESULTS_DIR = Path(__file__).parent / "results"

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE


@pytest.fixture(scope="session")
def world():
    return build_world(SCALE)


@pytest.fixture(scope="session")
def record():
    """Persist rendered experiment output and echo it.

    Accepts :class:`repro.bench.reporting.Table` objects or pre-rendered
    strings (e.g. the markdown report from ``repro.bench.perf``).
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, *tables) -> None:
        text = "\n\n".join(
            table if isinstance(table, str) else table.render()
            for table in tables).rstrip("\n") + "\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print()
        print(text)

    return _record
