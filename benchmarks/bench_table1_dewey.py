"""Table 1 — Dewey path address lists for the running example.

Micro-benchmarks Dewey address retrieval (the ``retrieve Pd / Pq`` step of
Algorithm 1) and records the reproduced Table 1.
"""

from __future__ import annotations

from repro.bench.reporting import Table
from repro.core.dradix import DRadixDAG
from repro.datasets import EXAMPLE_DOCUMENT, EXAMPLE_QUERY, figure3_ontology
from repro.ontology.dewey import DeweyIndex
from repro.types import format_dewey


def test_benchmark_sorted_address_list(benchmark):
    ontology = figure3_ontology()

    def build_lists():
        dewey = DeweyIndex(ontology)  # cold cache, as in one query
        return dewey.sorted_address_list(
            set(EXAMPLE_DOCUMENT) | set(EXAMPLE_QUERY))

    merged = benchmark(build_lists)
    assert len(merged) == 10


def test_benchmark_address_lookup_warm(benchmark, world):
    dewey = world.dewey
    concepts = [cid for cid in list(world.ontology.concepts())[100:120]]
    for concept in concepts:
        dewey.addresses(concept)  # warm

    result = benchmark(lambda: [dewey.addresses(c) for c in concepts])
    assert len(result) == 20


def test_report_table1(benchmark, record):
    ontology = figure3_ontology()
    dewey = DeweyIndex(ontology)

    def reproduce():
        return DRadixDAG.merged_address_list(
            dewey, EXAMPLE_DOCUMENT, EXAMPLE_QUERY)

    merged = benchmark.pedantic(reproduce, rounds=1, iterations=1)
    table = Table("Table 1 — Dewey path address lists (merged order)",
                  ["step", "node", "address"],
                  notes=["matches the paper's Table 1 exactly "
                         "(asserted in tests/test_paper_examples.py)"])
    for step, (address, concept) in enumerate(merged, start=1):
        table.add_row(step, concept, format_dewey(address))
    record("table1_dewey", table)
