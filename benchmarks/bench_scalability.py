"""Scalability vs corpus size — completing the paper's title claim.

The paper sweeps query size (Figure 8) and k (Figure 9) at fixed corpora;
this target sweeps |D| and asserts the structural reason kNDS scales: the
exhaustive baseline grows linearly with the corpus while kNDS's examined
set stays a near-constant slice.
"""

from __future__ import annotations

from repro.bench.experiments import scalability_corpus_size


def test_report_scalability(benchmark, record, scale):
    table = benchmark.pedantic(
        lambda: scalability_corpus_size(scale=scale), rounds=1,
        iterations=1)
    sizes = [float(row[0].replace(",", "")) for row in table.rows]
    knds = [float(row[1].replace(",", "")) for row in table.rows]
    baseline = [float(row[2].replace(",", "")) for row in table.rows]
    examined = [float(row[3].replace(",", "")) for row in table.rows]
    span = sizes[-1] / sizes[0]
    # Baseline ~linear in |D|; kNDS grows sublinearly in both time and
    # examined documents.
    assert baseline[-1] / baseline[0] > span / 2
    assert knds[-1] / knds[0] < span
    assert examined[-1] / examined[0] < span / 2
    assert all(fast < slow for fast, slow in zip(knds, baseline))
    record("scalability_corpus_size", table)
