"""Ablation — Threshold Algorithm vs kNDS for RDS queries.

Section 4.1 positions TA as the precompute-everything alternative; this
target measures both sides of that trade: TA's fast sorted/random access
once the index exists, against its offline build cost and footprint.
"""

from __future__ import annotations

from repro.baselines.ta import ThresholdAlgorithm
from repro.bench.experiments import ablation_ta_comparison
from repro.bench.workloads import random_concept_queries


def test_benchmark_ta_query(benchmark, world):
    collection = world.corpus("RADIO")
    query = random_concept_queries(collection, nq=3, count=1, seed=43)[0]
    ta = ThresholdAlgorithm.build(world.ontology, collection,
                                  concepts=query)
    results = benchmark(lambda: ta.rds(query, 10))
    assert len(results) == 10


def test_benchmark_ta_index_build(benchmark, world):
    collection = world.corpus("RADIO")
    query = random_concept_queries(collection, nq=3, count=1, seed=43)[0]
    benchmark.pedantic(
        lambda: ThresholdAlgorithm.build(world.ontology, collection,
                                         concepts=query),
        rounds=3, iterations=1)


def test_report_ablation_ta(benchmark, record, scale):
    table = benchmark.pedantic(lambda: ablation_ta_comparison(scale=scale),
                               rounds=1, iterations=1)
    by_method = {row[0]: row for row in table.rows}
    ta_build = float(by_method["TA"][2].replace(",", ""))
    ta_query = float(by_method["TA"][1].replace(",", ""))
    # The offline build dwarfs a single TA query — the maintenance-vs-
    # query trade the paper describes.
    assert ta_build > ta_query
    record("ablation_ta_comparison", table)
