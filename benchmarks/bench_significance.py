"""Section 6.1's statistical significance test, reproduced.

Runs the paper's two-tailed Welch t-test over per-query timing samples of
kNDS vs the full-scan baseline at the default k = 10 and asserts the
published conclusion (p < 0.001) holds here too.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import significance_fig9


@pytest.mark.parametrize("corpus", ["PATIENT", "RADIO"])
def test_report_significance(benchmark, record, scale, corpus):
    table = benchmark.pedantic(
        lambda: significance_fig9(corpus, "rds", scale=scale),
        rounds=1, iterations=1)
    cells = {row[0]: row[1] for row in table.rows}
    assert cells["significant at 0.001"] == "True"
    assert float(cells["p-value"]) < 0.001
    record(f"significance_{corpus.lower()}", table)
