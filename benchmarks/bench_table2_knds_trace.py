"""Table 2 — the kNDS running example (q = {F, I}, k = 2, εθ = 1).

Micro-benchmarks the full kNDS run on the paper's example world and
records the reproduced data-structure trace.
"""

from __future__ import annotations

from repro.bench.reporting import Table
from repro.core.knds import KNDSConfig, KNDSearch
from repro.datasets import example4_collection, figure3_ontology

TRACE_CONFIG = KNDSConfig(
    error_threshold=1.0,
    analyze_budget_per_round=2,
    prune_on_update=False,
    prune_at_pop=False,
)


def test_benchmark_example4_query(benchmark):
    searcher = KNDSearch(figure3_ontology(), example4_collection())
    results = benchmark(lambda: searcher.rds(["F", "I"], k=2,
                                             config=TRACE_CONFIG))
    assert results.doc_ids() == ["d2", "d3"]


def test_report_table2(benchmark, record):
    searcher = KNDSearch(figure3_ontology(), example4_collection())
    events = []

    def run():
        events.clear()
        return searcher.rds(["F", "I"], k=2, config=TRACE_CONFIG,
                            observer=events.append)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Table 2 — kNDS trace (q={F,I}, k=2, eps=1)",
        ["phase", "Sd", "Ld", "Ec size", "Hk", "D-", "Dk+"],
        notes=["row-for-row identical to the paper's Table 2 "
               "(asserted in tests/test_paper_examples.py)"],
    )
    for event in events:
        table.add_row(
            event["phase"],
            "{" + ",".join(sorted(event["examined"])) + "}",
            "{" + ",".join(
                f"{doc}:{bound:g}"
                for doc, bound in sorted(event["candidates"].items())
            ) + "}",
            len(event["frontier"]),
            "{" + ",".join(
                f"{doc}:{dist:g}"
                for doc, dist in sorted(event["top"].items())
            ) + "}",
            "" if event["global_lower"] is None
            else f"{event['global_lower']:g}",
            "" if event["kth_distance"] is None
            else f"{event['kth_distance']:g}",
        )
    table.add_row("result",
                  "->", " ".join(f"{r.doc_id}:{r.distance:g}"
                                 for r in results), "", "", "", "")
    record("table2_knds_trace", table)
