"""Ablation — kNDS as a MapReduce job vs the serial implementation.

Section 6.1 proposes eliminating the node-queue cap by running kNDS as a
MapReduce job.  This target measures the in-process runtime's overhead
(shuffle volume, per-mapper frontier bound) against serial kNDS, and
asserts both produce identical rankings.
"""

from __future__ import annotations

from repro.bench.reporting import Table
from repro.bench.workloads import random_concept_queries
from repro.core.knds import KNDSConfig, KNDSearch
from repro.core.mapreduce import MapReduceKNDS, MapReduceRuntime


def test_benchmark_serial_knds(benchmark, world):
    collection = world.corpus("RADIO")
    query = random_concept_queries(collection, nq=5, count=1, seed=53)[0]
    searcher = world.searchers["RADIO"]
    config = KNDSConfig(error_threshold=0.9)
    results = benchmark(lambda: searcher.rds(query, 10, config=config))
    assert len(results) == 10


def test_benchmark_mapreduce_knds(benchmark, world):
    collection = world.corpus("RADIO")
    query = random_concept_queries(collection, nq=5, count=1, seed=53)[0]
    searcher = MapReduceKNDS(world.ontology, collection,
                             dewey=world.dewey)
    config = KNDSConfig(error_threshold=0.9)
    results = benchmark(lambda: searcher.rds(query, 10, config=config))
    assert len(results) == 10


def test_report_ablation_mapreduce(benchmark, record, world):
    collection = world.corpus("RADIO")
    queries = random_concept_queries(collection, nq=5, count=4, seed=53)
    config = KNDSConfig(error_threshold=0.9)
    serial = world.searchers["RADIO"]

    def run():
        import time
        serial_total = 0.0
        for query in queries:
            serial_total += serial.rds(
                query, 10, config=config).stats.total_seconds
        runtime = MapReduceRuntime(num_partitions=4)
        parallel = MapReduceKNDS(world.ontology, collection,
                                 dewey=world.dewey, runtime=runtime)
        start = time.perf_counter()
        parallel_results = [
            parallel.rds(query, 10, config=config) for query in queries
        ]
        parallel_total = time.perf_counter() - start
        serial_results = [
            serial.rds(query, 10, config=config) for query in queries
        ]
        for mine, reference in zip(parallel_results, serial_results):
            assert mine.distances() == reference.distances()
        return (serial_total / len(queries),
                parallel_total / len(queries), runtime.stats)

    serial_seconds, parallel_seconds, stats = benchmark.pedantic(
        run, rounds=1, iterations=1)
    table = Table(
        "Ablation — kNDS serial vs MapReduce formulation (RDS, RADIO)",
        ["implementation", "query (s)", "shuffled pairs",
         "max mapper frontier"],
        notes=["identical rankings asserted; the MapReduce form bounds "
               "per-process memory (no global queue), per Section 6.1"],
    )
    table.add_row("serial kNDS", serial_seconds, "-", "-")
    table.add_row("MapReduce kNDS", parallel_seconds,
                  stats.shuffled_pairs // len(queries),
                  stats.max_mapper_frontier)
    record("ablation_mapreduce", table)
