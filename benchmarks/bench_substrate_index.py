"""Substrate microbenchmarks — index backends.

Build cost, postings lookup latency and incremental insert for the
in-memory and SQLite backends; the per-query I/O split these produce is
what the Figure 7-9 breakdowns report.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import random_query_documents
from repro.index.memory import MemoryForwardIndex, MemoryInvertedIndex
from repro.index.sqlite import SQLiteIndexStore


@pytest.fixture(scope="module")
def hot_concepts(world):
    frequencies = world.corpus("RADIO").concept_frequencies()
    ranked = sorted(frequencies, key=frequencies.get, reverse=True)
    return ranked[:20]


def test_benchmark_memory_build(benchmark, world):
    collection = world.corpus("RADIO")
    index = benchmark(
        lambda: MemoryInvertedIndex.from_collection(collection))
    assert index.document_frequency(next(index.indexed_concepts())) >= 1


def test_benchmark_sqlite_build(benchmark, world):
    collection = world.corpus("RADIO")

    def build():
        store = SQLiteIndexStore.build(collection)
        store.close()

    benchmark.pedantic(build, rounds=3, iterations=1)


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_benchmark_postings_lookup(benchmark, world, hot_concepts, backend):
    collection = world.corpus("RADIO")
    if backend == "memory":
        inverted = MemoryInvertedIndex.from_collection(collection)
        store = None
    else:
        store = SQLiteIndexStore.build(collection)
        inverted = store.inverted
    try:
        postings = benchmark(
            lambda: [inverted.postings(c) for c in hot_concepts])
        assert all(postings)
    finally:
        if store is not None:
            store.close()


def test_benchmark_memory_incremental_insert(benchmark, world):
    collection = world.corpus("RADIO")
    inverted = MemoryInvertedIndex.from_collection(collection)
    forward = MemoryForwardIndex.from_collection(collection)
    newcomers = iter(random_query_documents(collection, nq=12, count=800,
                                            seed=61))

    def insert():
        document = next(newcomers)
        inverted.add_document(document)
        forward.add_document(document)

    benchmark.pedantic(insert, rounds=600, iterations=1)
