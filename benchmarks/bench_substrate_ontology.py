"""Substrate microbenchmarks — ontology operations.

Not a paper artifact: these keep the building blocks honest (valid-path
BFS, Dewey materialization, concept distances, address resolution),
since every headline number sits on top of them.
"""

from __future__ import annotations

import pytest

from repro.ontology.dewey import DeweyIndex
from repro.ontology.distance import concept_distance
from repro.ontology.generators import snomed_like
from repro.ontology.traversal import valid_path_distances


@pytest.fixture(scope="module")
def sample_concepts(world):
    concepts = list(world.ontology.concepts())
    return concepts[50:70]


def test_benchmark_generator(benchmark):
    ontology = benchmark.pedantic(lambda: snomed_like(2_000, seed=77),
                                  rounds=3, iterations=1)
    assert len(ontology) == 2_000


def test_benchmark_full_valid_path_bfs(benchmark, world, sample_concepts):
    origin = sample_concepts[0]
    distances = benchmark(
        lambda: valid_path_distances(world.ontology, origin))
    assert len(distances) == len(world.ontology)


def test_benchmark_concept_distance(benchmark, world, sample_concepts):
    first, second = sample_concepts[0], sample_concepts[-1]
    value = benchmark(
        lambda: concept_distance(world.ontology, first, second))
    assert value >= 0


def test_benchmark_dewey_cold(benchmark, world, sample_concepts):
    def materialize():
        dewey = DeweyIndex(world.ontology)
        return [dewey.addresses(concept) for concept in sample_concepts]

    addresses = benchmark(materialize)
    assert all(len(a) >= 1 for a in addresses)


def test_benchmark_resolve_dewey(benchmark, world, sample_concepts):
    dewey = DeweyIndex(world.ontology)
    targets = [dewey.primary_address(c) for c in sample_concepts]

    resolved = benchmark(
        lambda: [world.ontology.resolve_dewey(a) for a in targets])
    assert resolved == sample_concepts
