"""Figure 9 — query time vs the number of results k, kNDS vs baseline.

Reproduction targets: the baseline is flat in k (it always scans the full
corpus); kNDS is faster by a wide margin and only mildly sensitive to k.
Covers all four panels: {RDS, SDS} × {PATIENT, RADIO}.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import DEFAULT_ERROR_THRESHOLD, fig9_num_results
from repro.bench.workloads import sample_documents
from repro.core.knds import KNDSConfig


@pytest.mark.parametrize("k", [3, 100])
def test_benchmark_knds_sds(benchmark, world, k):
    corpus = "RADIO"
    document = sample_documents(world.corpus(corpus), count=1, seed=17)[0]
    config = KNDSConfig(error_threshold=DEFAULT_ERROR_THRESHOLD[corpus])
    searcher = world.searchers[corpus]
    results = benchmark.pedantic(
        lambda: searcher.sds(document, k, config=config),
        rounds=3, iterations=1)
    assert len(results) == k


FIG9_PANELS = [
    ("a", "PATIENT", "rds"),
    ("b", "PATIENT", "sds"),
    ("c", "RADIO", "rds"),
    ("d", "RADIO", "sds"),
]


@pytest.mark.parametrize("panel,corpus,mode", FIG9_PANELS)
def test_report_fig9(benchmark, record, scale, panel, corpus, mode):
    table = benchmark.pedantic(
        lambda: fig9_num_results(corpus, mode, scale=scale),
        rounds=1, iterations=1)
    knds = [float(row[1].replace(",", "")) for row in table.rows]
    baseline = [float(row[2].replace(",", "")) for row in table.rows]
    # Paper shapes: the baseline does not depend on k (flat within noise),
    # and kNDS wins at the paper's default k = 10.
    assert max(baseline) < 3 * min(baseline)
    k_values = [int(row[0]) for row in table.rows]
    at_default_k = k_values.index(10)
    assert knds[at_default_k] < baseline[at_default_k]
    record(f"fig9{panel}_{mode}_{corpus.lower()}", table)
