"""Space footprint of the retrieval designs (Section 4.1, measured).

The paper dismisses the all-pairs matrix and the TA postings index on
space; this target measures the kNDS indexes against extrapolated
footprints of both strawmen on the benchmark world.
"""

from __future__ import annotations

from repro.bench.memory import deep_sizeof, space_comparison
from repro.index.memory import MemoryInvertedIndex


def test_benchmark_deep_sizeof(benchmark, world):
    collection = world.corpus("RADIO")
    index = MemoryInvertedIndex.from_collection(collection)
    size = benchmark.pedantic(lambda: deep_sizeof(index), rounds=3,
                              iterations=1)
    assert size > 0


def test_report_space(benchmark, record, world):
    table = benchmark.pedantic(
        lambda: space_comparison(world.ontology, world.corpus("RADIO")),
        rounds=1, iterations=1)
    by_design = {row[0]: int(row[1].replace(",", ""))
                 for row in table.rows}
    knds = by_design["kNDS inverted+forward"]
    ta = by_design["TA distance-sorted postings"]
    matrix = by_design["all-pairs concept matrix"]
    # Scale-invariant part of the Section 4.1 argument: the kNDS indexes
    # are far below both strawmen.  (The TA/matrix ordering itself
    # depends on |D| vs |C| and only matches the paper at SNOMED scale.)
    assert ta > 20 * knds
    assert matrix > 20 * knds
    record("space_comparison", table)
