"""Perf-smoke: the registered scenario set through the unified runner.

This replaces the standalone ``bench_obs_overhead.py``: the three
instrumentation states (disabled / metrics-only / full) are now
registered scenarios of :mod:`repro.bench.perf` (tag ``overhead``), so
their timings land in every ``BENCH_*.json`` artifact instead of a
free-form table nobody can diff.  This target runs the ``smoke`` set the
CI perf job uses, sanity-checks the self-comparison gate, and records
the markdown report under ``benchmarks/results/``.
"""

from __future__ import annotations

from repro.bench.perf import compare_runs, render_markdown, run_scenarios


def test_report_perf_smoke(record, scale, world):
    """Run the smoke scenarios and record the runner's markdown report."""
    artifact = run_scenarios("smoke,overhead", scale=scale, repeat=3,
                             warmup=1)
    scenarios = artifact["scenarios"]

    # The gate must be neutral against itself (identical samples).
    verdicts = compare_runs(artifact, artifact)
    assert {verdict.status for verdict in verdicts} == {"neutral"}

    # Same loose sanity bound the standalone overhead benchmark enforced:
    # even tracer+metrics+events must stay within an order of magnitude.
    disabled = scenarios["obs_overhead_disabled"]["seconds"]["median"]
    full = scenarios["obs_overhead_full"]["seconds"]["median"]
    assert full < disabled * 10

    record("perf_smoke", render_markdown(artifact))
