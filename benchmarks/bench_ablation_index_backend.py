"""Ablation — in-memory vs SQLite-backed corpus indexes.

The paper stored its inverted and forward indexes in MySQL and reported
the database access time as a separate component; this ablation shows the
same I/O split with the SQLite backend against the in-memory one.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import ablation_index_backend
from repro.bench.workloads import random_concept_queries
from repro.core.knds import KNDSConfig, KNDSearch
from repro.index.sqlite import SQLiteIndexStore


@pytest.fixture(scope="module")
def sqlite_searcher(world):
    collection = world.corpus("RADIO")
    store = SQLiteIndexStore.build(collection)
    yield KNDSearch(world.ontology, collection, inverted=store.inverted,
                    forward=store.forward, dewey=world.dewey)
    store.close()


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_benchmark_backend(benchmark, world, sqlite_searcher, backend):
    corpus = "RADIO"
    query = random_concept_queries(world.corpus(corpus), nq=5, count=1,
                                   seed=31)[0]
    searcher = (world.searchers[corpus] if backend == "memory"
                else sqlite_searcher)
    config = KNDSConfig(error_threshold=0.9)
    results = benchmark.pedantic(
        lambda: searcher.rds(query, 10, config=config),
        rounds=3, iterations=1)
    assert len(results) == 10


def test_report_ablation_index_backend(benchmark, record, scale):
    table = benchmark.pedantic(
        lambda: ablation_index_backend(scale=scale), rounds=1, iterations=1)
    by_backend = {row[0]: row for row in table.rows}
    io_memory = float(by_backend["memory"][2].replace(",", ""))
    io_sqlite = float(by_backend["sqlite"][2].replace(",", ""))
    assert io_sqlite > io_memory  # SQL access path costs real I/O time
    record("ablation_index_backend", table)
