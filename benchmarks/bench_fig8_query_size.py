"""Figure 8 — RDS query time vs query size: kNDS vs the full-scan baseline.

Reproduction target: kNDS sits far below the baseline at every query size
while both grow moderately with nq.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import DEFAULT_ERROR_THRESHOLD, fig8_query_size
from repro.bench.workloads import random_concept_queries
from repro.core.knds import KNDSConfig


@pytest.mark.parametrize("nq", [1, 5, 10])
def test_benchmark_knds_rds(benchmark, world, nq):
    corpus = "RADIO"
    query = random_concept_queries(world.corpus(corpus), nq=nq, count=1,
                                   seed=13)[0]
    config = KNDSConfig(error_threshold=DEFAULT_ERROR_THRESHOLD[corpus])
    searcher = world.searchers[corpus]
    results = benchmark(lambda: searcher.rds(query, 10, config=config))
    assert len(results) == 10


def test_benchmark_fullscan_rds(benchmark, world):
    corpus = "RADIO"
    query = random_concept_queries(world.corpus(corpus), nq=5, count=1,
                                   seed=13)[0]
    scanner = world.scanners[corpus]
    results = benchmark.pedantic(lambda: scanner.rds(query, 10),
                                 rounds=3, iterations=1)
    assert len(results) == 10


@pytest.mark.parametrize("corpus", ["PATIENT", "RADIO"])
def test_report_fig8(benchmark, record, scale, corpus):
    table = benchmark.pedantic(lambda: fig8_query_size(corpus, scale=scale),
                               rounds=1, iterations=1)
    knds = [float(row[1].replace(",", "")) for row in table.rows]
    baseline = [float(row[2].replace(",", "")) for row in table.rows]
    # Paper shape: kNDS below the baseline at every query size.
    assert all(fast < slow for fast, slow in zip(knds, baseline))
    record(f"fig8_query_size_{corpus.lower()}", table)
