"""Ablation — the Section 6.1 node-queue cap.

The paper caps the BFS queue at 50K states and notes that a tight cap
"may cause excessive calls to DRC".  This ablation sweeps the cap and
records total time, DRC probes and forced analysis rounds.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import ablation_queue_limit
from repro.bench.workloads import sample_documents
from repro.core.knds import KNDSConfig


@pytest.mark.parametrize("limit", [50, 50_000])
def test_benchmark_sds_with_cap(benchmark, world, limit):
    corpus = "RADIO"
    document = sample_documents(world.corpus(corpus), count=1, seed=23)[0]
    config = KNDSConfig(error_threshold=0.9, queue_limit=limit)
    searcher = world.searchers[corpus]
    results = benchmark.pedantic(
        lambda: searcher.sds(document, 10, config=config),
        rounds=3, iterations=1)
    assert len(results) == 10


def test_report_ablation_queue_limit(benchmark, record, scale):
    table = benchmark.pedantic(lambda: ablation_queue_limit(scale=scale),
                               rounds=1, iterations=1)
    probes = [int(row[2].replace(",", "")) for row in table.rows]
    forced = [int(row[3].replace(",", "")) for row in table.rows]
    # The tightest cap must force rounds; an uncapped run forces none.
    assert forced[0] >= forced[-1]
    assert probes[0] >= probes[-1]
    record("ablation_queue_limit", table)
