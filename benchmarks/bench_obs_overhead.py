"""Observability overhead — disabled vs enabled instrumentation on RDS.

The acceptance bar for :mod:`repro.obs` is that the *disabled* path (no
bundle attached — the library default) stays within noise of the seed
implementation; the enabled path (live tracer + metrics + event stream)
may cost more, and this benchmark reports how much.

Three states over the same Figure-8-style RDS workload:

* ``disabled``  — ``instrument(None)``: one ``is None`` check per site;
* ``metrics``   — registry only (the no-op tracer stays in place);
* ``full``      — live tracer, metrics registry and event stream.
"""

from __future__ import annotations

import time

from repro.bench.experiments import DEFAULT_ERROR_THRESHOLD
from repro.bench.reporting import Table
from repro.bench.workloads import random_concept_queries
from repro.core.knds import KNDSConfig
from repro.obs import EventStream, Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

REPEATS = 5
QUERIES = 20
K = 10


def _instrument_stack(searcher, obs) -> None:
    """Wire (or, with None, unwire) every layer the searcher touches."""
    searcher.instrument(obs)
    searcher.drc.instrument(obs)
    searcher.inverted.instrument(obs)
    searcher.forward.instrument(obs)


def _workload_seconds(searcher, queries, config) -> float:
    """Best-of-REPEATS wall time for the full query batch."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for query in queries:
            searcher.rds(query, K, config=config)
        best = min(best, time.perf_counter() - start)
    return best


def _make_obs(full: bool) -> Observability:
    return Observability(
        tracer=Tracer() if full else None,
        metrics=MetricsRegistry(),
        events=EventStream() if full else None,
    )


def test_report_obs_overhead(record, world):
    """Overhead table: disabled vs metrics-only vs fully-enabled."""
    corpus = "RADIO"
    searcher = world.searchers[corpus]
    queries = random_concept_queries(world.corpus(corpus), nq=5,
                                     count=QUERIES, seed=17)
    config = KNDSConfig(error_threshold=DEFAULT_ERROR_THRESHOLD[corpus])
    try:
        _instrument_stack(searcher, None)
        disabled = _workload_seconds(searcher, queries, config)

        _instrument_stack(searcher, _make_obs(full=False))
        metrics_only = _workload_seconds(searcher, queries, config)

        full_obs = _make_obs(full=True)
        _instrument_stack(searcher, full_obs)
        full = _workload_seconds(searcher, queries, config)
    finally:
        # The world fixture is session-scoped: leave it uninstrumented.
        _instrument_stack(searcher, None)

    assert full_obs.metrics.snapshot()["knds.nodes_visited"]["value"] > 0
    assert full_obs.tracer.to_dicts(), "full state collected no spans"

    table = Table(
        title=f"Observability overhead ({corpus}, {QUERIES} RDS queries, "
              f"best of {REPEATS})",
        headers=["state", "seconds", "ratio vs disabled"],
    )
    for state, seconds in [("disabled", disabled),
                           ("metrics-only", metrics_only),
                           ("full (trace+metrics+events)", full)]:
        table.add_row(state, f"{seconds:.4f}",
                      f"{seconds / disabled:.2f}x")
    table.notes.append(
        "disabled = library default; the <5% acceptance bound applies to "
        "this state relative to the uninstrumented seed")
    record("obs_overhead", table)

    # Sanity bound, deliberately loose: even the fully-enabled stack must
    # stay within an order of magnitude of the disabled path.
    assert full < disabled * 10
