"""Ablation — document insertion cost: kNDS indexes vs the TA index.

Quantifies the paper's Section 1 claim: adding an EMR to the kNDS-side
indexes costs a few postings rows, while the Threshold Algorithm's
offline index must fold the newcomer into *every* distance-sorted
postings list (one ontology BFS per document concept plus a re-sort per
list).
"""

from __future__ import annotations

import time

from repro.baselines.ta import ThresholdAlgorithm
from repro.bench.reporting import Table
from repro.bench.workloads import random_query_documents
from repro.core.engine import SearchEngine


def _newcomers(world, count):
    return random_query_documents(world.corpus("RADIO"), nq=10, count=count,
                                  seed=37)


def test_benchmark_engine_add_document(benchmark, world):
    # Operate on a copy: the session-scoped world corpus must not grow.
    corpus_copy = world.corpus("RADIO").filtered(lambda _d: True,
                                                 name="copy")
    engine = SearchEngine(world.ontology, corpus_copy)
    documents = iter(_newcomers(world, 600))

    benchmark.pedantic(lambda: engine.add_document(next(documents)),
                       rounds=500, iterations=1)


def test_benchmark_ta_add_document(benchmark, world):
    collection = world.corpus("RADIO")
    # A 30-concept TA index keeps the benchmark affordable; the real
    # index would hold every corpus concept, scaling the gap further.
    concepts = sorted(collection.distinct_concepts())[:30]
    ta = ThresholdAlgorithm.build(world.ontology, collection,
                                  concepts=concepts)
    documents = iter(_newcomers(world, 300))
    benchmark.pedantic(lambda: ta.add_document(next(documents)),
                       rounds=5, iterations=1)


def test_report_ablation_updates(benchmark, record, world):
    def measure():
        collection = world.corpus("RADIO")
        engine = SearchEngine(world.ontology, collection.filtered(
            lambda d: True, name="copy"))
        concepts = sorted(collection.distinct_concepts())[:30]
        ta = ThresholdAlgorithm.build(world.ontology, collection,
                                      concepts=concepts)
        newcomers = _newcomers(world, 20)
        start = time.perf_counter()
        for document in newcomers[:10]:
            engine.add_document(document)
        engine_seconds = (time.perf_counter() - start) / 10
        start = time.perf_counter()
        for document in newcomers[10:]:
            ta.add_document(document)
        ta_seconds = (time.perf_counter() - start) / 10
        return engine_seconds, ta_seconds

    engine_seconds, ta_seconds = benchmark.pedantic(measure, rounds=1,
                                                    iterations=1)
    table = Table(
        "Ablation — per-document insertion cost",
        ["index", "seconds/doc", "relative"],
        notes=["paper, Section 1: kNDS integrates new EMRs on the fly; "
               "TA must update every concept postings list",
               "TA index restricted to 30 concepts here; the full index "
               "would multiply its cost by |C|/30"],
    )
    table.add_row("kNDS (inverted+forward)", engine_seconds, "1x")
    table.add_row("TA distance-sorted postings", ta_seconds,
                  f"{ta_seconds / engine_seconds:,.0f}x")
    assert ta_seconds > 10 * engine_seconds
    record("ablation_update_cost", table)
