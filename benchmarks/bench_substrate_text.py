"""Substrate microbenchmarks — the concept-extraction pipeline.

Throughput of the MetaMap stand-in (abbreviation expansion, mapping,
negation) on generated clinical notes; corpus preparation cost in
documents per second.
"""

from __future__ import annotations

import pytest

from repro.corpus.text.abbreviations import AbbreviationExpander
from repro.corpus.text.notegen import generate_note
from repro.corpus.text.pipeline import ConceptExtractor


@pytest.fixture(scope="module")
def note_world(world):
    ontology = world.ontology
    extractor = ConceptExtractor.for_ontology(ontology)
    concepts = list(ontology.concepts())[40:52]
    notes = [
        generate_note(ontology, concepts[:8], concepts[8:], seed=seed)
        for seed in range(20)
    ]
    return extractor, notes, set(concepts[:8])


def test_benchmark_full_extraction(benchmark, note_world):
    extractor, notes, positive = note_world
    results = benchmark(
        lambda: [extractor.extract_concepts(note) for note in notes])
    assert all(extracted == positive for extracted in results)


def test_benchmark_mentions_with_spans(benchmark, note_world):
    extractor, notes, _positive = note_world
    mentions = benchmark(lambda: extractor.mentions(notes[0]))
    assert mentions


def test_benchmark_abbreviation_expansion(benchmark):
    expander = AbbreviationExpander()
    text = ("Pt c/o SOB and CP. Hx of HTN, DM2, CHF s/p MI. "
            "R/O PE; continue meds BID PRN.") * 10
    expanded = benchmark(lambda: expander.expand(text))
    assert "hypertension" in expanded
