"""Table 3 — document corpus statistics for PATIENT and RADIO.

Micro-benchmarks corpus statistics computation and records the scaled
Table 3 with the paper's original values in the notes.
"""

from __future__ import annotations

from repro.bench.experiments import table3_corpus_stats


def test_benchmark_corpus_stats(benchmark, world):
    stats = benchmark(lambda: world.corpus("RADIO").stats())
    assert stats.total_documents == len(world.corpus("RADIO"))


def test_benchmark_concept_frequencies(benchmark, world):
    frequencies = benchmark(
        lambda: world.corpus("PATIENT").concept_frequencies())
    assert frequencies


def test_report_table3(benchmark, record, scale):
    table = benchmark.pedantic(lambda: table3_corpus_stats(scale),
                               rounds=1, iterations=1)
    # The PATIENT/RADIO contrasts of the paper must hold: fewer documents,
    # many more concepts per document, denser text.
    rows = {row[0]: (row[1], row[2]) for row in table.rows}
    patient_docs = float(rows["Total Documents"][0].replace(",", ""))
    radio_docs = float(rows["Total Documents"][1].replace(",", ""))
    assert patient_docs < radio_docs
    patient_cpd = float(rows["Avg. Concepts/Document"][0].replace(",", ""))
    radio_cpd = float(rows["Avg. Concepts/Document"][1].replace(",", ""))
    assert patient_cpd > 3 * radio_cpd
    record("table3_corpus_stats", table)
