"""Figure 7 — query time vs the kNDS error threshold εθ.

Micro-benchmarks single kNDS queries at the two extreme thresholds and
records all eight Figure 7 panels: the εθ sweep per (corpus, mode, nq)
plus the optimal-threshold-vs-nq series of Figure 7(f).

Reproduction targets: PATIENT favours small εθ with distance calculation
dominating the time split; RADIO tolerates (and at larger query sizes
prefers) large εθ with traversal dominating.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    fig7_error_threshold,
    fig7_optimal_threshold,
)
from repro.bench.workloads import random_concept_queries
from repro.core.knds import KNDSConfig


@pytest.mark.parametrize("epsilon", [0.0, 0.5, 1.0])
@pytest.mark.parametrize("corpus", ["PATIENT", "RADIO"])
def test_benchmark_rds_query(benchmark, world, corpus, epsilon):
    query = random_concept_queries(world.corpus(corpus), nq=5, count=1,
                                   seed=9)[0]
    searcher = world.searchers[corpus]
    config = KNDSConfig(error_threshold=epsilon)
    results = benchmark(lambda: searcher.rds(query, 10, config=config))
    assert len(results) == 10


FIG7_PANELS = [
    ("a", "PATIENT", "rds", 3),
    ("b", "PATIENT", "rds", 5),
    ("c", "RADIO", "rds", 3),
    ("d", "RADIO", "rds", 5),
    ("e", "RADIO", "rds", 10),
    ("g", "PATIENT", "sds", 3),
    ("h", "RADIO", "sds", 3),
]


@pytest.mark.parametrize("panel,corpus,mode,nq", FIG7_PANELS)
def test_report_fig7_panel(benchmark, record, scale, panel, corpus, mode,
                           nq):
    table = benchmark.pedantic(
        lambda: fig7_error_threshold(corpus, mode, nq, scale=scale),
        rounds=1, iterations=1)
    totals = [float(row[1].replace(",", "")) for row in table.rows]
    distance = [float(row[2].replace(",", "")) for row in table.rows]
    traversal = [float(row[3].replace(",", "")) for row in table.rows]
    assert all(total > 0 for total in totals)
    if corpus == "PATIENT":
        # Paper shape: distance calculation dominates traversal on the
        # concept-dense PATIENT corpus.
        assert sum(distance) > sum(traversal)
    record(f"fig7{panel}_{mode}_nq{nq}_{corpus.lower()}", table)


def test_report_fig7f_optimal_threshold(benchmark, record, scale):
    table = benchmark.pedantic(
        lambda: fig7_optimal_threshold("RADIO", "rds", scale=scale),
        rounds=1, iterations=1)
    assert len(table.rows) == 3
    record("fig7f_optimal_threshold_radio", table)
