#!/usr/bin/env python
"""One-shot reproduction verifier.

Runs the paper's worked examples and the headline efficiency shapes on a
fresh world, printing PASS/FAIL per claim.  This is a condensed, readable
version of what the test and benchmark suites assert — useful as a smoke
check after installation:

    python scripts/verify_reproduction.py
"""

from __future__ import annotations

import sys
import time

from repro.baselines.fullscan import FullScanSearch
from repro.baselines.pairwise import PairwiseDistanceBaseline
from repro.bench.workloads import random_concept_queries, random_query_documents
from repro.core.drc import DRC
from repro.core.knds import KNDSearch
from repro.corpus.generators import radio_like
from repro.datasets import (
    EXAMPLE_DOCUMENT,
    EXAMPLE_QUERY,
    example4_collection,
    figure3_ontology,
)
from repro.ontology.dewey import DeweyIndex
from repro.ontology.distance import concept_distance
from repro.ontology.generators import snomed_like

CHECKS: list[tuple[str, bool]] = []


def check(name: str, condition: bool) -> None:
    CHECKS.append((name, condition))
    print(f"  [{'PASS' if condition else 'FAIL'}] {name}")


def main() -> int:
    print("Paper worked examples (Figure 3 world):")
    ontology = figure3_ontology()
    dewey = DeweyIndex(ontology)
    check("Table 1: R has addresses 1.1.1.2.1.1 and 3.1.1.1.1",
          dewey.addresses("R") == ((1, 1, 1, 2, 1, 1), (3, 1, 1, 1, 1)))
    check("Section 3.2: D(G, F) = 5 through common ancestor A",
          concept_distance(ontology, "G", "F") == 5)
    drc = DRC(ontology, dewey)
    check("Example 1: Ddq({F,R,T,V}, {I,L,U}) = 7",
          drc.document_query_distance(EXAMPLE_DOCUMENT, EXAMPLE_QUERY) == 7)
    searcher = KNDSearch(ontology, example4_collection())
    results = searcher.rds(["F", "I"], k=2)
    check("Table 2: kNDS top-2 for q={F,I} is {d2, d3} at distance 2",
          sorted(results.doc_ids()) == ["d2", "d3"]
          and results.distances() == [2.0, 2.0])

    print("\nEfficiency shapes (synthetic SNOMED-like world):")
    world_ontology = snomed_like(1_500, seed=99)
    corpus = radio_like(world_ontology, num_docs=400, mean_concepts=12,
                        seed=98)

    # Figure 6 shape: BL quadratic vs DRC sub-quadratic.
    baseline = PairwiseDistanceBaseline(world_ontology)
    world_drc = DRC(world_ontology)
    timings = {}
    for nq in (20, 160):
        docs = random_query_documents(corpus, nq=nq, count=6, seed=nq)
        pairs = list(zip(docs[0::2], docs[1::2]))
        for label, fn in (("bl", baseline.document_document_distance),
                          ("drc", world_drc.document_document_distance)):
            start = time.perf_counter()
            for a, b in pairs:
                fn(a.concepts, b.concepts)
            timings[(label, nq)] = (time.perf_counter() - start) / len(pairs)
    bl_growth = timings[("bl", 160)] / timings[("bl", 20)]
    drc_growth = timings[("drc", 160)] / timings[("drc", 20)]
    check(f"Figure 6: BL grows faster than DRC "
          f"(x{bl_growth:.0f} vs x{drc_growth:.0f} from nq=20 to 160)",
          bl_growth > drc_growth)

    # Figures 8/9 shape: kNDS beats the exhaustive baseline.
    knds = KNDSearch(world_ontology, corpus)
    scan = FullScanSearch(world_ontology, corpus)
    queries = random_concept_queries(corpus, nq=3, count=3, seed=97)
    knds_time = scan_time = 0.0
    agreement = True
    for query in queries:
        mine = knds.rds(query, 10, error_threshold=0.9)
        truth = scan.rds(query, 10)
        knds_time += mine.stats.total_seconds
        scan_time += truth.stats.total_seconds
        agreement &= mine.distances() == truth.distances()
    check("Figures 8/9: kNDS matches the exhaustive baseline's top-10",
          agreement)
    check(f"Figures 8/9: kNDS is faster "
          f"(x{scan_time / knds_time:.0f} on this run)",
          knds_time < scan_time)

    failed = [name for name, condition in CHECKS if not condition]
    print(f"\n{len(CHECKS) - len(failed)}/{len(CHECKS)} checks passed")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
