"""CI smoke check for the query service: boot, load, drain, assert.

Builds a small synthetic world, starts the HTTP server on a free port,
drives it with the load generator from several client threads, and
asserts the serving contract end to end:

* every request is answered (no transport errors, no hangs);
* zero 5xx responses under concurrent mixed RDS/SDS load;
* repeated queries are served from the result cache;
* every request's ``traceparent`` round-trips (client trace ids are
  echoed in the response headers);
* ``/healthz`` and ``/metrics`` respond with real content;
* graceful shutdown drains and then refuses connections.

Exit code 0 on success, 1 with a diagnostic on any failure.  Run it
from the repository root::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import http.client
import json
import sys


def fail(message: str) -> None:
    """Print a diagnostic and exit nonzero."""
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def fetch(address: tuple[str, int], method: str, path: str,
          timeout: float = 10.0) -> tuple[int, bytes]:
    """One-shot request; returns (status, body)."""
    connection = http.client.HTTPConnection(*address, timeout=timeout)
    try:
        connection.request(method, path)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def main() -> int:
    """Run the smoke sequence; returns the process exit code."""
    from repro.core.engine import SearchEngine
    from repro.corpus.generators import radio_like
    from repro.ontology.generators import snomed_like
    from repro.serve import (QueryService, ServeConfig, ServerHandle,
                             mixed_workload, run_load)

    print("# building world (400-concept ontology, 120-doc corpus)")
    ontology = snomed_like(400, seed=7)
    collection = radio_like(ontology, num_docs=120, seed=11)
    engine = SearchEngine(ontology, collection)
    service = QueryService(engine, ServeConfig(workers=4, queue_limit=32))
    handle = ServerHandle.start(service, port=0)
    address = handle.address
    print(f"# serving on {address[0]}:{address[1]}")

    status, body = fetch(address, "GET", "/healthz")
    if status != 200:
        fail(f"/healthz returned {status}")
    health = json.loads(body)
    if health["documents"] != 120:
        fail(f"/healthz reports {health['documents']} documents, not 120")

    workload = mixed_workload(collection, count=60, nq=4, k=10, seed=3)
    report = run_load(address, workload, threads=6, repeat=3)
    print(f"# load: {report.total} responses, statuses="
          f"{dict(report.statuses)}, p50={report.percentile(0.5)*1e3:.1f}ms "
          f"p99={report.percentile(0.99)*1e3:.1f}ms")
    if report.errors:
        fail(f"transport errors under load: {report.errors[:3]}")
    if report.server_errors:
        fail(f"{report.server_errors} 5xx responses under load")
    expected = len(workload) * 3
    if report.count(200) != expected:
        fail(f"expected {expected} 200s, got {report.count(200)}")
    if report.traced != report.total:
        fail(f"traceparent round-trip failed: only {report.traced} of "
             f"{report.total} responses echoed the client trace id")
    print(f"# tracing: {report.traced}/{report.total} responses echoed "
          f"their traceparent")

    stats = service.cache.stats
    print(f"# cache: {stats.hits} hits / {stats.misses} misses "
          f"(hit rate {stats.hit_rate:.0%})")
    if stats.hits == 0:
        fail("repeated workload produced no cache hits")

    status, body = fetch(address, "GET", "/metrics")
    if status != 200 or not body:
        fail(f"/metrics returned {status} with {len(body)} bytes")
    text = body.decode("utf-8")
    for needle in ("serve_requests", "serve_cache_hits",
                   "query_latency_seconds"):
        if needle not in text:
            fail(f"/metrics is missing the {needle} series")

    print("# draining")
    handle.stop()
    try:
        status, _ = fetch(address, "GET", "/healthz", timeout=2.0)
    except OSError:
        pass  # connection refused: the server is gone, as required
    else:
        fail(f"server still answering after stop (status {status})")
    service.close()
    engine.close()
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
