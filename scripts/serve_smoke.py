"""CI smoke check for the query service: boot, load, drain, assert.

Builds a small synthetic world, starts the HTTP server on a free port,
drives it with the load generator from several client threads, and
asserts the serving contract end to end:

* every request is answered (no transport errors, no hangs);
* zero 5xx responses under concurrent mixed RDS/SDS load;
* repeated queries are served from the result cache;
* every request's ``traceparent`` round-trips (client trace ids are
  echoed in the response headers);
* ``/healthz`` and ``/metrics`` respond with real content;
* graceful shutdown drains and then refuses connections.

A second, sharded phase boots the same world behind ``--shards 2``
(:class:`repro.shard.ShardedEngine`) and asserts the sharded contract:

* merged scatter-gather results are bit-identical to the single engine;
* the same deterministic load yields zero 5xx and the same 200 count;
* ``/healthz`` aggregates per-worker shard health;
* SIGKILLing one worker mid-load self-heals by respawn-and-retry:
  every response is 200 or a bounded number of 503s, answers stay
  correct afterwards, and the respawn is recorded.

Exit code 0 on success, 1 with a diagnostic on any failure.  Run it
from the repository root::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import sys
import time


def fail(message: str) -> None:
    """Print a diagnostic and exit nonzero."""
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def fetch(address: tuple[str, int], method: str, path: str,
          timeout: float = 10.0) -> tuple[int, bytes]:
    """One-shot request; returns (status, body)."""
    connection = http.client.HTTPConnection(*address, timeout=timeout)
    try:
        connection.request(method, path)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def main() -> int:
    """Run the smoke sequence; returns the process exit code."""
    from repro.core.engine import SearchEngine
    from repro.corpus.generators import radio_like
    from repro.ontology.generators import snomed_like
    from repro.serve import (QueryService, ServeConfig, ServerHandle,
                             mixed_workload, run_load)

    print("# building world (400-concept ontology, 120-doc corpus)")
    ontology = snomed_like(400, seed=7)
    collection = radio_like(ontology, num_docs=120, seed=11)
    engine = SearchEngine(ontology, collection)
    service = QueryService(engine, ServeConfig(workers=4, queue_limit=32))
    handle = ServerHandle.start(service, port=0)
    address = handle.address
    print(f"# serving on {address[0]}:{address[1]}")

    status, body = fetch(address, "GET", "/healthz")
    if status != 200:
        fail(f"/healthz returned {status}")
    health = json.loads(body)
    if health["documents"] != 120:
        fail(f"/healthz reports {health['documents']} documents, not 120")

    workload = mixed_workload(collection, count=60, nq=4, k=10, seed=3)
    report = run_load(address, workload, threads=6, repeat=3)
    print(f"# load: {report.total} responses, statuses="
          f"{dict(report.statuses)}, p50={report.percentile(0.5)*1e3:.1f}ms "
          f"p99={report.percentile(0.99)*1e3:.1f}ms")
    if report.errors:
        fail(f"transport errors under load: {report.errors[:3]}")
    if report.server_errors:
        fail(f"{report.server_errors} 5xx responses under load")
    expected = len(workload) * 3
    if report.count(200) != expected:
        fail(f"expected {expected} 200s, got {report.count(200)}")
    if report.traced != report.total:
        fail(f"traceparent round-trip failed: only {report.traced} of "
             f"{report.total} responses echoed the client trace id")
    print(f"# tracing: {report.traced}/{report.total} responses echoed "
          f"their traceparent")

    stats = service.cache.stats
    print(f"# cache: {stats.hits} hits / {stats.misses} misses "
          f"(hit rate {stats.hit_rate:.0%})")
    if stats.hits == 0:
        fail("repeated workload produced no cache hits")

    status, body = fetch(address, "GET", "/metrics")
    if status != 200 or not body:
        fail(f"/metrics returned {status} with {len(body)} bytes")
    text = body.decode("utf-8")
    for needle in ("serve_requests", "serve_cache_hits",
                   "query_latency_seconds"):
        if needle not in text:
            fail(f"/metrics is missing the {needle} series")

    print("# draining")
    handle.stop()
    try:
        status, _ = fetch(address, "GET", "/healthz", timeout=2.0)
    except OSError:
        pass  # connection refused: the server is gone, as required
    else:
        fail(f"server still answering after stop (status {status})")
    service.close()

    sharded_smoke(ontology, collection, engine)
    cli_sharded_smoke(ontology, collection)
    engine.close()
    print("serve smoke: OK")
    return 0


def cli_sharded_smoke(ontology, collection) -> None:
    """``repro serve --shards 2`` as a real subprocess: boot, probe,
    SIGTERM, clean exit."""
    import re
    import subprocess
    import tempfile

    from repro.corpus.io import save_jsonl
    from repro.ontology.io.csvio import save_csv

    print("# CLI phase: python -m repro serve --shards 2")
    with tempfile.TemporaryDirectory(prefix="serve_smoke_") as tmp:
        prefix = os.path.join(tmp, "onto")
        save_csv(ontology, f"{prefix}.concepts.csv", f"{prefix}.edges.csv")
        corpus_path = os.path.join(tmp, "corpus.jsonl")
        save_jsonl(collection, corpus_path)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--ontology", prefix, "--corpus", corpus_path,
             "--port", "0", "--shards", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env={**os.environ, "PYTHONPATH": "src"})
        try:
            address = None
            deadline = time.monotonic() + 60.0
            assert process.stdout is not None
            for line in process.stdout:
                match = re.search(r"serving on http://([\d.]+):(\d+)",
                                  line)
                if match:
                    address = (match.group(1), int(match.group(2)))
                    break
                if time.monotonic() > deadline:
                    break
            if address is None:
                fail("repro serve --shards 2 never announced its address")
            status, body = fetch(address, "GET", "/healthz", timeout=30.0)
            health = json.loads(body)
            if status != 200 or health.get("shards", {}).get("alive") != 2:
                fail(f"CLI server /healthz wrong: {status} {body!r}")
            connection = http.client.HTTPConnection(*address, timeout=30.0)
            try:
                concepts = list(next(iter(collection)).concepts[:3])
                connection.request(
                    "POST", "/search/rds",
                    body=json.dumps({"concepts": concepts, "k": 5}),
                    headers={"Content-Type": "application/json"})
                response = connection.getresponse()
                payload = json.loads(response.read())
                if response.status != 200 or not payload["results"]:
                    fail(f"CLI server query failed: {response.status}")
            finally:
                connection.close()
            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=30.0)
            if code != 0:
                fail(f"repro serve --shards 2 exited {code} on SIGTERM")
            print("# CLI server answered and drained cleanly")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)


def sharded_smoke(ontology, collection, single_engine) -> None:
    """The ``--shards 2`` phase: parity, zero 5xx, crash recovery."""
    from repro.serve import (QueryService, ServeConfig, ServerHandle,
                             mixed_workload, run_load)
    from repro.shard import ShardedEngine

    print("# sharded phase: 2 worker processes")
    engine = ShardedEngine(ontology, collection, shards=2)
    try:
        # Merged-result parity against the single-process engine, on
        # real queries drawn from the corpus.
        checked = 0
        for spec in mixed_workload(collection, count=20, nq=4, k=10,
                                   seed=9):
            if spec.kind == "rds":
                one = single_engine.rds(spec.payload["concepts"], k=10)
                two = engine.rds(spec.payload["concepts"], k=10)
            else:
                query = spec.payload.get("doc_id") \
                    or spec.payload["concepts"]
                one = single_engine.sds(query, k=10)
                two = engine.sds(query, k=10)
            if [(i.doc_id, i.distance) for i in one.results] \
                    != [(i.doc_id, i.distance) for i in two.results]:
                fail(f"sharded result differs from single engine for "
                     f"{spec.path} {spec.payload!r}")
            checked += 1
        print(f"# parity: {checked} queries bit-identical to the "
              f"single engine")

        service = QueryService(engine,
                               ServeConfig(workers=4, queue_limit=32))
        handle = ServerHandle.start(service, port=0)
        address = handle.address
        try:
            status, body = fetch(address, "GET", "/healthz")
            health = json.loads(body)
            if status != 200 or health.get("shards", {}).get("alive") != 2:
                fail(f"/healthz shard aggregation wrong: {status} "
                     f"{body!r}")

            workload = mixed_workload(collection, count=60, nq=4, k=10,
                                      seed=3)
            report = run_load(address, workload, threads=6, repeat=3)
            print(f"# sharded load: {report.total} responses, statuses="
                  f"{dict(report.statuses)}")
            if report.errors:
                fail("transport errors under sharded load: "
                     f"{report.errors[:3]}")
            if report.server_errors:
                fail(f"{report.server_errors} 5xx responses under "
                     f"sharded load")
            if report.count(200) != len(workload) * 3:
                fail(f"expected {len(workload) * 3} 200s under sharded "
                     f"load, got {report.count(200)}")

            # Kill one worker mid-load: the engine must respawn it and
            # keep answering.  Admissible statuses are 200 and (rarely,
            # for a request that loses the respawn race twice) 503 —
            # never a wrong answer or a 500.  A fresh workload seed
            # guarantees cache misses, so the dead worker is really hit.
            victim = engine.shard_health()[0]["pid"]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while engine.shard_health()[0]["alive"]:
                if time.monotonic() > deadline:
                    fail("killed worker still reported alive")
                time.sleep(0.05)
            fresh = mixed_workload(collection, count=60, nq=4, k=10,
                                   seed=17)
            report = run_load(address, fresh, threads=6, repeat=2)
            print(f"# post-kill load: {report.total} responses, statuses="
                  f"{dict(report.statuses)}")
            if report.errors:
                fail("transport errors after worker kill: "
                     f"{report.errors[:3]}")
            bad = {status for status in report.statuses
                   if status not in (200, 503)}
            if bad:
                fail(f"unexpected statuses after worker kill: {bad}")
            if report.count(503) > 5:
                fail(f"unbounded 503s after worker kill: "
                     f"{report.count(503)}")
            if engine.shard_health()[0]["restarts"] < 1:
                fail("worker kill did not record a respawn")
            expected = single_engine.rds(
                next(iter(collection)).concepts[:3], k=5)
            merged = engine.rds(
                next(iter(collection)).concepts[:3], k=5)
            if expected.doc_ids() != merged.doc_ids():
                fail("post-respawn answers differ from the single engine")
            print(f"# respawn: shard 0 restarted "
                  f"{engine.shard_health()[0]['restarts']}x, answers "
                  f"still correct")
        finally:
            handle.stop()
            service.close()
    finally:
        engine.close()


if __name__ == "__main__":
    sys.exit(main())
