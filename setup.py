"""Setuptools shim for environments without PEP 660 editable support.

All project metadata lives in ``pyproject.toml``; this file only enables
``pip install -e .`` on older setuptools/pip stacks (legacy develop mode).
"""

from setuptools import setup

setup()
