# Convenience targets; all of them are plain pytest/python invocations.

.PHONY: install test bench experiments verify examples clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.bench.experiments --chart

verify:
	python scripts/verify_reproduction.py

report:
	python -m repro.bench.export benchmarks/results --out benchmarks/REPORT.md

examples:
	python examples/quickstart.py
	python examples/note_extraction.py
	python examples/clinical_trial_search.py
	python examples/patient_similarity.py
	python examples/semantic_measures.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
