# Convenience targets; all of them are plain pytest/python invocations.
# PYTHONPATH is exported so the targets work without installing the
# package (src/ layout).

export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test lint typecheck sanitize bench perf perf-gate \
	experiments verify serve-smoke examples clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	python -m pytest -x -q

# Domain-aware static analysis (rule catalogue: docs/STATIC_ANALYSIS.md).
# The concurrency family (RPR011-013) runs as part of the full rule set;
# `repro locks` additionally fails on lock-ordering cycles in the
# acquisition graph.
lint:
	python -m repro lint src
	python -m repro lint --concurrency src
	python -m repro locks src

# Runtime lock sanitizer over the thread-heavy test subset: the serve
# path and the shared arena run with every lock wrapped in recording
# proxies (see docs/STATIC_ANALYSIS.md, "Concurrency rules").
sanitize:
	python -m pytest -x -q tests/serve tests/core/test_arena.py

# Strict typing gate. mypy is a CI-only dependency (the runtime has no
# third-party deps); skip gracefully when it is not installed locally.
typecheck:
	@if python -c "import mypy" 2>/dev/null; then \
		python -m mypy --strict src/repro; \
	else \
		echo "mypy not installed; skipping (CI runs it)"; \
	fi

bench:
	python -m pytest benchmarks/ --benchmark-only

# Record a perf baseline artifact (BENCH_baseline.json + .md at the root).
perf:
	python -m repro bench --scenarios smoke --repeat 3 \
		--json-out BENCH_baseline.json

# Gate the working tree against the recorded baseline.
perf-gate:
	python -m repro bench --scenarios smoke --repeat 3 \
		--baseline BENCH_baseline.json \
		--json-out BENCH_current.json --fail-on-regress

experiments:
	python -m repro.bench.experiments --chart

verify:
	python scripts/verify_reproduction.py

# Boot the HTTP query service on a generated corpus and assert the
# serving contract under concurrent load (docs/SERVING.md).
serve-smoke:
	python scripts/serve_smoke.py

report:
	python -m repro.bench.export benchmarks/results --out benchmarks/REPORT.md

examples:
	python examples/quickstart.py
	python examples/note_extraction.py
	python examples/clinical_trial_search.py
	python examples/patient_similarity.py
	python examples/semantic_measures.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
