"""Quickstart: concept-based search on the paper's running example.

Builds the Figure 3 ontology and the six-document example collection,
then runs one RDS query (a set of concepts) and one SDS query (a whole
document) with the kNDS algorithm, printing results and the cost
breakdown the paper's experiments report.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SearchEngine, example4_collection, figure3_ontology


def main() -> None:
    ontology = figure3_ontology()
    collection = example4_collection()
    engine = SearchEngine(ontology, collection)

    print(f"Ontology: {len(ontology)} concepts, root {ontology.root!r}")
    print(f"Corpus:   {len(collection)} documents")
    print()

    # --- RDS: which documents are most relevant to a set of concepts? ---
    query = ["F", "I"]
    results = engine.rds(query, k=2)
    print(f"RDS top-2 for concepts {query}:")
    for rank, item in enumerate(results, start=1):
        document = collection.get(item.doc_id)
        print(f"  {rank}. {item.doc_id}  Ddq={item.distance:g}  "
              f"concepts={list(document.concepts)}")
    stats = results.stats
    print(f"  ({stats.docs_examined} documents examined, "
          f"{stats.drc_calls} DRC probes, {stats.bfs_levels} BFS levels, "
          f"{stats.total_seconds * 1000:.2f} ms)")
    print()

    # --- SDS: which documents are most similar to a given document? ---
    results = engine.sds("d1", k=3)
    print("SDS top-3 for document d1 "
          f"(concepts={list(collection.get('d1').concepts)}):")
    for rank, item in enumerate(results, start=1):
        print(f"  {rank}. {item.doc_id}  Ddd={item.distance:.3f}")
    print()

    # --- Progressive output: results stream as they are confirmed. ---
    print("Progressive RDS (optimization 4): ", end="")
    for item in engine.knds.rds_iter(query, k=2):
        print(f"{item.doc_id}:{item.distance:g}", end="  ")
    print()

    # --- Cross-check against the exhaustive baseline. ---
    baseline = engine.rds(query, k=2, algorithm="fullscan")
    assert baseline.distances() == results_distances(engine, query)
    print("Full-scan baseline agrees with kNDS.")


def results_distances(engine: SearchEngine, query: list[str]) -> list[float]:
    return engine.rds(query, k=2).distances()


if __name__ == "__main__":
    main()
