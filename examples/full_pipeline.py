"""The complete lifecycle, end to end.

Everything a deployment does, in order: generate an ontology, synthesize
raw clinical notes, run section-aware extraction, apply the paper's
concept filters, build and persist an engine, reload it, admit a new
patient on the fly, search, and explain the top result.  Also shows the
release-management tooling: diffing two ontology versions to see which
concepts' distances a new release may change.

Run:
    python examples/full_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Document, SearchEngine, snomed_like
from repro.core.persistence import load_engine, save_engine
from repro.corpus.filters import apply_default_filters
from repro.corpus.text.notegen import notes_corpus
from repro.corpus.text.pipeline import ConceptExtractor
from repro.corpus.text.sections import extract_with_sections
from repro.ontology.diff import diff_ontologies, summarize_diff
from repro.ontology.subgraph import extract_rooted


def main() -> None:
    print("1. Ontology: 1,200-concept SNOMED-like DAG")
    ontology = snomed_like(1_200, seed=50)

    print("2. Corpus: 60 generated clinical notes, extracted through the "
          "pipeline")
    corpus = notes_corpus(ontology, num_docs=60, mean_concepts=7,
                          negation_rate=0.4, seed=51)
    sample = next(iter(corpus))
    print("   sample note "
          f"({sample.doc_id}, {len(sample)} positive concepts):")
    assert sample.text is not None
    for line in sample.text.splitlines()[:3]:
        print(f"     {line[:72]}")

    print("\n3. Section-aware view of the same note:")
    extractor = ConceptExtractor.for_ontology(ontology)
    concepts, mentions = extract_with_sections(extractor, sample.text)
    admitted = sum(1 for m in mentions if m.admitted)
    print(f"   {len(mentions)} mentions in {admitted} admitted spans, "
          f"{len(concepts)} positive concepts")

    print("\n4. Paper filters (depth >= 2, collection frequency <= μ+σ):")
    filtered = apply_default_filters(ontology, corpus, min_depth=2)
    print(f"   {len(corpus)} -> {len(filtered)} documents, "
          f"{len(corpus.distinct_concepts())} -> "
          f"{len(filtered.distinct_concepts())} distinct concepts")

    with tempfile.TemporaryDirectory() as tmp:
        deploy = Path(tmp) / "deploy"
        print(f"\n5. Build, persist and reload the engine ({deploy.name}/)")
        with SearchEngine(ontology, filtered) as builder:
            save_engine(builder, deploy)

        # The engine is a context manager: close() runs on exit even if
        # a query raises, which matters for the SQLite backend.
        with load_engine(deploy) as engine:
            print("\n6. A new patient arrives (indexed instantly, "
                  "no rebuild):")
            donor = next(iter(filtered))
            newcomer = Document("new-patient", donor.concepts[:5])
            engine.add_document(newcomer)
            results = engine.sds("new-patient", k=4, error_threshold=0.9)
            for rank, item in enumerate(results, start=1):
                print(f"   {rank}. {item.doc_id}  Ddd={item.distance:.3f}")

            print("\n7. Explain the best existing match:")
            best = next(i for i in results if i.doc_id != "new-patient")
            explanation = engine.explain(best.doc_id,
                                         list(newcomer.concepts[:3]))
            for line in explanation.splitlines():
                print(f"   {line[:76]}")

    print("\n8. Release management: what would a new ontology version "
          "change?")
    hub = next(iter(ontology.children(ontology.root)))
    pruned = extract_rooted(ontology, ontology.root)  # structural copy
    # Simulate a release that drops one whole branch.
    new_version = extract_rooted(ontology, ontology.root)
    victim_branch = ontology.children(hub)[0] if ontology.children(hub) \
        else hub
    kept = set(new_version.concepts()) - (
        new_version.descendants(victim_branch) | {victim_branch})
    from repro.ontology.subgraph import extract_closure
    new_version = extract_closure(ontology, kept & set(ontology.concepts()))
    diff = diff_ontologies(pruned, new_version)
    print(f"   {summarize_diff(diff)}")
    impacted = diff.impacted_concepts(new_version)
    print(f"   {len(impacted)} concepts need distance re-validation; "
          f"{len(ontology) - len(impacted)} provably unaffected")


if __name__ == "__main__":
    main()
