"""Semantic similarity measures and weighted ranking (extensions).

The paper adopts the shortest valid-path distance and uniform concept
weights, and defers "other semantic distances" to future work.  This
example exercises the extension modules on that future work:

1. compare path-based and information-content measures on concept pairs;
2. use information content to *weight* the Melton document distance, so
   specific concepts dominate similarity;
3. expand a query with its ontological neighborhood and merge sub-query
   scores with the paper's footnote-3 normalization.

Run:
    python examples/semantic_measures.py
"""

from __future__ import annotations

from repro import SearchEngine, snomed_like
from repro.core.expansion import QueryExpander, merged_rds
from repro.corpus.generators import radio_like
from repro.ontology.distance import concept_distance
from repro.ontology.measures import (
    InformationContent,
    least_common_ancestors,
    wu_palmer_similarity,
)
from repro.ontology.weighting import (
    information_content_weights,
    weighted_rerank,
)


def main() -> None:
    ontology = snomed_like(1_500, seed=30)
    corpus = radio_like(ontology, num_docs=400, mean_concepts=12, seed=31)
    engine = SearchEngine(ontology, corpus)
    ic = InformationContent.from_collection(ontology, corpus)

    # --- 1. Measure comparison on concept pairs ----------------------
    concepts = sorted(corpus.distinct_concepts())
    pairs = [(concepts[3], concepts[4]), (concepts[3], concepts[200]),
             (concepts[50], concepts[51])]
    print("Concept-pair measures (path distance | Wu-Palmer | Lin):")
    for first, second in pairs:
        path = concept_distance(ontology, first, second)
        wp = wu_palmer_similarity(ontology, first, second)
        lin = ic.lin_similarity(first, second)
        lca = sorted(least_common_ancestors(ontology, first, second))[0]
        print(f"  {first} vs {second}: dist={path:>2}  wu-palmer={wp:.2f}  "
              f"lin={lin:.2f}  (LCA {ontology.label(lca)!r})")
    print()

    # --- 2. IC-weighted similarity ------------------------------------
    query_doc = next(iter(corpus))
    base = engine.sds(query_doc, k=12, error_threshold=0.9)
    weights = information_content_weights(
        ic, set(query_doc.concepts) | corpus.distinct_concepts())
    reranked = weighted_rerank(
        ontology, base, engine.forward.concepts, query_doc.concepts,
        weights=weights, kind="ddd", drc=engine.drc)
    print(f"SDS for {query_doc.doc_id}: uniform vs IC-weighted ranking")
    print(f"  {'rank':>4} {'uniform':<12} {'weighted':<12}")
    for rank, (uniform, weighted) in enumerate(
            zip(base.results[:6], reranked.results[:6]), start=1):
        print(f"  {rank:>4} {uniform.doc_id:<12} {weighted.doc_id:<12}")
    moved = sum(
        1 for u, w in zip(base.results, reranked.results)
        if u.doc_id != w.doc_id
    )
    print(f"  ({moved} of {len(base)} positions changed under IC weights)\n")

    # --- 3. Query expansion + footnote-3 merge ------------------------
    seed_query = list(query_doc.concepts[:2])
    expander = QueryExpander(ontology, radius=1, decay=0.5)
    expanded = expander.expand(seed_query)
    print(f"Query {seed_query} expands to {len(expanded)} weighted "
          "concepts (radius 1):")
    shown = sorted(expanded.items(), key=lambda kv: -kv[1])[:6]
    for concept, weight in shown:
        print(f"  {weight:.2f}  {concept}  {ontology.label(concept)!r}")
    merged = merged_rds(
        ontology, corpus,
        [tuple(seed_query), tuple(expander.expanded_concepts(seed_query))],
        k=5, drc=engine.drc)
    print("\nMerged ranking over {original, expanded} sub-queries "
          "(footnote-3 normalization):")
    for rank, item in enumerate(merged, start=1):
        print(f"  {rank}. {item.doc_id}  score={item.distance:.3f}")


if __name__ == "__main__":
    main()
