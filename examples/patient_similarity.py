"""Patient similarity search: the paper's SDS motivating scenario.

A physician looks for patients similar to the one at the point of care
(Section 1), using the symmetric Melton et al. document-document distance.
This example also demonstrates the paper's on-the-fly update story: a
brand-new patient record is added and queried immediately, with no index
rebuild — the property that distinguishes kNDS from the TA baseline.

Run:
    python examples/patient_similarity.py
"""

from __future__ import annotations

from repro import Document, SearchEngine, snomed_like
from repro.corpus.generators import radio_like
from repro.ontology.traversal import ValidPathBFS


def main() -> None:
    print("Building a SNOMED-like ontology (2,000 concepts)...")
    ontology = snomed_like(2_000, seed=20)
    print("Building a RADIO-like corpus (800 radiology reports)...")
    corpus = radio_like(ontology, num_docs=800, mean_concepts=14, seed=21)

    # --- A new patient arrives at the point of care. ------------------
    # Their record is assembled from a seed condition and its ontology
    # neighborhood (the same locality real EMRs show), added to the
    # corpus, and queried immediately: no distance precomputation exists
    # to invalidate.
    seed_concept = sorted(corpus.distinct_concepts())[42]
    neighborhood = []
    for level, nodes in ValidPathBFS(ontology, seed_concept):
        if level > 2:
            break
        neighborhood.extend(nodes)
    new_patient = Document("new-patient", neighborhood[:12],
                           metadata={"admitted": "today"})
    corpus.add(new_patient)
    print(f"Admitted {new_patient.doc_id!r} with {len(new_patient)} "
          f"concepts around {ontology.label(seed_concept)!r}\n")

    engine = SearchEngine(ontology, corpus)

    results = engine.sds(new_patient, k=6, error_threshold=0.9)
    print("Most similar existing reports (symmetric Ddd, Eq. 3):")
    for rank, item in enumerate(results, start=1):
        marker = "  <- the query itself" if item.doc_id == "new-patient" \
            else ""
        print(f"  {rank}. {item.doc_id}  Ddd={item.distance:.3f}{marker}")
    print()

    stats = results.stats
    print("Cost breakdown (the components the paper plots):")
    print(f"  traversal: {stats.traversal_seconds * 1e3:7.1f} ms over "
          f"{stats.bfs_levels} BFS levels, {stats.nodes_visited} concept "
          f"visits")
    print(f"  distance:  {stats.distance_seconds * 1e3:7.1f} ms over "
          f"{stats.drc_calls} DRC probes "
          f"(+{stats.covered_shortcuts} coverage shortcuts)")
    print(f"  index IO:  {stats.io_seconds * 1e3:7.1f} ms")
    print(f"  pruned {stats.docs_pruned} of {stats.docs_touched} touched "
          f"documents without an exact distance")

    # Similarity is symmetric: querying back from the best match finds
    # the new patient equally close.
    best_match = next(item.doc_id for item in results
                      if item.doc_id != "new-patient")
    reverse = engine.sds(best_match, k=6, error_threshold=0.9)
    forward_distance = next(i.distance for i in results
                            if i.doc_id == best_match)
    reverse_distance = next((i.distance for i in reverse
                             if i.doc_id == "new-patient"), None)
    if reverse_distance is not None:
        print(f"\nSymmetry check: Ddd({new_patient.doc_id}, {best_match}) "
              f"= {forward_distance:.3f} and "
              f"Ddd({best_match}, {new_patient.doc_id}) "
              f"= {reverse_distance:.3f}")


if __name__ == "__main__":
    main()
