"""End-to-end pipeline: raw clinical notes to ranked search results.

Reproduces the paper's data preparation (Section 6.1) on synthetic notes:
abbreviation expansion, concept mapping against ontology terms (the
MetaMap stand-in), NegEx-style negation filtering — then indexes the
extracted concept sets and searches them.

The note text below includes the paper's own Figure 1 excerpt and its
"absence of bradycardia" negation example.

Run:
    python examples/note_extraction.py
"""

from __future__ import annotations

from repro import DocumentCollection, SearchEngine
from repro.corpus.text import ConceptExtractor, ConceptMapper
from repro.ontology.builder import OntologyBuilder

NOTES = {
    "note-001": (
        "Patient here for follow up diabetes care. Computer print out of "
        "blood sugar shows average of 201 with 1.7 tests. There is "
        "hypoglycemia about 2-3 times a week."
    ),
    "note-002": (
        "Pt c/o SOB on exertion. Hx of CHF and HTN. No chest pain today. "
        "Echo shows aortic valve stenosis, moderate."
    ),
    "note-003": (
        "Stable overnight with absence of bradycardia. Denies dizziness. "
        "Continue current plan for hypertension."
    ),
    "note-004": (
        "Admitted with myocardial infarction. S/P catheterization. "
        "R/O pulmonary embolism — CT negative for embolus."
    ),
}


def build_ontology():
    """A small cardiology-flavoured is-a hierarchy."""
    builder = OntologyBuilder("cardio-demo")
    hierarchy = {
        "finding": ["cardiac finding", "endocrine finding",
                    "respiratory finding"],
        "cardiac finding": ["heart disease", "heart valve finding",
                            "bradycardia", "chest pain"],
        "heart disease": ["congestive heart failure",
                          "myocardial infarction", "hypertension"],
        "heart valve finding": ["aortic valve stenosis"],
        "endocrine finding": ["diabetes mellitus", "hypoglycemia"],
        "respiratory finding": ["shortness of breath",
                                "pulmonary embolism"],
    }
    names = {"finding"} | {
        child for children in hierarchy.values() for child in children
    }
    for index, name in enumerate(sorted(names)):
        builder.add_concept(f"C{index:03d}", name)
    by_name = {name: f"C{index:03d}"
               for index, name in enumerate(sorted(names))}
    for parent, children in hierarchy.items():
        for child in children:
            builder.add_edge(by_name[parent], by_name[child])
    return builder.build(), by_name


def main() -> None:
    ontology, by_name = build_ontology()
    extractor = ConceptExtractor(ConceptMapper.from_ontology(ontology))

    print("Extracting concepts from clinical notes:")
    documents = []
    for note_id, text in NOTES.items():
        mentions = extractor.mentions(text)
        document = extractor.to_document(note_id, text)
        documents.append(document)
        print(f"\n{note_id}: {text[:64]}...")
        for mention in mentions:
            polarity = "NEGATED " if mention.negated else "positive"
            print(f"    [{polarity}] {mention.text!r} -> "
                  f"{mention.concept_id} "
                  f"({ontology.label(mention.concept_id)})")

    collection = DocumentCollection(documents, name="notes")
    engine = SearchEngine(ontology, collection)

    # Search for heart-failure-like patients: note-002 mentions CHF
    # explicitly; note-004's myocardial infarction is an ontological
    # sibling, so it ranks next even without the literal term.
    query = [by_name["congestive heart failure"]]
    print("\nRDS for 'congestive heart failure':")
    for rank, item in enumerate(engine.rds(query, k=4), start=1):
        print(f"  {rank}. {item.doc_id}  Ddq={item.distance:g}")

    # note-003's bradycardia was negated, so a bradycardia query must not
    # put note-003 at distance 0.
    query = [by_name["bradycardia"]]
    results = engine.rds(query, k=4)
    print("\nRDS for 'bradycardia' (note-003 negated its only mention):")
    for rank, item in enumerate(results, start=1):
        print(f"  {rank}. {item.doc_id}  Ddq={item.distance:g}")
    assert all(item.distance > 0 for item in results
               if item.doc_id == "note-003")


if __name__ == "__main__":
    main()
