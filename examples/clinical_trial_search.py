"""Clinical-trial cohort search: the paper's RDS motivating scenario.

A clinical researcher wants patients that qualify for a trial, described
by a set of medical concepts (Section 1: "the researcher wishes to find
the most relevant patient records with respect to a set of medical
concepts").  This example:

1. generates a SNOMED-like ontology and a PATIENT-like corpus (each
   document is a whole patient record, hundreds of related concepts);
2. picks trial criteria as concepts from the ontology;
3. runs RDS with kNDS and shows how the error threshold εθ trades DRC
   probes against traversal — the paper's Figure 7 story, on PATIENT
   data where εθ = 0 is the published optimum.

Run:
    python examples/clinical_trial_search.py
"""

from __future__ import annotations

import random

from repro import SearchEngine, snomed_like
from repro.corpus.generators import patient_like


def main() -> None:
    print("Building a SNOMED-like ontology (2,000 concepts)...")
    ontology = snomed_like(2_000, seed=10)
    print("Building a PATIENT-like corpus (120 patient records)...")
    corpus = patient_like(ontology, num_docs=120, mean_concepts=60, seed=11)
    engine = SearchEngine(ontology, corpus)

    stats = corpus.stats()
    print(f"  {stats.total_documents} records, "
          f"{stats.avg_concepts_per_document:.0f} concepts/record on "
          f"average, {stats.total_concepts} distinct concepts\n")

    # Trial criteria: a handful of specific (deep) concepts.
    rng = random.Random(12)
    deep_concepts = [
        concept for concept in corpus.distinct_concepts()
        if ontology.depth(concept) >= 4
    ]
    criteria = rng.sample(sorted(deep_concepts), 5)
    print("Trial criteria (query concepts):")
    for concept in criteria:
        print(f"  {concept}: {ontology.label(concept)}")
    print()

    results = engine.rds(criteria, k=5)
    print("Top-5 candidate patients (smaller Ddq = more relevant):")
    for rank, item in enumerate(results, start=1):
        record = corpus.get(item.doc_id)
        print(f"  {rank}. {item.doc_id}  Ddq={item.distance:g}  "
              f"({len(record)} concepts on record)")
    print()

    # The Figure 7 tradeoff on PATIENT-shaped data: waiting for full
    # coverage (eps=0) avoids expensive DRC probes entirely.
    print("Error-threshold tradeoff (same query, k=5):")
    print(f"  {'eps':>4} {'time(ms)':>9} {'DRC probes':>11} "
          f"{'docs examined':>14}")
    for epsilon in (0.0, 0.5, 1.0):
        run = engine.rds(criteria, k=5, error_threshold=epsilon)
        print(f"  {epsilon:>4.1f} {run.stats.total_seconds * 1e3:>9.1f} "
              f"{run.stats.drc_calls:>11} {run.stats.docs_examined:>14}")
    print("\n(PATIENT-shaped corpora favour small eps: full coverage makes "
          "the exact distance free — the paper's Figure 7(a).)")


if __name__ == "__main__":
    main()
