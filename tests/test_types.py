"""Unit tests for shared types and Dewey helpers."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.types import common_prefix_length, format_dewey, parse_dewey


class TestFormatting:
    def test_format_and_parse_roundtrip(self):
        for address in [(), (1,), (1, 2, 3), (3, 1, 1, 2)]:
            assert parse_dewey(format_dewey(address)) == address

    def test_root_renders_as_epsilon(self):
        assert format_dewey(()) == "ε"
        assert parse_dewey("ε") == ()
        assert parse_dewey("") == ()
        assert parse_dewey("  ") == ()

    def test_dotted_notation(self):
        assert format_dewey((1, 1, 1, 2)) == "1.1.1.2"
        assert parse_dewey("1.1.1.2") == (1, 1, 1, 2)


class TestCommonPrefix:
    def test_basic_cases(self):
        assert common_prefix_length((1, 2, 3), (1, 2, 4)) == 2
        assert common_prefix_length((1, 2), (1, 2, 3)) == 2
        assert common_prefix_length((5,), (1,)) == 0
        assert common_prefix_length((), (1, 2)) == 0

    @given(st.lists(st.integers(1, 5), max_size=8),
           st.lists(st.integers(1, 5), max_size=8))
    def test_properties(self, left, right):
        left_t, right_t = tuple(left), tuple(right)
        lcp = common_prefix_length(left_t, right_t)
        assert 0 <= lcp <= min(len(left_t), len(right_t))
        assert left_t[:lcp] == right_t[:lcp]
        if lcp < min(len(left_t), len(right_t)):
            assert left_t[lcp] != right_t[lcp]
        assert lcp == common_prefix_length(right_t, left_t)
