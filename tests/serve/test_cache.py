"""QueryCache semantics: normalization, LRU, TTL, epoch invalidation."""

from __future__ import annotations

import threading

import pytest

from repro.serve.cache import QueryCache, normalize_key


def key(*concepts, kind="rds", k=10, algorithm="knds"):
    return normalize_key(kind, concepts, k, algorithm)


class TestKeyNormalization:
    def test_concept_order_is_irrelevant(self):
        assert key("I", "F") == key("F", "I")

    def test_kind_k_and_algorithm_distinguish(self):
        base = key("F", "I")
        assert key("F", "I", kind="sds") != base
        assert key("F", "I", k=5) != base
        assert key("F", "I", algorithm="fullscan") != base

    def test_key_is_hashable_and_stable(self):
        assert key("B", "A") == ("rds", ("A", "B"), 10, "knds")
        assert hash(key("B", "A")) == hash(key("A", "B"))


class TestLRU:
    def test_eviction_drops_least_recently_used(self):
        cache = QueryCache(2)
        cache.put(key("A"), 0, "a")
        cache.put(key("B"), 0, "b")
        assert cache.get(key("A"), 0) == "a"  # refresh A's position
        cache.put(key("C"), 0, "c")  # evicts B, the coldest
        assert cache.get(key("B"), 0) is None
        assert cache.get(key("A"), 0) == "a"
        assert cache.get(key("C"), 0) == "c"
        assert cache.stats.evictions == 1

    def test_put_refreshes_position(self):
        cache = QueryCache(2)
        cache.put(key("A"), 0, "a")
        cache.put(key("B"), 0, "b")
        cache.put(key("A"), 0, "a2")  # rewrite warms A
        cache.put(key("C"), 0, "c")
        assert cache.get(key("A"), 0) == "a2"
        assert cache.get(key("B"), 0) is None

    def test_keys_are_coldest_first(self):
        cache = QueryCache(3)
        for name in ("A", "B", "C"):
            cache.put(key(name), 0, name)
        cache.get(key("A"), 0)
        assert cache.keys() == [key("B"), key("C"), key("A")]

    def test_zero_capacity_disables_caching(self):
        cache = QueryCache(0)
        cache.put(key("A"), 0, "a")
        assert len(cache) == 0
        assert cache.get(key("A"), 0) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryCache(-1)


class TestTTL:
    def test_entry_expires_with_injected_clock(self):
        now = [0.0]
        cache = QueryCache(8, ttl_seconds=5.0, clock=lambda: now[0])
        cache.put(key("A"), 0, "a")
        now[0] = 4.9
        assert cache.get(key("A"), 0) == "a"
        now[0] = 5.1
        assert cache.get(key("A"), 0) is None
        assert cache.stats.expirations == 1
        assert key("A") not in cache  # dropped, not just hidden

    def test_hit_does_not_extend_ttl(self):
        now = [0.0]
        cache = QueryCache(8, ttl_seconds=5.0, clock=lambda: now[0])
        cache.put(key("A"), 0, "a")
        now[0] = 4.0
        assert cache.get(key("A"), 0) == "a"
        now[0] = 6.0
        assert cache.get(key("A"), 0) is None

    def test_rewrite_restarts_ttl(self):
        now = [0.0]
        cache = QueryCache(8, ttl_seconds=5.0, clock=lambda: now[0])
        cache.put(key("A"), 0, "a")
        now[0] = 4.0
        cache.put(key("A"), 0, "a2")
        now[0] = 8.0  # 8 > 5 from first write, but only 4 from rewrite
        assert cache.get(key("A"), 0) == "a2"

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            QueryCache(8, ttl_seconds=0.0)
        with pytest.raises(ValueError):
            QueryCache(8, ttl_seconds=-1.0)


class TestEpoch:
    def test_newer_epoch_invalidates(self):
        cache = QueryCache(8)
        cache.put(key("A"), 0, "a")
        assert cache.get(key("A"), 1) is None
        assert cache.stats.invalidations == 1
        assert key("A") not in cache

    def test_same_epoch_hits(self):
        cache = QueryCache(8)
        cache.put(key("A"), 3, "a")
        assert cache.get(key("A"), 3) == "a"

    def test_stale_write_never_served_to_new_epoch(self):
        # A worker that computed under epoch 0 may store after the
        # corpus moved to epoch 1; the entry must not satisfy epoch-1
        # lookups.
        cache = QueryCache(8)
        cache.put(key("A"), 0, "stale")
        assert cache.get(key("A"), 1) is None
        cache.put(key("A"), 1, "fresh")
        assert cache.get(key("A"), 1) == "fresh"


class TestStats:
    def test_hit_rate(self):
        cache = QueryCache(8)
        cache.put(key("A"), 0, "a")
        cache.get(key("A"), 0)
        cache.get(key("B"), 0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == 0.5

    def test_idle_hit_rate_is_zero(self):
        assert QueryCache(8).stats.hit_rate == 0.0

    def test_clear_keeps_counters(self):
        cache = QueryCache(8)
        cache.put(key("A"), 0, "a")
        cache.get(key("A"), 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


def test_concurrent_mixed_use_is_safe():
    cache = QueryCache(16)
    errors = []

    def worker(seed):
        try:
            for i in range(200):
                k = key(f"C{(seed + i) % 24}")
                if cache.get(k, 0) is None:
                    cache.put(k, 0, f"v{seed}")
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(cache) <= 16
    stats = cache.stats
    assert stats.lookups == 8 * 200
