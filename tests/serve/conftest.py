"""Serve-layer fixtures: every test here runs under the runtime lock
sanitizer (see docs/STATIC_ANALYSIS.md, "Concurrency rules")."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _sanitized_locks(lock_sanitizer):
    """Wrap serve-path locks in recording proxies; fail the test on any
    observed lock-ordering violation."""
    yield lock_sanitizer
