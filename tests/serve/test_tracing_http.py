"""HTTP tracing: traceparent round-trip, access log, /debug endpoints.

Exercises the tentpole end-to-end against a live server: a client
``traceparent`` propagates into the response header and the collected
span tree, malformed headers start a fresh root (never a 500), the
structured access log correlates with the trace, a slow request lands in
the flight recorder, and the ``repro debug`` CLI renders it.
"""

from __future__ import annotations

import http.client
import io
import json
import logging

import pytest

from repro.cli import main as cli_main
from repro.core.engine import SearchEngine
from repro.obs.logging import setup_logging
from repro.serve import QueryService, ServeConfig, ServerHandle

TRACEPARENT = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
TRACE_ID_HEX = "ab" * 16


@pytest.fixture()
def engine(figure3, example4):
    engine = SearchEngine(figure3, example4)
    yield engine
    engine.close()


@pytest.fixture()
def service(engine):
    # slow_threshold=0 captures every request: tests can inspect any
    # trace without having to manufacture actual slowness.
    service = QueryService(engine, ServeConfig(
        workers=2, queue_limit=8, slow_threshold_seconds=0.0))
    yield service
    service.close(drain_seconds=0.0)


@pytest.fixture()
def server(service):
    handle = ServerHandle.start(service, port=0)
    yield handle
    handle.stop()


def request(server, method, path, payload=None, headers=None, timeout=10.0):
    """One-shot request with header control; (status, headers, body)."""
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        all_headers = {"Content-Type": "application/json"} if body else {}
        all_headers.update(headers or {})
        connection.request(method, path, body=body, headers=all_headers)
        response = connection.getresponse()
        raw = response.read()
        parsed = json.loads(raw) if raw.startswith(b"{") else raw
        return response.status, dict(response.getheaders()), parsed
    finally:
        connection.close()


class TestTraceparentRoundTrip:
    def test_client_trace_id_echoed_in_response(self, server):
        status, headers, _ = request(
            server, "POST", "/search/rds",
            {"concepts": ["F", "I"], "k": 2},
            headers={"traceparent": TRACEPARENT})
        assert status == 200
        assert headers["traceparent"].split("-")[1] == TRACE_ID_HEX
        assert headers["traceparent"].endswith("-01")
        assert headers["x-request-id"].startswith("req-")

    def test_client_trace_id_reaches_the_span_tree(self, server):
        request(server, "POST", "/search/rds",
                {"concepts": ["F", "I"], "k": 2},
                headers={"traceparent": TRACEPARENT})
        status, _, body = request(server, "GET",
                                  f"/debug/traces?id={TRACE_ID_HEX}")
        assert status == 200
        assert body["trace_id"] == TRACE_ID_HEX
        names = {span["name"] for span in body["spans"]}
        # The acceptance tree: http -> service -> engine -> algorithm.
        assert {"http.request", "serve.request", "serve.execute",
                "engine.query", "knds.rds"} <= names
        assert all(span["trace_id"] == TRACE_ID_HEX
                   for span in body["spans"])

    def test_malformed_traceparent_starts_fresh_root(self, server):
        status, headers, _ = request(
            server, "POST", "/search/rds",
            {"concepts": ["F", "I"], "k": 2},
            headers={"traceparent": "zz-not-a-traceparent"})
        assert status == 200  # never a 500
        echoed = headers["traceparent"]
        parts = echoed.split("-")
        assert len(parts) == 4 and parts[1] != TRACE_ID_HEX
        assert int(parts[1], 16) != 0

    def test_unsampled_flag_suppresses_span_collection(self, server):
        unsampled = TRACEPARENT[:-2] + "00"
        status, headers, _ = request(
            server, "POST", "/search/rds",
            {"concepts": ["F", "I"], "k": 2},
            headers={"traceparent": unsampled})
        assert status == 200
        assert headers["traceparent"].endswith("-00")
        # Captured (threshold 0) but with an empty span tree.
        _, _, body = request(server, "GET",
                             f"/debug/traces?id={TRACE_ID_HEX}")
        assert body["sampled"] is False
        assert body["spans"] == []

    def test_requests_without_header_get_distinct_traces(self, server):
        seen = set()
        for _ in range(2):
            _, headers, _ = request(server, "POST", "/search/rds",
                                    {"concepts": ["F"], "k": 2})
            seen.add(headers["traceparent"].split("-")[1])
        assert len(seen) == 2


class TestAccessLog:
    def test_structured_line_per_request(self, server):
        stream = io.StringIO()
        setup_logging("info", stream=stream)
        try:
            _, headers, _ = request(
                server, "POST", "/search/rds",
                {"concepts": ["F", "I"], "k": 2},
                headers={"traceparent": TRACEPARENT})
        finally:
            logging.getLogger("repro").handlers.clear()
        lines = [line for line in stream.getvalue().splitlines()
                 if "logger=repro.serve.access" in line]
        assert len(lines) == 1
        line = lines[0]
        assert "method=POST" in line
        assert "path=/search/rds" in line
        assert "status=200" in line
        assert "seconds=" in line
        assert "cached=False" in line
        assert f"request_id={headers['x-request-id']}" in line
        assert f"trace_id={TRACE_ID_HEX}" in line

    def test_cache_hit_logged(self, server):
        stream = io.StringIO()
        setup_logging("info", stream=stream)
        try:
            for _ in range(2):
                request(server, "POST", "/search/rds",
                        {"concepts": ["F", "I"], "k": 2})
        finally:
            logging.getLogger("repro").handlers.clear()
        lines = [line for line in stream.getvalue().splitlines()
                 if "logger=repro.serve.access" in line]
        assert "cached=False" in lines[0]
        assert "cached=True" in lines[1]


class TestDebugEndpoints:
    def test_traces_lists_captures_without_spans(self, server):
        request(server, "POST", "/search/rds",
                {"concepts": ["F", "I"], "k": 2},
                headers={"traceparent": TRACEPARENT})
        status, _, body = request(server, "GET", "/debug/traces")
        assert status == 200
        (row,) = [row for row in body["traces"]
                  if row["trace_id"] == TRACE_ID_HEX]
        assert "slow" in row["reasons"]
        assert "spans" not in row
        assert row["span_count"] > 0

    def test_traces_unknown_id_is_404(self, server):
        status, _, body = request(server, "GET",
                                  "/debug/traces?id=req-99999999")
        assert status == 404
        assert body["error"] == "not_found"

    def test_requests_ring_sees_every_request(self, server):
        request(server, "POST", "/search/rds", {"concepts": ["F"], "k": 2})
        request(server, "GET", "/healthz")
        status, _, body = request(server, "GET", "/debug/requests")
        assert status == 200
        paths = [row["path"] for row in body["requests"]]
        assert "/search/rds" in paths and "/healthz" in paths

    def test_vars_reports_tracer_and_recorder_state(self, server):
        request(server, "POST", "/search/rds", {"concepts": ["F"], "k": 2})
        status, _, body = request(server, "GET", "/debug/vars")
        assert status == 200
        assert body["uptime_seconds"] > 0
        assert body["tracer"]["sample_rate"] == 1.0
        assert body["tracer"]["spans_collected"] > 0
        assert body["recorder"]["requests_seen"] >= 1
        assert "serve.requests" in body["metrics"]

    def test_slo_endpoint_accounts_requests(self, server):
        request(server, "POST", "/search/rds", {"concepts": ["F"], "k": 2})
        request(server, "POST", "/search/sds", {"doc_id": "missing"})
        status, _, body = request(server, "GET", "/debug/slo")
        assert status == 200
        endpoints = body["endpoints"]
        assert endpoints["/search/rds"]["requests"] == 1
        assert endpoints["/search/rds"]["unavailable"] == 0
        # A 404 is the service answering correctly: still available.
        assert endpoints["/search/sds"]["unavailable"] == 0
        assert body["windows"]["300s"]["requests"] >= 2

    def test_debug_routes_reject_post(self, server):
        status, _, _ = request(server, "POST", "/debug/traces", {})
        assert status == 405


class TestSlowRequestWalkthrough:
    def test_slow_request_captured_and_rendered_by_cli(
            self, server, engine, monkeypatch, capsys):
        """Acceptance: deliberately slow request -> recorder -> CLI."""
        import time as time_module
        real_rds = engine.rds

        def slow_rds(*args, **kwargs):
            time_module.sleep(0.05)
            return real_rds(*args, **kwargs)

        monkeypatch.setattr(engine, "rds", slow_rds)
        _, headers, _ = request(server, "POST", "/search/rds",
                                {"concepts": ["F", "I"], "k": 2},
                                headers={"traceparent": TRACEPARENT})
        request_id = headers["x-request-id"]
        host, port = server.address

        exit_code = cli_main(["debug", "--host", host,
                              "--port", str(port)])
        assert exit_code == 0
        listing = capsys.readouterr().out
        assert request_id in listing

        exit_code = cli_main(["debug", "--host", host, "--port",
                              str(port), "--id", request_id])
        assert exit_code == 0
        rendered = capsys.readouterr().out
        assert f"request {request_id}" in rendered
        assert TRACE_ID_HEX in rendered
        for layer_span in ("http.request", "serve.request",
                           "engine.query", "knds.rds"):
            assert layer_span in rendered
        assert "per-layer self time:" in rendered
        assert "self " in rendered

    def test_cli_reports_missing_capture(self, server):
        host, port = server.address
        exit_code = cli_main(["debug", "--host", host, "--port",
                              str(port), "--id", "req-00009999"])
        assert exit_code == 1
