"""Tests for the repro.serve query service."""
