"""HTTP layer: endpoints, status mapping, overload, graceful shutdown."""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.core.engine import SearchEngine
from repro.serve import QueryService, ServeConfig, ServerHandle


@pytest.fixture()
def engine(figure3, example4):
    engine = SearchEngine(figure3, example4)
    yield engine
    engine.close()


@pytest.fixture()
def service(engine):
    service = QueryService(engine, ServeConfig(workers=2, queue_limit=8))
    yield service
    service.close(drain_seconds=0.0)


@pytest.fixture()
def server(service):
    handle = ServerHandle.start(service, port=0)
    yield handle
    handle.stop()


def request(server, method, path, payload=None, timeout=10.0):
    """One-shot HTTP request; returns (status, headers, parsed body)."""
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        parsed = json.loads(raw) if raw.startswith(b"{") else raw
        return response.status, dict(response.getheaders()), parsed
    finally:
        connection.close()


class TestEndpoints:
    def test_healthz(self, server):
        status, _, body = request(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["documents"] == 6
        assert body["epoch"] == 0

    def test_metrics_is_prometheus_text(self, server):
        status, headers, body = request(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert "# TYPE serve_requests counter" in text
        assert "serve_cache_misses" in text

    def test_rds_search(self, server, engine):
        status, _, body = request(server, "POST", "/search/rds",
                                  {"concepts": ["F", "I"], "k": 2})
        assert status == 200
        assert body["kind"] == "rds"
        assert not body["cached"]
        expected = engine.rds(["F", "I"], k=2)
        assert [item["doc_id"] for item in body["results"]] \
            == expected.doc_ids()
        # A repeat is served from the cache and says so.
        status, _, again = request(server, "POST", "/search/rds",
                                   {"concepts": ["I", "F"], "k": 2})
        assert status == 200
        assert again["cached"]
        assert again["results"] == body["results"]

    def test_sds_by_doc_id(self, server, engine):
        doc_id = engine.collection.doc_ids()[0]
        status, _, body = request(server, "POST", "/search/sds",
                                  {"doc_id": doc_id, "k": 3})
        assert status == 200
        assert body["kind"] == "sds"
        assert len(body["results"]) == 3

    def test_rds_batch(self, server, engine):
        status, _, body = request(
            server, "POST", "/search/rds:batch",
            {"queries": [["F", "I"], ["B"]], "k": 2})
        assert status == 200
        assert body["kind"] == "rds:batch"
        assert body["count"] == 2
        assert [item["doc_id"] for item in body["results"][0]["results"]] \
            == engine.rds(["F", "I"], k=2).doc_ids()
        assert [item["doc_id"] for item in body["results"][1]["results"]] \
            == engine.rds(["B"], k=2).doc_ids()

    def test_rds_batch_rejects_bad_payloads(self, server):
        status, _, _ = request(server, "POST", "/search/rds:batch",
                               {"queries": []})
        assert status == 400
        status, _, _ = request(server, "POST", "/search/rds:batch",
                               {"queries": "F,I"})
        assert status == 400
        status, _, _ = request(server, "POST", "/search/rds:batch",
                               {"queries": [["F"]] * 65})
        assert status == 400

    def test_explain(self, server, engine):
        doc_id = engine.collection.doc_ids()[0]
        status, _, body = request(server, "POST", "/explain",
                                  {"doc_id": doc_id, "concepts": ["F"]})
        assert status == 200
        assert body["doc_id"] == doc_id
        assert body["explanation"]


class TestErrorMapping:
    def test_unknown_route_is_404(self, server):
        status, _, body = request(server, "GET", "/nope")
        assert status == 404
        assert body["error"] == "not_found"

    def test_wrong_method_is_405(self, server):
        status, _, _ = request(server, "POST", "/healthz", {})
        assert status == 405
        status, _, _ = request(server, "GET", "/search/rds")
        assert status == 405

    def test_malformed_json_is_400(self, server):
        host, port = server.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST", "/search/rds", body=b"{not json",
                headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["error"] == "bad_request"
        finally:
            connection.close()

    def test_missing_concepts_is_400(self, server):
        status, _, _ = request(server, "POST", "/search/rds", {"k": 2})
        assert status == 400
        status, _, _ = request(server, "POST", "/search/rds",
                               {"concepts": []})
        assert status == 400

    def test_bad_k_is_400(self, server):
        status, _, _ = request(server, "POST", "/search/rds",
                               {"concepts": ["F"], "k": 0})
        assert status == 400

    def test_unknown_document_is_404(self, server):
        status, _, body = request(server, "POST", "/search/sds",
                                  {"doc_id": "missing"})
        assert status == 404
        assert body["error"] == "unknown_document"

    def test_unknown_concept_is_400(self, server):
        status, _, _ = request(server, "POST", "/search/rds",
                               {"concepts": ["NOT_A_CONCEPT"]})
        assert status == 400


class TestOverload:
    def test_excess_load_gets_429_with_retry_after(self, engine, figure3):
        release = threading.Event()
        started = threading.Event()
        real_rds = engine.rds

        def blocking_rds(*args, **kwargs):
            started.set()
            release.wait(10.0)
            return real_rds(*args, **kwargs)

        engine.rds = blocking_rds  # type: ignore[method-assign]
        config = ServeConfig(workers=1, queue_limit=0,
                             retry_after_seconds=2.0)
        service = QueryService(engine, config)
        handle = ServerHandle.start(service, port=0)
        try:
            filler = threading.Thread(
                target=request,
                args=(handle, "POST", "/search/rds"),
                kwargs={"payload": {"concepts": ["F"], "k": 2}})
            filler.start()
            assert started.wait(10.0)
            status, headers, body = request(
                handle, "POST", "/search/rds",
                {"concepts": ["B"], "k": 2})
            assert status == 429
            assert headers["Retry-After"] == "2"
            assert body["error"] == "overloaded"
            release.set()
            filler.join(10.0)
        finally:
            release.set()
            handle.stop()

    def test_timeout_maps_to_504(self, server, engine, monkeypatch):
        import time as time_module

        def slow_rds(*args, **kwargs):
            time_module.sleep(0.5)

        monkeypatch.setattr(engine, "rds", slow_rds)
        status, _, body = request(
            server, "POST", "/search/rds",
            {"concepts": ["F"], "k": 2, "deadline": 0.05})
        assert status == 504
        assert body["error"] == "deadline_exceeded"


class TestShutdown:
    def test_draining_healthz_is_503(self, server, service):
        service.begin_drain()
        status, _, body = request(server, "GET", "/healthz")
        assert status == 503
        assert body["status"] == "draining"

    def test_stop_refuses_new_connections(self, engine):
        service = QueryService(engine, ServeConfig(workers=1))
        handle = ServerHandle.start(service, port=0)
        host, port = handle.address
        status, _, _ = request(handle, "GET", "/healthz")
        assert status == 200
        handle.stop()
        with pytest.raises(OSError):
            connection = http.client.HTTPConnection(host, port, timeout=2)
            try:
                connection.request("GET", "/healthz")
                connection.getresponse()
            finally:
                connection.close()

    def test_stop_is_idempotent(self, engine):
        service = QueryService(engine, ServeConfig(workers=1))
        handle = ServerHandle.start(service, port=0)
        handle.stop()
        handle.stop()


class TestExplainAnalyze:
    def test_rds_analyze_returns_cost_profile(self, server):
        status, _, body = request(
            server, "POST", "/search/rds",
            {"concepts": ["F", "I"], "k": 2, "analyze": True})
        assert status == 200
        profile = body["cost_profile"]
        assert profile["algorithm"] == "knds"
        assert profile["work"]["probes"] > 0
        assert profile["work"]["cache_hits"] >= 0
        assert profile["candidates"]["settled"] >= 2
        assert profile["candidates"]["pruned"] >= 0
        assert profile["termination"]["reason"] in ("converged",
                                                    "exhausted")
        assert profile["termination"]["level"] >= 0
        assert profile["bounds"]
        final = profile["bounds"][-1]
        assert {"level", "lower", "kth", "gap"} <= set(final)

    def test_query_param_opt_in(self, server):
        status, _, body = request(
            server, "POST", "/search/rds?explain=analyze",
            {"concepts": ["F", "I"], "k": 2})
        assert status == 200
        assert "cost_profile" in body

    def test_analyze_bypasses_cache(self, server):
        payload = {"concepts": ["C"], "k": 2, "analyze": True}
        for _ in range(2):
            status, _, body = request(server, "POST", "/search/rds",
                                      payload)
            assert status == 200
            assert body["cached"] is False
            assert "cost_profile" in body
        # ...and never pollutes the cache for plain requests either.
        status, _, body = request(server, "POST", "/search/rds",
                                  {"concepts": ["C"], "k": 2})
        assert body["cached"] is False
        assert "cost_profile" not in body

    def test_plain_request_has_no_profile(self, server):
        status, _, body = request(server, "POST", "/search/rds",
                                  {"concepts": ["F", "I"], "k": 2})
        assert status == 200
        assert "cost_profile" not in body

    def test_sds_analyze(self, server):
        status, _, body = request(
            server, "POST", "/search/sds",
            {"doc_id": "d1", "k": 2, "analyze": True})
        assert status == 200
        assert body["cost_profile"]["query_kind"] == "sds"

    def test_batch_analyze_profiles_every_query(self, server):
        status, _, body = request(
            server, "POST", "/search/rds:batch",
            {"queries": [["F", "I"], ["C"]], "k": 2, "analyze": True})
        assert status == 200
        assert all("cost_profile" in row for row in body["results"])

    def test_non_boolean_analyze_is_400(self, server):
        status, _, body = request(
            server, "POST", "/search/rds",
            {"concepts": ["F"], "k": 2, "analyze": "yes"})
        assert status == 400
        assert body["error"] == "bad_request"


class TestDebugProfile:
    def test_one_shot_sample(self, server):
        status, _, body = request(server, "GET",
                                  "/debug/profile?seconds=0.05")
        assert status == 200
        assert body["samples"] >= 1
        assert body["running"] is False
        assert isinstance(body["stacks"], dict)

    def test_bad_seconds_is_400(self, server):
        for bad in ("abc", "-1", "0", "999"):
            status, _, body = request(server, "GET",
                                      f"/debug/profile?seconds={bad}")
            assert status == 400, bad

    def test_continuous_profiler_snapshot(self, engine):
        service = QueryService(engine, ServeConfig(
            workers=1, profiler_enabled=True,
            profiler_interval_seconds=0.002))
        handle = ServerHandle.start(service, port=0)
        try:
            import time
            time.sleep(0.05)
            status, _, body = request(handle, "GET", "/debug/profile")
            assert status == 200
            assert body["running"] is True
            assert body["samples"] >= 1
        finally:
            handle.stop()


class TestResourceGauges:
    def test_debug_vars_reports_resources(self, server):
        status, _, body = request(server, "GET", "/debug/vars")
        assert status == 200
        resources = body["resources"]
        for name in ("resource.arena_bytes",
                     "resource.distance_cache_entries",
                     "resource.serve_cache_entries",
                     "resource.worker_queue_depth",
                     "resource.gc_tracked_objects"):
            assert name in resources, name
        assert resources["resource.arena_bytes"] >= 0

    def test_debug_vars_reports_arena_kernel_info(self, server, engine):
        status, _, body = request(server, "GET", "/debug/vars")
        assert status == 200
        arena = body["arena"]
        # Whatever "auto" resolved to (numpy availability and the
        # REPRO_KERNEL_TIER override both feed in), the report must
        # match the engine's own arena.
        assert arena["kernel_tier"] == engine.arena.kernel_tier
        assert arena["kernel_tier"] in ("packed", "numpy")
        assert arena["interned"] >= 0
        assert arena["buffer_bytes"] >= 0
        assert arena["shared_bytes"] == 0  # single-process: no segment
        assert arena["epoch"] >= 0

    def test_metrics_scrape_refreshes_gauges(self, server):
        status, _, body = request(server, "GET", "/metrics")
        assert status == 200
        text = body.decode("utf-8")
        assert "resource_arena_bytes" in text
        assert "resource_gc_gen0_collections" in text

    def test_work_histograms_fed_by_computed_queries(self, server):
        request(server, "POST", "/search/rds",
                {"concepts": ["F", "I"], "k": 2})
        status, _, body = request(server, "GET", "/metrics")
        text = body.decode("utf-8")
        assert "serve_rds_probes_per_query_count 1" in text
        assert "serve_rds_settled_per_query_sum" in text
        # A cache hit adds no work observation.
        request(server, "POST", "/search/rds",
                {"concepts": ["F", "I"], "k": 2})
        status, _, body = request(server, "GET", "/metrics")
        assert "serve_rds_probes_per_query_count 1" in body.decode()
