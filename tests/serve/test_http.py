"""HTTP layer: endpoints, status mapping, overload, graceful shutdown."""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.core.engine import SearchEngine
from repro.serve import QueryService, ServeConfig, ServerHandle


@pytest.fixture()
def engine(figure3, example4):
    engine = SearchEngine(figure3, example4)
    yield engine
    engine.close()


@pytest.fixture()
def service(engine):
    service = QueryService(engine, ServeConfig(workers=2, queue_limit=8))
    yield service
    service.close(drain_seconds=0.0)


@pytest.fixture()
def server(service):
    handle = ServerHandle.start(service, port=0)
    yield handle
    handle.stop()


def request(server, method, path, payload=None, timeout=10.0):
    """One-shot HTTP request; returns (status, headers, parsed body)."""
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        parsed = json.loads(raw) if raw.startswith(b"{") else raw
        return response.status, dict(response.getheaders()), parsed
    finally:
        connection.close()


class TestEndpoints:
    def test_healthz(self, server):
        status, _, body = request(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["documents"] == 6
        assert body["epoch"] == 0

    def test_metrics_is_prometheus_text(self, server):
        status, headers, body = request(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert "# TYPE serve_requests counter" in text
        assert "serve_cache_misses" in text

    def test_rds_search(self, server, engine):
        status, _, body = request(server, "POST", "/search/rds",
                                  {"concepts": ["F", "I"], "k": 2})
        assert status == 200
        assert body["kind"] == "rds"
        assert not body["cached"]
        expected = engine.rds(["F", "I"], k=2)
        assert [item["doc_id"] for item in body["results"]] \
            == expected.doc_ids()
        # A repeat is served from the cache and says so.
        status, _, again = request(server, "POST", "/search/rds",
                                   {"concepts": ["I", "F"], "k": 2})
        assert status == 200
        assert again["cached"]
        assert again["results"] == body["results"]

    def test_sds_by_doc_id(self, server, engine):
        doc_id = engine.collection.doc_ids()[0]
        status, _, body = request(server, "POST", "/search/sds",
                                  {"doc_id": doc_id, "k": 3})
        assert status == 200
        assert body["kind"] == "sds"
        assert len(body["results"]) == 3

    def test_rds_batch(self, server, engine):
        status, _, body = request(
            server, "POST", "/search/rds:batch",
            {"queries": [["F", "I"], ["B"]], "k": 2})
        assert status == 200
        assert body["kind"] == "rds:batch"
        assert body["count"] == 2
        assert [item["doc_id"] for item in body["results"][0]["results"]] \
            == engine.rds(["F", "I"], k=2).doc_ids()
        assert [item["doc_id"] for item in body["results"][1]["results"]] \
            == engine.rds(["B"], k=2).doc_ids()

    def test_rds_batch_rejects_bad_payloads(self, server):
        status, _, _ = request(server, "POST", "/search/rds:batch",
                               {"queries": []})
        assert status == 400
        status, _, _ = request(server, "POST", "/search/rds:batch",
                               {"queries": "F,I"})
        assert status == 400
        status, _, _ = request(server, "POST", "/search/rds:batch",
                               {"queries": [["F"]] * 65})
        assert status == 400

    def test_explain(self, server, engine):
        doc_id = engine.collection.doc_ids()[0]
        status, _, body = request(server, "POST", "/explain",
                                  {"doc_id": doc_id, "concepts": ["F"]})
        assert status == 200
        assert body["doc_id"] == doc_id
        assert body["explanation"]


class TestErrorMapping:
    def test_unknown_route_is_404(self, server):
        status, _, body = request(server, "GET", "/nope")
        assert status == 404
        assert body["error"] == "not_found"

    def test_wrong_method_is_405(self, server):
        status, _, _ = request(server, "POST", "/healthz", {})
        assert status == 405
        status, _, _ = request(server, "GET", "/search/rds")
        assert status == 405

    def test_malformed_json_is_400(self, server):
        host, port = server.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST", "/search/rds", body=b"{not json",
                headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["error"] == "bad_request"
        finally:
            connection.close()

    def test_missing_concepts_is_400(self, server):
        status, _, _ = request(server, "POST", "/search/rds", {"k": 2})
        assert status == 400
        status, _, _ = request(server, "POST", "/search/rds",
                               {"concepts": []})
        assert status == 400

    def test_bad_k_is_400(self, server):
        status, _, _ = request(server, "POST", "/search/rds",
                               {"concepts": ["F"], "k": 0})
        assert status == 400

    def test_unknown_document_is_404(self, server):
        status, _, body = request(server, "POST", "/search/sds",
                                  {"doc_id": "missing"})
        assert status == 404
        assert body["error"] == "unknown_document"

    def test_unknown_concept_is_400(self, server):
        status, _, _ = request(server, "POST", "/search/rds",
                               {"concepts": ["NOT_A_CONCEPT"]})
        assert status == 400


class TestOverload:
    def test_excess_load_gets_429_with_retry_after(self, engine, figure3):
        release = threading.Event()
        started = threading.Event()
        real_rds = engine.rds

        def blocking_rds(*args, **kwargs):
            started.set()
            release.wait(10.0)
            return real_rds(*args, **kwargs)

        engine.rds = blocking_rds  # type: ignore[method-assign]
        config = ServeConfig(workers=1, queue_limit=0,
                             retry_after_seconds=2.0)
        service = QueryService(engine, config)
        handle = ServerHandle.start(service, port=0)
        try:
            filler = threading.Thread(
                target=request,
                args=(handle, "POST", "/search/rds"),
                kwargs={"payload": {"concepts": ["F"], "k": 2}})
            filler.start()
            assert started.wait(10.0)
            status, headers, body = request(
                handle, "POST", "/search/rds",
                {"concepts": ["B"], "k": 2})
            assert status == 429
            assert headers["Retry-After"] == "2"
            assert body["error"] == "overloaded"
            release.set()
            filler.join(10.0)
        finally:
            release.set()
            handle.stop()

    def test_timeout_maps_to_504(self, server, engine, monkeypatch):
        import time as time_module

        def slow_rds(*args, **kwargs):
            time_module.sleep(0.5)

        monkeypatch.setattr(engine, "rds", slow_rds)
        status, _, body = request(
            server, "POST", "/search/rds",
            {"concepts": ["F"], "k": 2, "deadline": 0.05})
        assert status == 504
        assert body["error"] == "deadline_exceeded"


class TestShutdown:
    def test_draining_healthz_is_503(self, server, service):
        service.begin_drain()
        status, _, body = request(server, "GET", "/healthz")
        assert status == 503
        assert body["status"] == "draining"

    def test_stop_refuses_new_connections(self, engine):
        service = QueryService(engine, ServeConfig(workers=1))
        handle = ServerHandle.start(service, port=0)
        host, port = handle.address
        status, _, _ = request(handle, "GET", "/healthz")
        assert status == 200
        handle.stop()
        with pytest.raises(OSError):
            connection = http.client.HTTPConnection(host, port, timeout=2)
            try:
                connection.request("GET", "/healthz")
                connection.getresponse()
            finally:
                connection.close()

    def test_stop_is_idempotent(self, engine):
        service = QueryService(engine, ServeConfig(workers=1))
        handle = ServerHandle.start(service, port=0)
        handle.stop()
        handle.stop()
