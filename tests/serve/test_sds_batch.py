"""SDS batching: ``QueryService.sds_many`` and ``POST /search/sds:batch``."""

from __future__ import annotations

import http.client
import json

import pytest

from repro.core.engine import SearchEngine
from repro.serve import QueryService, ServeConfig, ServerHandle


@pytest.fixture()
def engine(figure3, example4):
    engine = SearchEngine(figure3, example4)
    yield engine
    engine.close()


@pytest.fixture()
def service(engine):
    service = QueryService(engine, ServeConfig(workers=2, queue_limit=8))
    yield service
    service.close(drain_seconds=0.0)


@pytest.fixture()
def server(service):
    handle = ServerHandle.start(service, port=0)
    yield handle
    handle.stop()


def request(server, method, path, payload=None, timeout=10.0):
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        parsed = json.loads(raw) if raw.startswith(b"{") else raw
        return response.status, parsed
    finally:
        connection.close()


class TestServiceSdsMany:
    def test_matches_singles_and_accepts_mixed_entries(self, service,
                                                       engine):
        queries = ["d2", ["F", "I"], "d4"]
        batch = service.sds_many(queries, k=3)
        assert len(batch) == 3
        for query, result in zip(queries, batch):
            assert result.results.doc_ids() \
                == engine.sds(query, k=3).doc_ids()

    def test_batch_populates_the_shared_cache(self, service):
        first = service.sds_many(["d2", "d3"], k=3)
        assert [result.cached for result in first] == [False, False]
        repeat = service.sds_many(["d3", "d2"], k=3)
        assert [result.cached for result in repeat] == [True, True]

    def test_duplicates_computed_once(self, service):
        batch = service.sds_many(["d2", "d2", "d2"], k=3)
        doc_ids = [result.results.doc_ids() for result in batch]
        assert doc_ids[0] == doc_ids[1] == doc_ids[2]


class TestHttpSdsBatch:
    def test_mixed_batch(self, server, engine):
        status, body = request(server, "POST", "/search/sds:batch",
                               {"queries": ["d2", ["F", "I"]], "k": 3})
        assert status == 200
        assert body["kind"] == "sds:batch"
        assert body["count"] == 2
        assert [item["doc_id"] for item in body["results"][0]["results"]] \
            == engine.sds("d2", k=3).doc_ids()
        assert [item["doc_id"] for item in body["results"][1]["results"]] \
            == engine.sds(["F", "I"], k=3).doc_ids()

    def test_second_batch_is_cached(self, server):
        for expect_cached in (False, True):
            status, body = request(server, "POST", "/search/sds:batch",
                                   {"queries": ["d2", "d3"], "k": 2})
            assert status == 200
            assert all(result["cached"] is expect_cached
                       for result in body["results"])

    def test_rejects_bad_payloads(self, server):
        for payload in (
            {},  # no queries at all
            {"queries": []},
            {"queries": ["d2", []]},  # empty concept list entry
            {"queries": [7]},
            {"queries": [["F", 3]]},
            {"queries": [["F"]] * 65},  # over the batch cap
        ):
            status, _ = request(server, "POST", "/search/sds:batch",
                                payload)
            assert status == 400, payload

    def test_unknown_doc_id_is_404(self, server):
        status, _ = request(server, "POST", "/search/sds:batch",
                            {"queries": ["no-such-doc"], "k": 2})
        assert status == 404
