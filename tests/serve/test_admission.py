"""AdmissionController: ceiling, typed refusals, drain, idle wait."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import (InvariantError, ServiceClosedError,
                              ServiceOverloadedError)
from repro.serve.admission import AdmissionController


def test_admits_up_to_limit_then_refuses():
    gate = AdmissionController(2, retry_after=3.0)
    gate.admit()
    gate.admit()
    with pytest.raises(ServiceOverloadedError) as excinfo:
        gate.admit()
    assert excinfo.value.retry_after == 3.0
    assert gate.inflight == 2


def test_release_reopens_a_slot():
    gate = AdmissionController(1)
    gate.admit()
    with pytest.raises(ServiceOverloadedError):
        gate.admit()
    gate.release()
    gate.admit()  # slot is free again
    assert gate.inflight == 1


def test_release_without_admit_is_an_invariant_violation():
    with pytest.raises(InvariantError):
        AdmissionController(1).release()


def test_zero_limit_rejects_everything():
    gate = AdmissionController(0)
    with pytest.raises(ServiceOverloadedError):
        gate.admit()


def test_negative_limit_rejected():
    with pytest.raises(ValueError):
        AdmissionController(-1)


def test_drain_refuses_new_work_but_keeps_slots():
    gate = AdmissionController(4)
    gate.admit()
    gate.begin_drain()
    assert gate.draining
    with pytest.raises(ServiceClosedError):
        gate.admit()
    assert gate.inflight == 1  # the in-flight request kept its slot
    gate.release()
    assert gate.inflight == 0


def test_slot_context_manager_releases_on_error():
    gate = AdmissionController(1)
    with pytest.raises(RuntimeError):
        with gate.slot():
            assert gate.inflight == 1
            raise RuntimeError("boom")
    assert gate.inflight == 0


def test_wait_idle_returns_immediately_when_idle():
    assert AdmissionController(1).wait_idle(timeout=0.01)


def test_wait_idle_times_out_while_busy():
    gate = AdmissionController(1)
    gate.admit()
    assert not gate.wait_idle(timeout=0.01)
    gate.release()


def test_wait_idle_wakes_on_last_release():
    gate = AdmissionController(2)
    gate.admit()
    gate.admit()
    woke = threading.Event()

    def waiter():
        if gate.wait_idle(timeout=5.0):
            woke.set()

    thread = threading.Thread(target=waiter)
    thread.start()
    gate.release()
    assert not woke.wait(0.05)  # still one in flight
    gate.release()
    thread.join(5.0)
    assert woke.is_set()
