"""QueryService: caching, invalidation, deadlines, overload, drain."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.engine import SearchEngine
from repro.corpus.document import Document
from repro.exceptions import (QueryError, QueryTimeoutError,
                              ServiceClosedError, ServiceOverloadedError,
                              UnknownDocumentError)
from repro.serve import QueryService, ServeConfig


@pytest.fixture()
def engine(figure3, example4):
    engine = SearchEngine(figure3, example4)
    yield engine
    engine.close()


@pytest.fixture()
def service(engine):
    with QueryService(engine, ServeConfig(workers=2,
                                          queue_limit=8)) as service:
        yield service


class TestConfigValidation:
    def test_shared_arena_requires_shards(self, engine):
        from repro.exceptions import ServeError
        with pytest.raises(ServeError, match="shared_arena"):
            QueryService(engine, ServeConfig(shared_arena=True))

    def test_kernel_tier_is_validated(self, engine):
        from repro.exceptions import ServeError
        with pytest.raises(ServeError, match="kernel_tier"):
            QueryService(engine, ServeConfig(kernel_tier="gpu"))
        for tier in ("auto", "packed"):
            QueryService(engine, ServeConfig(
                workers=1, kernel_tier=tier)).close(drain_seconds=0.0)


class TestEpochProperty:
    def test_starts_at_zero(self, engine):
        assert engine.epoch == 0

    def test_mutations_bump_monotonically(self, engine):
        engine.add_document(Document("new1", ["F", "I"]))
        assert engine.epoch == 1
        engine.add_document(Document("new2", ["B"]))
        assert engine.epoch == 2
        engine.remove_document("new1")
        assert engine.epoch == 3

    def test_failed_mutation_keeps_epoch(self, engine):
        with pytest.raises(UnknownDocumentError):
            engine.remove_document("missing")
        assert engine.epoch == 0


class TestResults:
    def test_rds_matches_engine(self, engine, service):
        direct = engine.rds(["F", "I"], k=3)
        served = service.rds(["F", "I"], k=3)
        assert served.results.doc_ids() == direct.doc_ids()
        assert served.results.distances() == direct.distances()
        assert served.epoch == 0

    def test_sds_by_doc_id_matches_engine(self, engine, service):
        doc_id = engine.collection.doc_ids()[0]
        direct = engine.sds(doc_id, k=3)
        served = service.sds(doc_id, k=3)
        assert served.results.doc_ids() == direct.doc_ids()

    def test_unknown_sds_document_raises(self, service):
        with pytest.raises(UnknownDocumentError):
            service.sds("missing", k=2)

    def test_unknown_kind_rejected(self, service):
        with pytest.raises(QueryError):
            service._begin("nope", ["F"], 2, "knds", None)

    def test_explain_is_served(self, engine, service):
        doc_id = engine.collection.doc_ids()[0]
        assert service.explain(doc_id, ["F"]) == engine.explain(
            doc_id, ["F"])


class TestCaching:
    def test_second_identical_query_is_cached(self, service):
        first = service.rds(["F", "I"], k=2)
        again = service.rds(["F", "I"], k=2)
        assert not first.cached
        assert again.cached
        assert again.results.doc_ids() == first.results.doc_ids()

    def test_concept_order_shares_the_entry(self, service):
        service.rds(["F", "I"], k=2)
        assert service.rds(["I", "F"], k=2).cached

    def test_k_and_algorithm_are_part_of_the_key(self, service):
        service.rds(["F", "I"], k=2)
        assert not service.rds(["F", "I"], k=3).cached
        assert not service.rds(["F", "I"], k=2,
                               algorithm="fullscan").cached

    def test_rds_and_sds_do_not_collide(self, engine, service):
        doc = engine.collection.get(engine.collection.doc_ids()[0])
        concepts = list(doc.require_concepts())
        service.rds(concepts, k=2)
        assert not service.sds(concepts, k=2).cached

    def test_sds_by_id_and_by_concepts_share_the_entry(self, engine,
                                                       service):
        doc = engine.collection.get(engine.collection.doc_ids()[0])
        service.sds(doc.doc_id, k=2)
        assert service.sds(list(doc.require_concepts()), k=2).cached

    def test_add_document_invalidates_cached_answer(self, engine,
                                                    service):
        # The acceptance criterion: a cached top-k must reflect a
        # document added after it was cached.
        before = service.rds(["F", "I"], k=2)
        assert service.rds(["F", "I"], k=2).cached
        engine.add_document(Document("exact", ["F", "I"]))
        after = service.rds(["F", "I"], k=2)
        assert not after.cached  # epoch bump invalidated the entry
        assert after.epoch == 1
        assert "exact" in after.results.doc_ids()
        assert after.results.doc_ids() != before.results.doc_ids()
        assert after.results.distances()[0] == 0.0

    def test_remove_document_invalidates_cached_answer(self, engine,
                                                       service):
        engine.add_document(Document("exact", ["F", "I"]))
        top = service.rds(["F", "I"], k=2)
        assert top.results.doc_ids()[0] == "exact"
        engine.remove_document("exact")
        after = service.rds(["F", "I"], k=2)
        assert not after.cached
        assert "exact" not in after.results.doc_ids()

    def test_cache_disabled_by_zero_size(self, engine):
        with QueryService(engine, ServeConfig(cache_size=0)) as service:
            service.rds(["F", "I"], k=2)
            assert not service.rds(["F", "I"], k=2).cached

    def test_ttl_expiry_with_injected_clock(self, engine):
        now = [0.0]
        config = ServeConfig(cache_ttl_seconds=10.0)
        with QueryService(engine, config, clock=lambda: now[0]) as service:
            service.rds(["F", "I"], k=2)
            now[0] = 9.0
            assert service.rds(["F", "I"], k=2).cached
            now[0] = 11.0
            assert not service.rds(["F", "I"], k=2).cached


class TestBatch:
    def test_batch_matches_single_queries(self, engine, service):
        queries = [["F", "I"], ["B"], ["I", "F"]]
        batch = service.rds_many(queries, k=3)
        assert len(batch) == 3
        for query, served in zip(queries, batch):
            assert served.results.doc_ids() \
                == engine.rds(query, k=3).doc_ids()
        # ["F", "I"] and ["I", "F"] normalize to one cache key: the
        # duplicate is computed once and both slots carry the answer.
        assert batch[0].results.doc_ids() == batch[2].results.doc_ids()

    def test_batch_serves_prior_hits_from_cache(self, service):
        service.rds(["F", "I"], k=2)
        batch = service.rds_many([["F", "I"], ["B"]], k=2)
        assert batch[0].cached
        assert not batch[1].cached

    def test_batch_occupies_one_admission_slot(self, engine):
        config = ServeConfig(workers=1, queue_limit=0)
        with QueryService(engine, config) as service:
            # Three queries through a 1-slot service in one request: an
            # admission rejection would surface as ServiceOverloadedError.
            batch = service.rds_many([["F"], ["I"], ["B"]], k=2)
            assert len(batch) == 3
            assert service.admission.inflight == 0

    def test_empty_batch_is_rejected(self, service):
        with pytest.raises(QueryError):
            service.rds_many([], k=2)

    def test_batch_counts_queries_in_metrics(self, service):
        service.rds_many([["F", "I"], ["B"]], k=2)
        snapshot = service.obs.metrics.snapshot()
        assert snapshot["serve.batch_queries"]["value"] == 2


class TestDeadlines:
    def test_slow_query_times_out(self, engine, service, monkeypatch):
        def slow_rds(*args, **kwargs):
            time.sleep(0.5)

        monkeypatch.setattr(engine, "rds", slow_rds)
        with pytest.raises(QueryTimeoutError) as excinfo:
            service.rds(["F", "I"], k=2, deadline=0.05)
        assert excinfo.value.seconds == 0.05
        # The slot was released despite the timeout.
        assert service.admission.inflight == 0

    def test_timed_out_result_is_not_cached(self, engine, service,
                                            monkeypatch):
        real_rds = engine.rds

        def slow_rds(*args, **kwargs):
            time.sleep(0.2)
            return real_rds(*args, **kwargs)

        monkeypatch.setattr(engine, "rds", slow_rds)
        with pytest.raises(QueryTimeoutError):
            service.rds(["F", "I"], k=2, deadline=0.05)
        monkeypatch.setattr(engine, "rds", real_rds)
        time.sleep(0.3)  # let the abandoned worker finish storing
        # The late store (if any) is keyed under the same epoch; the
        # next query may hit it — but it must be the *correct* answer.
        result = service.rds(["F", "I"], k=2)
        assert result.results.doc_ids() == real_rds(["F", "I"],
                                                    k=2).doc_ids()


class TestOverload:
    def test_excess_load_is_shed_with_retry_after(self, engine):
        config = ServeConfig(workers=1, queue_limit=0,
                             retry_after_seconds=2.0)
        release = threading.Event()
        started = threading.Event()
        real_rds = engine.rds

        def blocking_rds(*args, **kwargs):
            started.set()
            release.wait(5.0)
            return real_rds(*args, **kwargs)

        engine.rds = blocking_rds  # type: ignore[method-assign]
        with QueryService(engine, config) as service:
            worker = threading.Thread(
                target=lambda: service.rds(["F", "I"], k=2))
            worker.start()
            assert started.wait(5.0)
            with pytest.raises(ServiceOverloadedError) as excinfo:
                service.rds(["B"], k=2)
            assert excinfo.value.retry_after == 2.0
            release.set()
            worker.join(5.0)
            # With the slot free the service accepts again.
            assert service.rds(["B"], k=2).results is not None

    def test_draining_service_refuses_new_queries(self, service):
        service.begin_drain()
        with pytest.raises(ServiceClosedError):
            service.rds(["F", "I"], k=2)

    def test_close_is_idempotent_and_drains(self, service):
        assert service.close()
        assert service.close()
        with pytest.raises(ServiceClosedError):
            service.rds(["F", "I"], k=2)


class TestConcurrentMixedLoad:
    def test_many_threads_no_errors(self, engine, service):
        doc_ids = engine.collection.doc_ids()
        errors = []

        def worker(seed):
            try:
                for i in range(20):
                    if (seed + i) % 4 == 0:
                        service.sds(doc_ids[(seed + i) % len(doc_ids)],
                                    k=3)
                    else:
                        service.rds(["F", "I", "B"][: 1 + (seed + i) % 3],
                                    k=3)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert service.admission.inflight == 0
        stats = service.cache.stats
        assert stats.hits > 0  # the repeated queries were served hot


class TestMetrics:
    def test_serve_counters_flow(self, service):
        service.rds(["F", "I"], k=2)
        service.rds(["F", "I"], k=2)
        snapshot = service.obs.metrics.snapshot()
        assert snapshot["serve.requests"]["value"] == 2
        assert snapshot["serve.cache_hits"]["value"] == 1
        assert snapshot["serve.cache_misses"]["value"] == 1
        assert snapshot["serve.inflight"]["value"] == 0
