"""Load generator: deterministic workloads, concurrent replay, report."""

from __future__ import annotations

import pytest

from repro.core.engine import SearchEngine
from repro.serve import (LoadQuery, QueryService, ServeConfig,
                         ServerHandle, mixed_workload, run_load)


@pytest.fixture()
def engine(figure3, example4):
    engine = SearchEngine(figure3, example4)
    yield engine
    engine.close()


class TestMixedWorkload:
    def test_deterministic_for_a_seed(self, example4):
        first = mixed_workload(example4, count=20, nq=2, seed=9)
        second = mixed_workload(example4, count=20, nq=2, seed=9)
        assert first == second
        assert first != mixed_workload(example4, count=20, nq=2, seed=10)

    def test_mix_and_interleaving(self, example4):
        workload = mixed_workload(example4, count=20, nq=2, seed=3,
                                  sds_fraction=0.25)
        assert len(workload) == 20
        kinds = [query.kind for query in workload]
        assert kinds.count("sds") == 5
        # SDS queries are spread out, not bunched at either end.
        first_sds = kinds.index("sds")
        assert first_sds < len(kinds) - 5

    def test_pure_rds(self, example4):
        workload = mixed_workload(example4, count=8, sds_fraction=0.0)
        assert all(query.kind == "rds" for query in workload)

    def test_paths(self):
        assert LoadQuery("rds", {}).path == "/search/rds"
        assert LoadQuery("sds", {}).path == "/search/sds"

    def test_validation(self, example4):
        with pytest.raises(ValueError):
            mixed_workload(example4, count=0)
        with pytest.raises(ValueError):
            mixed_workload(example4, sds_fraction=1.5)


class TestRunLoad:
    def test_mixed_load_yields_no_server_errors(self, engine, example4):
        service = QueryService(engine, ServeConfig(workers=2,
                                                   queue_limit=32))
        handle = ServerHandle.start(service, port=0)
        try:
            workload = mixed_workload(example4, count=24, nq=2, k=3,
                                      seed=5)
            report = run_load(handle.address, workload, threads=4,
                              repeat=2)
            assert report.total == 48
            assert report.statuses[200] == 48
            assert report.server_errors == 0
            assert not report.errors
            assert len(report.latencies) == 48
            assert report.percentile(0.5) > 0.0
            assert report.percentile(0.5) <= report.percentile(0.99)
        finally:
            handle.stop()

    def test_report_counts_and_merge(self):
        from repro.serve.loadgen import LoadReport

        left = LoadReport()
        left.statuses[200] = 3
        left.latencies.extend([0.1, 0.2, 0.3])
        left.traced = 2
        right = LoadReport()
        right.statuses[429] = 2
        right.errors.append("boom")
        right.traced = 1
        left.merge(right)
        assert left.total == 5
        assert left.count(200) == 3
        assert left.count(429, 503) == 2
        assert left.server_errors == 0
        assert left.errors == ["boom"]
        assert left.traced == 3

    def test_empty_report_percentile(self):
        from repro.serve.loadgen import LoadReport

        assert LoadReport().percentile(0.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            run_load(("127.0.0.1", 1), [], threads=0)
        with pytest.raises(ValueError):
            run_load(("127.0.0.1", 1), [], repeat=0)


class TestTracedLoad:
    def test_every_request_traced_at_rate_one(self, engine, example4):
        service = QueryService(engine, ServeConfig(workers=2,
                                                   queue_limit=32))
        handle = ServerHandle.start(service, port=0)
        try:
            workload = mixed_workload(example4, count=8, nq=2, k=3,
                                      seed=5)
            report = run_load(handle.address, workload, threads=2,
                              trace_sample_rate=1.0)
            assert report.total == 8
            assert report.traced == 8
        finally:
            handle.stop()

    def test_rate_none_disables_the_header(self, engine, example4):
        service = QueryService(engine, ServeConfig(workers=2,
                                                   queue_limit=32))
        handle = ServerHandle.start(service, port=0)
        try:
            workload = mixed_workload(example4, count=6, nq=2, k=3,
                                      seed=5)
            report = run_load(handle.address, workload, threads=2,
                              trace_sample_rate=None)
            assert report.total == 6
            assert report.traced == 0
        finally:
            handle.stop()

    def test_client_trace_context_is_deterministic(self):
        from repro.serve.loadgen import client_trace_context

        first = client_trace_context(1, 5, sample_rate=0.5)
        second = client_trace_context(1, 5, sample_rate=0.5)
        assert first == second
        assert first.trace_id != 0
        assert first != client_trace_context(2, 5, sample_rate=0.5)
        assert first.trace_id != client_trace_context(
            1, 6, sample_rate=0.5).trace_id

    def test_client_sampling_follows_head_sample(self):
        from repro.obs.tracing import head_sample
        from repro.serve.loadgen import client_trace_context

        for sequence in range(32):
            context = client_trace_context(0, sequence, sample_rate=0.5)
            assert context.sampled == head_sample(context.trace_id, 0.5)
