"""Property-based cross-validation of the core algorithms.

The library deliberately contains several independent implementations of
the same mathematical objects:

* concept-concept distance: ancestor-cone BFS, the Dewey-pair identity,
  the valid-path BFS distance map, and the precomputed matrix;
* document distances: the brute-force definitions (Eqs. 1-3), the
  quadratic pairwise baseline, and DRC over the D-Radix;
* top-k search: kNDS under many configurations, the full-scan oracle, and
  (for RDS) the Threshold Algorithm.

Hypothesis generates random DAGs, corpora and queries and checks that all
of them agree — any bug in Dewey labelling, radix splitting, distance
tuning or branch-and-bound pruning shows up as a disagreement.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fullscan import FullScanSearch
from repro.baselines.matrix import ConceptDistanceMatrix
from repro.baselines.pairwise import PairwiseDistanceBaseline
from repro.baselines.ta import ThresholdAlgorithm
from repro.core.drc import DRC
from repro.core.knds import KNDSConfig, KNDSearch
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.ontology.builder import OntologyBuilder
from repro.ontology.dewey import DeweyIndex
from repro.ontology.distance import (
    concept_distance,
    concept_distance_dewey,
    document_document_distance,
    document_query_distance,
)
from repro.ontology.graph import Ontology
from repro.ontology.traversal import valid_path_distances


@st.composite
def small_dags(draw, min_concepts: int = 2, max_concepts: int = 18):
    """Random single-rooted DAGs with bounded Dewey path counts.

    Nodes are created in order and every edge goes from an earlier node to
    a later one, so the result is acyclic with node 0 as the unique root.
    Extra parents are added sparingly and only while the receiving node's
    path count stays small, keeping the brute-force oracles fast.
    """
    count = draw(st.integers(min_concepts, max_concepts))
    names = [f"n{i}" for i in range(count)]
    builder = OntologyBuilder("hypothesis-dag")
    for name in names:
        builder.add_concept(name)
    paths = [1] * count
    for index in range(1, count):
        parent = draw(st.integers(0, index - 1))
        builder.add_edge(names[parent], names[index])
        paths[index] = paths[parent]
        if index >= 2 and draw(st.booleans()):
            extra = draw(st.integers(0, index - 1))
            if extra != parent and paths[index] + paths[extra] <= 48:
                builder.add_edge(names[extra], names[index])
                paths[index] += paths[extra]
    return builder.build()


@st.composite
def worlds(draw):
    """A random (ontology, collection, query) triple."""
    ontology = draw(small_dags(min_concepts=3))
    concepts = list(ontology.concepts())
    num_docs = draw(st.integers(1, 10))
    documents = []
    for doc_index in range(num_docs):
        size = draw(st.integers(1, min(5, len(concepts))))
        members = draw(
            st.lists(st.sampled_from(concepts), min_size=size,
                     max_size=size, unique=True)
        )
        documents.append(Document(f"d{doc_index}", members))
    query_size = draw(st.integers(1, min(4, len(concepts))))
    query = tuple(draw(
        st.lists(st.sampled_from(concepts), min_size=query_size,
                 max_size=query_size, unique=True)
    ))
    return ontology, DocumentCollection(documents, name="hyp"), query


class TestConceptDistanceAgreement:
    @given(small_dags(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_three_implementations_agree(self, ontology, data):
        concepts = list(ontology.concepts())
        first = data.draw(st.sampled_from(concepts))
        second = data.draw(st.sampled_from(concepts))
        dewey = DeweyIndex(ontology)
        via_bfs = concept_distance(ontology, first, second)
        via_dewey = concept_distance_dewey(dewey, first, second)
        via_traversal = valid_path_distances(ontology, first)[second]
        assert via_bfs == via_dewey == via_traversal

    @given(small_dags(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_distance_axioms(self, ontology, data):
        concepts = list(ontology.concepts())
        first = data.draw(st.sampled_from(concepts))
        second = data.draw(st.sampled_from(concepts))
        assert concept_distance(ontology, first, first) == 0
        forward = concept_distance(ontology, first, second)
        backward = concept_distance(ontology, second, first)
        assert forward == backward
        assert forward >= 0
        if first != second:
            assert forward >= 1

    @given(small_dags())
    @settings(max_examples=30, deadline=None)
    def test_matrix_matches_bfs(self, ontology):
        matrix = ConceptDistanceMatrix.build(ontology)
        concepts = list(ontology.concepts())
        for first in concepts[:6]:
            for second in concepts[:6]:
                assert matrix.distance(first, second) == concept_distance(
                    ontology, first, second)


class TestDeweyInvariants:
    @given(small_dags(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_prefixes_resolve_to_ancestors(self, ontology, data):
        concept = data.draw(st.sampled_from(list(ontology.concepts())))
        dewey = DeweyIndex(ontology)
        ancestors = ontology.ancestors(concept) | {concept}
        for address in dewey.addresses(concept):
            assert ontology.resolve_dewey(address) == concept
            for cut in range(len(address)):
                prefix_owner = ontology.resolve_dewey(address[:cut])
                assert prefix_owner in ancestors

    @given(small_dags(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_address_count_and_order(self, ontology, data):
        concept = data.draw(st.sampled_from(list(ontology.concepts())))
        dewey = DeweyIndex(ontology)
        addresses = dewey.addresses(concept)
        assert len(addresses) >= 1
        assert list(addresses) == sorted(addresses)
        assert len(set(addresses)) == len(addresses)
        # Minimum address length equals the BFS depth of the concept.
        assert min(len(a) for a in addresses) == ontology.depth(concept)


class TestDocumentDistanceAgreement:
    @given(worlds())
    @settings(max_examples=50, deadline=None)
    def test_drc_matches_brute_force_rds(self, world):
        ontology, collection, query = world
        drc = DRC(ontology)
        for document in collection:
            expected = document_query_distance(
                ontology, document.concepts, query)
            assert drc.document_query_distance(
                document.concepts, query) == expected

    @given(worlds())
    @settings(max_examples=50, deadline=None)
    def test_drc_matches_brute_force_sds(self, world):
        ontology, collection, query = world
        drc = DRC(ontology)
        for document in collection:
            expected = document_document_distance(
                ontology, document.concepts, query)
            got = drc.document_document_distance(document.concepts, query)
            assert math.isclose(got, expected), (document.concepts, query)

    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_pairwise_baseline_matches_drc(self, world):
        ontology, collection, query = world
        drc = DRC(ontology)
        baseline = PairwiseDistanceBaseline(ontology)
        for document in collection:
            assert baseline.document_query_distance(
                document.concepts, query
            ) == drc.document_query_distance(document.concepts, query)
            assert math.isclose(
                baseline.document_document_distance(document.concepts, query),
                drc.document_document_distance(document.concepts, query),
            )


def _assert_same_topk(result, oracle, k: int) -> None:
    """Rankings must agree on distances; ids may differ only within ties."""
    assert len(result.results) == len(oracle.results) == min(
        k, len(oracle.results) if len(oracle.results) < k else k)
    got = [round(item.distance, 9) for item in result.results]
    want = [round(item.distance, 9) for item in oracle.results]
    assert got == want
    by_distance_got: dict[float, set[str]] = {}
    by_distance_want: dict[float, set[str]] = {}
    for item in result.results:
        by_distance_got.setdefault(round(item.distance, 9), set()).add(
            item.doc_id)
    for item in oracle.results:
        by_distance_want.setdefault(round(item.distance, 9), set()).add(
            item.doc_id)
    for distance, ids in by_distance_got.items():
        # Non-boundary distances must match exactly; boundary ties may pick
        # any of the equally distant documents.
        if distance != got[-1]:
            assert ids == by_distance_want[distance]


KNDS_CONFIGS = [
    KNDSConfig(),
    KNDSConfig(error_threshold=0.0),
    KNDSConfig(error_threshold=1.0),
    KNDSConfig(error_threshold=0.4, dedupe=False),
    KNDSConfig(prune_on_update=False, prune_at_pop=False),
    KNDSConfig(covered_shortcut=False, error_threshold=0.7),
    KNDSConfig(analyze_budget_per_round=1),
    KNDSConfig(queue_limit=4),
]


class TestKNDSAgainstOracle:
    @given(worlds(), st.integers(1, 12),
           st.sampled_from(KNDS_CONFIGS))
    @settings(max_examples=60, deadline=None)
    def test_rds_matches_full_scan(self, world, k, config):
        ontology, collection, query = world
        oracle = FullScanSearch(ontology, collection).rds(query, k)
        searcher = KNDSearch(ontology, collection)
        result = searcher.rds(query, k, config=config)
        _assert_same_topk(result, oracle, k)

    @given(worlds(), st.integers(1, 12),
           st.sampled_from(KNDS_CONFIGS))
    @settings(max_examples=60, deadline=None)
    def test_sds_matches_full_scan(self, world, k, config):
        ontology, collection, query = world
        oracle = FullScanSearch(ontology, collection).sds(query, k)
        searcher = KNDSearch(ontology, collection)
        result = searcher.sds(query, k, config=config)
        _assert_same_topk(result, oracle, k)

    @given(worlds(), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_progressive_iterator_matches_batch(self, world, k):
        ontology, collection, query = world
        searcher = KNDSearch(ontology, collection)
        batch = searcher.rds(query, k)
        progressive = list(searcher.rds_iter(query, k))
        assert [(i.doc_id, i.distance) for i in progressive] == [
            (i.doc_id, i.distance) for i in batch.results]


class TestThresholdAlgorithmAgainstOracle:
    @given(worlds(), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_ta_matches_full_scan_rds(self, world, k):
        ontology, collection, query = world
        oracle = FullScanSearch(ontology, collection).rds(query, k)
        ta = ThresholdAlgorithm.build(ontology, collection, concepts=query)
        result = ta.rds(query, k)
        _assert_same_topk(result, oracle, k)


class TestSymmetryAndScaling:
    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_ddd_symmetric(self, world):
        ontology, collection, query = world
        for document in collection:
            forward = document_document_distance(
                ontology, document.concepts, query)
            backward = document_document_distance(
                ontology, query, document.concepts)
            assert math.isclose(forward, backward)

    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_identical_documents_have_zero_distance(self, world):
        ontology, collection, _query = world
        for document in collection:
            assert document_document_distance(
                ontology, document.concepts, document.concepts) == 0.0
            assert document_query_distance(
                ontology, document.concepts, document.concepts) == 0
