"""Unit tests for the in-memory and SQLite index backends.

Both backends implement the same interfaces, so the behavioural tests run
against each via parametrization — any divergence between storage layers
is a failure.
"""

from __future__ import annotations

import pytest

from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.exceptions import UnknownConceptError, UnknownDocumentError
from repro.index.memory import MemoryForwardIndex, MemoryInvertedIndex
from repro.index.sqlite import SQLiteIndexStore


@pytest.fixture()
def collection() -> DocumentCollection:
    return DocumentCollection(
        [
            Document("d1", ["C1", "C2"]),
            Document("d2", ["C2", "C3"]),
            Document("d3", ["C2"]),
        ],
        name="idx",
    )


def _build(backend: str, collection: DocumentCollection):
    if backend == "memory":
        return (
            MemoryInvertedIndex.from_collection(collection),
            MemoryForwardIndex.from_collection(collection),
            None,
        )
    store = SQLiteIndexStore.build(collection)
    return store.inverted, store.forward, store


@pytest.fixture(params=["memory", "sqlite"])
def indexes(request, collection):
    inverted, forward, store = _build(request.param, collection)
    yield inverted, forward
    if store is not None:
        store.close()


class TestInvertedIndex:
    def test_postings(self, indexes):
        inverted, _forward = indexes
        assert set(inverted.postings("C2")) == {"d1", "d2", "d3"}
        assert set(inverted.postings("C1")) == {"d1"}

    def test_missing_concept_empty(self, indexes):
        inverted, _forward = indexes
        assert list(inverted.postings("C9")) == []

    def test_document_frequency(self, indexes):
        inverted, _forward = indexes
        assert inverted.document_frequency("C2") == 3
        assert inverted.document_frequency("C9") == 0

    def test_indexed_concepts(self, indexes):
        inverted, _forward = indexes
        assert sorted(inverted.indexed_concepts()) == ["C1", "C2", "C3"]


class TestForwardIndex:
    def test_concepts(self, indexes):
        _inverted, forward = indexes
        assert tuple(forward.concepts("d2")) == ("C2", "C3")

    def test_concept_count(self, indexes):
        _inverted, forward = indexes
        assert forward.concept_count("d1") == 2
        assert forward.concept_count("d3") == 1

    def test_unknown_document(self, indexes):
        _inverted, forward = indexes
        with pytest.raises(UnknownDocumentError):
            forward.concepts("nope")
        with pytest.raises(UnknownDocumentError):
            forward.concept_count("nope")

    def test_doc_ids_and_len(self, indexes):
        _inverted, forward = indexes
        assert sorted(forward.doc_ids()) == ["d1", "d2", "d3"]
        assert len(forward) == 3


class TestValidation:
    def test_memory_index_validates_against_ontology(self, figure3):
        collection = DocumentCollection([Document("d1", ["F", "nope"])])
        with pytest.raises(UnknownConceptError):
            MemoryInvertedIndex.from_collection(collection, ontology=figure3)

    def test_memory_index_without_ontology_accepts_anything(self):
        collection = DocumentCollection([Document("d1", ["whatever"])])
        index = MemoryInvertedIndex.from_collection(collection)
        assert list(index.postings("whatever")) == ["d1"]


class TestSQLitePersistence:
    def test_on_disk_roundtrip(self, collection, tmp_path):
        path = tmp_path / "indexes.db"
        store = SQLiteIndexStore.build(collection, path)
        store.close()
        reopened = SQLiteIndexStore.open(path)
        assert set(reopened.inverted.postings("C2")) == {"d1", "d2", "d3"}
        assert reopened.forward.concept_count("d1") == 2
        reopened.close()

    def test_context_manager(self, collection):
        with SQLiteIndexStore.build(collection) as store:
            assert len(store.forward) == 3

    def test_rebuild_replaces_schema(self, collection, tmp_path):
        path = tmp_path / "indexes.db"
        SQLiteIndexStore.build(collection, path).close()
        smaller = DocumentCollection([Document("dX", ["C9"])])
        store = SQLiteIndexStore.build(smaller, path)
        assert sorted(store.forward.doc_ids()) == ["dX"]
        store.close()
