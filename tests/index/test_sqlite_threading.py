"""SQLite store under threads: shared-connection reads, locked writes."""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.corpus.document import Document
from repro.index.sqlite import SQLiteIndexStore


@pytest.fixture()
def store(example4):
    store = SQLiteIndexStore.build(example4)
    yield store
    store.close()


def test_sqlite3_is_serialized():
    # The documented concurrency model leans on CPython shipping the
    # serialized threading mode; fail loudly if a build ever does not.
    assert sqlite3.threadsafety == 3


def test_connection_is_shared_across_threads(store):
    seen = []

    def reader():
        seen.append(store.inverted.postings("F"))

    thread = threading.Thread(target=reader)
    thread.start()
    thread.join()
    assert seen and seen[0] == store.inverted.postings("F")


def test_concurrent_reads_are_consistent(store, example4):
    doc_ids = example4.doc_ids()
    expected = {doc_id: store.forward.concepts(doc_id)
                for doc_id in doc_ids}
    errors = []

    def reader(seed):
        try:
            for i in range(100):
                doc_id = doc_ids[(seed + i) % len(doc_ids)]
                assert store.forward.concepts(doc_id) == expected[doc_id]
                store.inverted.postings("F")
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=reader, args=(t,))
               for t in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors


def test_readers_see_whole_mutation_or_nothing(store):
    # A reader either finds all of a document's rows (forward + size
    # agree) or none; never a half-applied insert.
    stop = threading.Event()
    errors = []

    def reader():
        try:
            while not stop.is_set():
                try:
                    concepts = store.forward.concepts("w1")
                    count = store.forward.concept_count("w1")
                except Exception:
                    continue  # not inserted yet (or already removed)
                assert len(concepts) == count
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    def writer():
        try:
            for _ in range(50):
                store.add_document(Document("w1", ["F", "I", "B"]))
                store.remove_document("w1")
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    readers = [threading.Thread(target=reader) for _ in range(4)]
    write_thread = threading.Thread(target=writer)
    for thread in readers:
        thread.start()
    write_thread.start()
    write_thread.join()
    stop.set()
    for thread in readers:
        thread.join()
    assert not errors


def test_concurrent_writers_do_not_corrupt(store):
    errors = []

    def writer(index):
        try:
            for i in range(25):
                doc_id = f"t{index}_{i}"
                store.add_document(Document(doc_id, ["F", "I"]))
                store.remove_document(doc_id)
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=writer, args=(t,))
               for t in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    # All the temporary documents are gone; the original corpus remains.
    assert len(store.forward) == 6
