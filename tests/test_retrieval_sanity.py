"""Retrieval sanity: the rankings must behave the way the semantics
promise.

The paper defers retrieval *effectiveness* to prior user studies, but the
distance semantics make hard self-consistency promises that any correct
implementation must honour: documents built around a query's neighborhood
must outrank documents built elsewhere, exact matches must come first,
more specific matches must beat more general ones, and adding shared
concepts must never push a document further away.
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import SearchEngine
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.ontology.generators import snomed_like
from repro.ontology.traversal import ValidPathBFS


@pytest.fixture(scope="module")
def ontology():
    return snomed_like(900, seed=91)


def neighborhood(ontology, origin, radius, limit=30):
    found = []
    for level, nodes in ValidPathBFS(ontology, origin):
        if level > radius:
            break
        found.extend(n for n in nodes if n != ontology.root)
    return found[:limit]


class TestNeighborhoodBeatsRandom:
    def test_cluster_documents_outrank_background(self, ontology):
        rng = random.Random(92)
        concepts = [c for c in ontology.concepts() if c != ontology.root]
        seed_concept = concepts[100]
        cluster = neighborhood(ontology, seed_concept, radius=2)
        documents = [
            Document(f"near{i}", rng.sample(cluster,
                                            min(6, len(cluster))))
            for i in range(5)
        ]
        documents += [
            Document(f"far{i}", rng.sample(concepts, 6))
            for i in range(20)
        ]
        engine = SearchEngine(ontology,
                              DocumentCollection(documents))
        query = [seed_concept] + cluster[1:3]
        results = engine.rds(query, k=5)
        near_ranks = [doc_id for doc_id in results.doc_ids()
                      if doc_id.startswith("near")]
        # The clustered documents dominate the top-5.
        assert len(near_ranks) >= 4

    def test_exact_match_always_first(self, ontology):
        concepts = [c for c in ontology.concepts() if c != ontology.root]
        query = concepts[20:23]
        documents = [Document("exact", query)]
        documents += [Document(f"other{i}", concepts[40 + i:46 + i])
                      for i in range(10)]
        engine = SearchEngine(ontology, DocumentCollection(documents))
        results = engine.rds(query, k=3)
        assert results.results[0].doc_id == "exact"
        assert results.results[0].distance == 0.0


class TestMonotonicity:
    def test_adding_query_concepts_never_helps_a_document(self, ontology):
        # Ddq is a sum of non-negative terms: a superset query gives
        # distances >= the subset query's, per document.
        concepts = [c for c in ontology.concepts() if c != ontology.root]
        documents = [Document(f"d{i}", concepts[i * 7:(i * 7) + 5])
                     for i in range(8)]
        collection = DocumentCollection(documents)
        engine = SearchEngine(ontology, collection)
        small_query = concepts[3:5]
        big_query = concepts[3:7]
        small = dict(zip(
            engine.rds(small_query, k=8).doc_ids(),
            engine.rds(small_query, k=8).distances()))
        big = dict(zip(
            engine.rds(big_query, k=8).doc_ids(),
            engine.rds(big_query, k=8).distances()))
        for doc_id in set(small) & set(big):
            assert big[doc_id] >= small[doc_id]

    def test_sharing_more_concepts_never_hurts_rds(self, ontology):
        concepts = [c for c in ontology.concepts() if c != ontology.root]
        query = concepts[10:14]
        partial = Document("partial", query[:2] + concepts[200:202])
        fuller = Document("fuller", query[:3] + concepts[200:201])
        engine = SearchEngine(
            ontology, DocumentCollection([partial, fuller]))
        results = dict(zip(engine.rds(query, k=2).doc_ids(),
                           engine.rds(query, k=2).distances()))
        assert results["fuller"] <= results["partial"]


class TestGeneralityOrdering:
    def test_child_match_beats_distant_cousin(self, ontology):
        # A document holding the query concept's child is at distance 1;
        # one holding only a concept two or more hops away ranks after.
        concepts = [c for c in ontology.concepts()
                    if ontology.children(c) and c != ontology.root]
        anchor = concepts[30]
        child = ontology.children(anchor)[0]
        two_away = neighborhood(ontology, anchor, radius=2)
        distant = [c for c in two_away
                   if c not in (anchor, child)
                   and c not in ontology.children(anchor)
                   and c not in ontology.parents(anchor)]
        if not distant:
            pytest.skip("anchor has no distance-2 neighbor")
        engine = SearchEngine(ontology, DocumentCollection([
            Document("close", [child]),
            Document("farther", [distant[0]]),
        ]))
        results = engine.rds([anchor], k=2)
        assert results.results[0].doc_id == "close"
        assert results.results[0].distance == 1.0
        assert results.results[1].distance >= 2.0
