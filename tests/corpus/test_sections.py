"""Tests for clinical-note section handling."""

from __future__ import annotations

import pytest

from repro.corpus.text.mapper import ConceptMapper
from repro.corpus.text.pipeline import ConceptExtractor
from repro.corpus.text.sections import (
    DEFAULT_EXCLUDED_SECTIONS,
    SectionPolicy,
    extract_with_sections,
    iter_admitted_bodies,
    merge_policies,
    section_headers,
    split_sections,
)

NOTE = """\
Seen today for follow up.
CHIEF COMPLAINT: chest pain on exertion
FAMILY HISTORY: father with myocardial infarction at 60
MEDICATIONS: aspirin daily
ASSESSMENT: stable angina. no myocardial infarction.
PLAN: stress test next week
"""


class TestSplitSections:
    def test_headers_and_bodies(self):
        sections = split_sections(NOTE)
        headers = [section.header for section in sections]
        assert headers == [None, "CHIEF COMPLAINT", "FAMILY HISTORY",
                           "MEDICATIONS", "ASSESSMENT", "PLAN"]
        assert sections[0].body == "Seen today for follow up."
        assert sections[1].body == "chest pain on exertion"

    def test_multiline_body(self):
        sections = split_sections("PLAN: first line\nsecond line\n")
        assert sections[0].body == "first line\nsecond line"

    def test_order_field(self):
        sections = split_sections(NOTE)
        assert [section.order for section in sections] == list(
            range(len(sections)))

    def test_lowercase_colon_lines_are_not_headers(self):
        sections = split_sections("the plan: do nothing")
        assert sections[0].header is None

    def test_empty_text(self):
        assert split_sections("") == []

    def test_section_headers_helper(self):
        assert section_headers(NOTE) == [
            "CHIEF COMPLAINT", "FAMILY HISTORY", "MEDICATIONS",
            "ASSESSMENT", "PLAN",
        ]


class TestSectionPolicy:
    def test_default_excludes_family_history(self):
        policy = SectionPolicy()
        assert not policy.admits("FAMILY HISTORY")
        assert policy.admits("ASSESSMENT")
        assert policy.admits(None)

    def test_case_insensitive(self):
        policy = SectionPolicy(excluded=frozenset({"Family History"}))
        assert not policy.admits("FAMILY HISTORY")

    def test_whitelist_mode(self):
        policy = SectionPolicy(included=frozenset({"ASSESSMENT"}))
        assert policy.admits("ASSESSMENT")
        assert not policy.admits("PLAN")
        assert not policy.admits(None)

    def test_merge_policies(self):
        merged = merge_policies(
            SectionPolicy(excluded=frozenset({"A"})),
            SectionPolicy(excluded=frozenset({"B"})),
        )
        assert not merged.admits("A")
        assert not merged.admits("B")


class TestSectionAwareExtraction:
    @pytest.fixture()
    def extractor(self):
        return ConceptExtractor(ConceptMapper({
            "chest pain": "C_CP",
            "myocardial infarction": "C_MI",
            "stable angina": "C_SA",
            "aspirin": "C_ASA",
        }))

    def test_family_history_excluded_from_concept_set(self, extractor):
        concepts, mentions = extract_with_sections(extractor, NOTE)
        # The father's MI must not become a patient concept — and the
        # ASSESSMENT mention of MI is negated ("no myocardial
        # infarction"), so C_MI stays out entirely.
        assert concepts == {"C_CP", "C_SA", "C_ASA"}
        family = [m for m in mentions if m.section == "FAMILY HISTORY"]
        assert len(family) == 1
        assert not family[0].admitted
        assert family[0].mention.concept_id == "C_MI"

    def test_negation_still_applies_inside_admitted_sections(self,
                                                             extractor):
        concepts, mentions = extract_with_sections(extractor, NOTE)
        assessment = [m for m in mentions if m.section == "ASSESSMENT"]
        negated = [m for m in assessment if m.mention.negated]
        assert [m.mention.concept_id for m in negated] == ["C_MI"]

    def test_whitelist_policy(self, extractor):
        policy = SectionPolicy(included=frozenset({"MEDICATIONS"}))
        concepts, _mentions = extract_with_sections(extractor, NOTE,
                                                    policy=policy)
        assert concepts == {"C_ASA"}

    def test_plain_extraction_would_leak_family_history(self, extractor):
        # Demonstrates why the section layer exists: the section-blind
        # pipeline admits the father's MI.
        assert "C_MI" in extractor.extract_concepts(NOTE)

    def test_iter_admitted_bodies(self):
        bodies = list(iter_admitted_bodies(NOTE))
        assert "father with myocardial infarction at 60" not in bodies
        assert "aspirin daily" in bodies

    def test_defaults_constant(self):
        assert "FAMILY HISTORY" in DEFAULT_EXCLUDED_SECTIONS
