"""Unit tests for the document model."""

from __future__ import annotations

import pytest

from repro.corpus.document import Document
from repro.exceptions import EmptyDocumentError


class TestDocument:
    def test_concepts_normalized_sorted_unique(self):
        document = Document("d1", ["C2", "C1", "C2"])
        assert document.concepts == ("C1", "C2")
        assert document.concept_set == frozenset({"C1", "C2"})
        assert len(document) == 2

    def test_contains(self):
        document = Document("d1", ["C1"])
        assert "C1" in document
        assert "C2" not in document

    def test_token_count_from_text(self):
        document = Document("d1", ["C1"], text="one two three")
        assert document.token_count == 3

    def test_token_count_explicit_overrides(self):
        document = Document("d1", ["C1"], text="one two", token_count=99)
        assert document.token_count == 99

    def test_equality_and_hash(self):
        first = Document("d1", ["C1", "C2"])
        second = Document("d1", ["C2", "C1"])
        third = Document("d2", ["C1", "C2"])
        assert first == second
        assert hash(first) == hash(second)
        assert first != third
        assert first != "d1"

    def test_require_concepts(self):
        document = Document("d1", [])
        with pytest.raises(EmptyDocumentError):
            document.require_concepts()
        assert Document("d2", ["C1"]).require_concepts() == ("C1",)

    def test_restrict_to(self):
        document = Document("d1", ["C1", "C2", "C3"], text="t",
                            metadata={"kind": "note"})
        restricted = document.restrict_to({"C1", "C3", "C9"})
        assert restricted.concepts == ("C1", "C3")
        assert restricted.doc_id == "d1"
        assert restricted.text == "t"
        assert restricted.metadata == {"kind": "note"}

    def test_metadata_defaults_empty(self):
        assert Document("d1", ["C1"]).metadata == {}
