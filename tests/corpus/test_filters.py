"""Unit tests for the Section 6.1 concept filters."""

from __future__ import annotations

import pytest

from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.corpus.filters import (
    apply_default_filters,
    collection_frequency_cutoff,
    depth_filter,
    frequency_filter,
)


class TestDepthFilter:
    def test_default_threshold_on_figure3(self, figure3):
        kept = depth_filter(figure3)
        # Depth >= 4 keeps only the deep half of the example hierarchy.
        assert "A" not in kept
        assert "F" not in kept  # depth 2
        assert "I" in kept  # depth 4
        assert "U" in kept and "V" in kept and "T" in kept

    def test_custom_threshold(self, figure3):
        kept = depth_filter(figure3, min_depth=1)
        assert kept == set(figure3.concepts()) - {"A"}


class TestFrequencyFilter:
    def collection(self) -> DocumentCollection:
        documents = [
            Document(f"d{i}", ["common"] + ([f"rare{i}"] if i else []))
            for i in range(10)
        ]
        return DocumentCollection(documents)

    def test_cutoff_is_mu_plus_sigma(self):
        collection = self.collection()
        frequencies = list(collection.concept_frequencies().values())
        mean = sum(frequencies) / len(frequencies)
        cutoff = collection_frequency_cutoff(collection)
        assert cutoff > mean

    def test_ubiquitous_concept_dropped(self):
        kept = frequency_filter(self.collection())
        assert "common" not in kept
        assert "rare3" in kept

    def test_explicit_cutoff(self):
        kept = frequency_filter(self.collection(), cutoff=100)
        assert "common" in kept

    def test_empty_collection(self):
        assert collection_frequency_cutoff(DocumentCollection()) == 0.0
        assert frequency_filter(DocumentCollection()) == set()


class TestApplyDefaultFilters:
    def test_combined(self, figure3):
        documents = [
            Document("d1", ["A", "U"]),   # A is too generic (depth 0)
            Document("d2", ["V", "U"]),
            Document("d3", ["A"]),        # left empty => dropped
        ]
        collection = DocumentCollection(documents)
        filtered = apply_default_filters(figure3, collection,
                                         frequency_cutoff=100)
        assert filtered.doc_ids() == ["d1", "d2"]
        assert filtered.get("d1").concepts == ("U",)

    def test_ignores_concepts_missing_from_ontology(self, figure3):
        collection = DocumentCollection([Document("d1", ["U", "external"])])
        filtered = apply_default_filters(figure3, collection,
                                         frequency_cutoff=100)
        assert filtered.get("d1").concepts == ("U",)
