"""Unit tests for document collections and corpus statistics."""

from __future__ import annotations

import pytest

from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.exceptions import CorpusError, UnknownDocumentError


def make_collection() -> DocumentCollection:
    return DocumentCollection(
        [
            Document("d1", ["C1", "C2"], token_count=10),
            Document("d2", ["C2", "C3"], token_count=20),
            Document("d3", ["C2"], token_count=30),
        ],
        name="toy",
    )


class TestBasics:
    def test_len_iter_contains_get(self):
        collection = make_collection()
        assert len(collection) == 3
        assert [d.doc_id for d in collection] == ["d1", "d2", "d3"]
        assert "d2" in collection
        assert collection.get("d2").concepts == ("C2", "C3")

    def test_duplicate_id_rejected(self):
        collection = make_collection()
        with pytest.raises(CorpusError):
            collection.add(Document("d1", ["C9"]))

    def test_unknown_document(self):
        with pytest.raises(UnknownDocumentError):
            make_collection().get("nope")

    def test_doc_ids_order(self):
        assert make_collection().doc_ids() == ["d1", "d2", "d3"]


class TestStats:
    def test_table3_statistics(self):
        stats = make_collection().stats()
        assert stats.total_documents == 3
        assert stats.total_concepts == 3
        assert stats.avg_tokens_per_document == pytest.approx(20.0)
        assert stats.avg_concepts_per_document == pytest.approx(5 / 3)

    def test_empty_collection_stats(self):
        stats = DocumentCollection(name="empty").stats()
        assert stats.total_documents == 0
        assert stats.avg_tokens_per_document == 0.0

    def test_as_rows(self):
        rows = dict(make_collection().stats().as_rows())
        assert rows["Total Documents"] == "3"
        assert rows["Avg. Tokens/Document"] == "20.0"

    def test_concept_frequencies(self):
        frequencies = make_collection().concept_frequencies()
        assert frequencies == {"C1": 1, "C2": 3, "C3": 1}

    def test_distinct_concepts(self):
        assert make_collection().distinct_concepts() == {"C1", "C2", "C3"}


class TestTransforms:
    def test_filtered(self):
        collection = make_collection()
        big = collection.filtered(lambda d: d.token_count >= 20, name="big")
        assert big.doc_ids() == ["d2", "d3"]
        assert big.name == "big"
        assert len(collection) == 3  # original untouched

    def test_restrict_concepts_drops_empty(self):
        restricted = make_collection().restrict_concepts({"C1", "C3"})
        assert restricted.doc_ids() == ["d1", "d2"]
        assert restricted.get("d1").concepts == ("C1",)

    def test_restrict_concepts_keep_empty(self):
        restricted = make_collection().restrict_concepts(
            {"C1"}, drop_empty=False)
        assert restricted.doc_ids() == ["d1", "d2", "d3"]
        assert len(restricted.get("d3")) == 0
