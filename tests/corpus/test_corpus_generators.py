"""Unit tests for synthetic corpus generation."""

from __future__ import annotations

import pytest

from repro.corpus.generators import generate_corpus, patient_like, radio_like


class TestGenerateCorpus:
    def test_deterministic(self, small_ontology):
        first = generate_corpus(small_ontology, num_docs=20,
                                mean_concepts=8, seed=5)
        second = generate_corpus(small_ontology, num_docs=20,
                                 mean_concepts=8, seed=5)
        assert [d.concepts for d in first] == [d.concepts for d in second]

    def test_doc_count_and_nonempty(self, small_ontology):
        corpus = generate_corpus(small_ontology, num_docs=15,
                                 mean_concepts=6, seed=1)
        assert len(corpus) == 15
        assert all(len(document) >= 1 for document in corpus)

    def test_mean_concepts_approximate(self, small_ontology):
        corpus = generate_corpus(small_ontology, num_docs=60,
                                 mean_concepts=10, seed=2)
        mean = corpus.stats().avg_concepts_per_document
        assert 6 <= mean <= 14

    def test_concepts_exist_in_ontology(self, small_ontology):
        corpus = generate_corpus(small_ontology, num_docs=10,
                                 mean_concepts=8, seed=3)
        for document in corpus:
            for concept in document.concepts:
                assert concept in small_ontology
                assert concept != small_ontology.root

    def test_token_counts_scale_with_concepts(self, small_ontology):
        corpus = generate_corpus(small_ontology, num_docs=20,
                                 mean_concepts=10, tokens_per_concept=10,
                                 seed=4)
        for document in corpus:
            assert document.token_count >= len(document)

    def test_with_text_mentions_labels(self, small_ontology):
        corpus = generate_corpus(small_ontology, num_docs=3,
                                 mean_concepts=4, with_text=True, seed=6)
        for document in corpus:
            assert document.text
            first_concept = document.concepts[0]
            label_head = small_ontology.label(first_concept).split()[0]
            assert label_head in document.text

    def test_invalid_cohesion(self, small_ontology):
        with pytest.raises(ValueError):
            generate_corpus(small_ontology, num_docs=1, mean_concepts=2,
                            cohesion=1.5)


class TestCohesion:
    def _mean_pairwise_spread(self, ontology, corpus, sample=10):
        """Average ontology distance between concept pairs within docs."""
        from repro.ontology.distance import concept_distance
        total, count = 0, 0
        for document in list(corpus)[:sample]:
            concepts = document.concepts[:6]
            for i in range(len(concepts) - 1):
                total += concept_distance(ontology, concepts[i],
                                          concepts[i + 1])
                count += 1
        return total / count

    def test_high_cohesion_clusters_concepts(self, small_ontology):
        tight = generate_corpus(small_ontology, num_docs=12,
                                mean_concepts=10, cohesion=0.95, seed=7)
        loose = generate_corpus(small_ontology, num_docs=12,
                                mean_concepts=10, cohesion=0.0, seed=7)
        assert self._mean_pairwise_spread(
            small_ontology, tight) < self._mean_pairwise_spread(
            small_ontology, loose)


class TestPresets:
    def test_patient_vs_radio_contrast(self, small_ontology):
        patient = patient_like(small_ontology, num_docs=12,
                               mean_concepts=40)
        radio = radio_like(small_ontology, num_docs=40, mean_concepts=8)
        patient_stats = patient.stats()
        radio_stats = radio.stats()
        assert patient_stats.total_documents < radio_stats.total_documents
        assert (patient_stats.avg_concepts_per_document
                > 3 * radio_stats.avg_concepts_per_document)
        assert (patient_stats.avg_tokens_per_document
                / patient_stats.avg_concepts_per_document
                > radio_stats.avg_tokens_per_document
                / radio_stats.avg_concepts_per_document)

    def test_preset_names(self, small_ontology):
        assert patient_like(small_ontology, num_docs=2).name == "PATIENT"
        assert radio_like(small_ontology, num_docs=2).name == "RADIO"
