"""Tests for the clinical-note generator and its extraction round trip."""

from __future__ import annotations

import pytest

from repro.corpus.text.notegen import generate_note, notes_corpus
from repro.corpus.text.pipeline import ConceptExtractor


class TestGenerateNote:
    def test_mentions_every_positive_label(self, figure3):
        text = generate_note(figure3, ["G", "J"], seed=1)
        assert figure3.label("G") in text
        assert figure3.label("J") in text

    def test_sectioned_layout(self, figure3):
        text = generate_note(figure3, ["G", "J", "F"], ["B"], seed=2)
        assert "CHIEF COMPLAINT:" in text
        assert text.count("\n") >= 1

    def test_deterministic(self, figure3):
        first = generate_note(figure3, ["G", "F"], ["B"], seed=3)
        second = generate_note(figure3, ["G", "F"], ["B"], seed=3)
        assert first == second

    def test_roundtrip_recovers_exactly_the_positive_set(self, figure3):
        extractor = ConceptExtractor.for_ontology(figure3)
        for seed in range(6):
            text = generate_note(figure3, ["G", "J", "F"], ["B", "D"],
                                 seed=seed)
            extracted = extractor.extract_concepts(text)
            assert extracted == {"G", "J", "F"}, (seed, text)


class TestNotesCorpus:
    def test_corpus_shape(self, small_ontology):
        corpus = notes_corpus(small_ontology, num_docs=12,
                              mean_concepts=5, seed=4)
        assert len(corpus) == 12
        for document in corpus:
            assert document.text
            assert document.token_count > 0

    def test_negated_decoys_do_not_leak(self, small_ontology):
        corpus = notes_corpus(small_ontology, num_docs=15,
                              mean_concepts=5, negation_rate=0.5, seed=5)
        # Each document records how many positives were generated; the
        # extracted set must match (decoys filtered, positives kept).
        for document in corpus:
            assert len(document) == document.metadata["generated_positive"]

    def test_searchable_end_to_end(self, small_ontology):
        from repro.core.engine import SearchEngine
        corpus = notes_corpus(small_ontology, num_docs=20,
                              mean_concepts=6, seed=6)
        engine = SearchEngine(small_ontology, corpus)
        document = next(iter(corpus))
        results = engine.rds(list(document.concepts[:2]), k=3)
        assert document.doc_id in results.doc_ids()

    def test_empty_ontology_rejected(self):
        from repro.ontology.builder import OntologyBuilder
        lonely = OntologyBuilder().add_concept("root").build()
        with pytest.raises(ValueError):
            notes_corpus(lonely, num_docs=1)
