"""Unit tests for corpus serialization."""

from __future__ import annotations

import pytest

from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.corpus.io import (
    load_concept_csv,
    load_jsonl,
    save_concept_csv,
    save_jsonl,
)
from repro.exceptions import ParseError


@pytest.fixture()
def collection() -> DocumentCollection:
    return DocumentCollection(
        [
            Document("d1", ["C2", "C1"], text="note text", token_count=2,
                     metadata={"type": "radiology"}),
            Document("d2", ["C3"]),
        ],
        name="io-test",
    )


class TestJSONL:
    def test_roundtrip(self, collection, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_jsonl(collection, path)
        reloaded = load_jsonl(path)
        assert reloaded.doc_ids() == collection.doc_ids()
        original = collection.get("d1")
        copy = reloaded.get("d1")
        assert copy.concepts == original.concepts
        assert copy.text == original.text
        assert copy.token_count == original.token_count
        assert copy.metadata == original.metadata

    def test_compact_output_omits_empty_fields(self, collection, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_jsonl(collection, path)
        lines = path.read_text().splitlines()
        assert "text" not in lines[1]  # d2 has no text
        assert "metadata" not in lines[1]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text('{"id": "a", "concepts": ["C1"]}\n\n'
                        '{"id": "b", "concepts": ["C2"]}\n')
        assert load_jsonl(path).doc_ids() == ["a", "b"]

    def test_invalid_json_raises_with_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": "a", "concepts": ["C1"]}\nnot-json\n')
        with pytest.raises(ParseError) as excinfo:
            load_jsonl(path)
        assert excinfo.value.line == 2

    def test_missing_fields_raise(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": "a"}\n')
        with pytest.raises(ParseError):
            load_jsonl(path)

    def test_default_name_from_stem(self, collection, tmp_path):
        path = tmp_path / "mycorpus.jsonl"
        save_jsonl(collection, path)
        assert load_jsonl(path).name == "mycorpus"


class TestConceptCSV:
    def test_roundtrip_concepts_only(self, collection, tmp_path):
        path = tmp_path / "pairs.csv"
        save_concept_csv(collection, path)
        reloaded = load_concept_csv(path)
        assert reloaded.doc_ids() == collection.doc_ids()
        assert reloaded.get("d1").concepts == ("C1", "C2")

    def test_bad_header(self, tmp_path):
        path = tmp_path / "pairs.csv"
        path.write_text("foo,bar\n")
        with pytest.raises(ParseError):
            load_concept_csv(path)

    def test_short_row(self, tmp_path):
        path = tmp_path / "pairs.csv"
        path.write_text("doc_id,concept\nonlyone\n")
        with pytest.raises(ParseError):
            load_concept_csv(path)
