"""Unit tests for the concept-extraction text pipeline."""

from __future__ import annotations

from repro.corpus.text.abbreviations import AbbreviationExpander
from repro.corpus.text.mapper import ConceptMapper
from repro.corpus.text.negation import NegationDetector
from repro.corpus.text.pipeline import ConceptExtractor
from repro.corpus.text.tokenizer import sentences, token_count, tokens


class TestTokenizer:
    def test_tokens_lowercase_and_split(self):
        assert tokens("Patient here for follow-up Diabetes care.") == [
            "patient", "here", "for", "follow-up", "diabetes", "care",
        ]

    def test_tokens_keep_dosages(self):
        assert tokens("CELLCEPT 500MG po twice daily") == [
            "cellcept", "500mg", "po", "twice", "daily",
        ]

    def test_sentences_split_on_terminators(self):
        assert sentences("No fever. Denies pain; stable\nplan unchanged") == [
            "No fever", "Denies pain", "stable", "plan unchanged",
        ]

    def test_token_count(self):
        assert token_count("one two three") == 3
        assert token_count("") == 0


class TestAbbreviations:
    def test_expansion(self):
        expander = AbbreviationExpander()
        assert expander.expand("Pt with HTN and SOB") == (
            "patient with hypertension and shortness of breath")

    def test_custom_table_merges(self):
        expander = AbbreviationExpander({"xyz": "custom term"})
        assert expander.expand("xyz and htn") == "custom term and hypertension"

    def test_defaults_can_be_disabled(self):
        expander = AbbreviationExpander({"xyz": "custom"},
                                        include_defaults=False)
        assert expander.expand("xyz htn") == "custom htn"
        assert not expander.known("htn")
        assert len(expander) == 1

    def test_unknown_tokens_pass_through(self):
        assert AbbreviationExpander().expand("stable vitals") == (
            "stable vitals")


class TestNegation:
    def test_preceding_trigger(self):
        detector = NegationDetector()
        toks = tokens("no evidence of bradycardia today")
        negated = detector.negated_positions(toks)
        assert toks.index("bradycardia") in negated

    def test_absence_of(self):
        detector = NegationDetector()
        toks = tokens("absence of bradycardia")
        assert toks.index("bradycardia") in detector.negated_positions(toks)

    def test_window_limits_scope(self):
        detector = NegationDetector(window=2)
        toks = tokens("no cough or fever with severe fatigue noted")
        negated = detector.negated_positions(toks)
        assert toks.index("cough") in negated
        assert toks.index("fatigue") not in negated

    def test_termination_token_stops_scope(self):
        detector = NegationDetector()
        toks = tokens("no fever but tachycardia present")
        negated = detector.negated_positions(toks)
        assert toks.index("fever") in negated
        assert toks.index("tachycardia") not in negated

    def test_following_trigger(self):
        detector = NegationDetector()
        toks = tokens("pulmonary embolism was ruled out")
        negated = detector.negated_positions(toks)
        assert toks.index("embolism") in negated

    def test_pseudo_negation_left_positive(self):
        detector = NegationDetector()
        toks = tokens("no increase in creatinine")
        assert toks.index("creatinine") not in detector.negated_positions(
            toks)


class TestMapper:
    def test_longest_match_wins(self):
        mapper = ConceptMapper({
            "stenosis": "C_STEN",
            "aortic valve stenosis": "C_AVS",
        })
        spans = mapper.spans(tokens("severe aortic valve stenosis noted"))
        assert spans == [(1, 4, "C_AVS")]

    def test_non_overlapping_sequential_matches(self):
        mapper = ConceptMapper({"chest pain": "C_CP", "fever": "C_F"})
        spans = mapper.spans(tokens("chest pain and fever"))
        assert [s[2] for s in spans] == ["C_CP", "C_F"]

    def test_from_ontology_includes_synonyms(self, small_ontology):
        mapper = ConceptMapper.from_ontology(small_ontology)
        some_concept = next(
            c for c in small_ontology.concepts()
            if small_ontology.synonyms(c)
        )
        assert small_ontology.label(some_concept) in mapper
        assert small_ontology.synonyms(some_concept)[0] in mapper

    def test_contains_and_len(self):
        mapper = ConceptMapper({"fever": "C1"})
        assert "Fever" in mapper
        assert "chills" not in mapper
        assert 42 not in mapper
        assert len(mapper) == 1


class TestExtractor:
    def make_extractor(self) -> ConceptExtractor:
        return ConceptExtractor(ConceptMapper({
            "diabetes": "C_DM",
            "hypoglycemia": "C_HYPO",
            "bradycardia": "C_BRADY",
            "hypertension": "C_HTN",
        }))

    def test_paper_figure1_excerpt(self):
        # The clinical note of Figure 1 mentions diabetes (positive) and
        # hypoglycemia (positive).
        text = ("Patient here for follow up diabetes care. Computer print "
                "out of blood sugar shows average of 201 with 1.7 tests. "
                "There is hypoglycemia about 2-3 times a week.")
        assert self.make_extractor().extract_concepts(text) == {
            "C_DM", "C_HYPO",
        }

    def test_negated_concept_excluded(self):
        # The paper's own example: "absence of bradycardia".
        concepts = self.make_extractor().extract_concepts(
            "Stable overnight with absence of bradycardia.")
        assert concepts == set()

    def test_abbreviation_then_mapping(self):
        concepts = self.make_extractor().extract_concepts("Pt has HTN")
        assert concepts == {"C_HTN"}

    def test_positive_mention_wins(self):
        text = "No bradycardia yesterday. Today bradycardia recurred."
        concepts = self.make_extractor().extract_concepts(text)
        assert concepts == {"C_BRADY"}

    def test_mentions_expose_spans_and_polarity(self):
        mentions = self.make_extractor().mentions(
            "denies hypoglycemia. diabetes stable")
        by_concept = {m.concept_id: m for m in mentions}
        assert by_concept["C_HYPO"].negated
        assert not by_concept["C_DM"].negated
        assert by_concept["C_DM"].sentence_index == 1

    def test_to_document(self):
        document = self.make_extractor().to_document(
            "n1", "diabetes care ongoing", source="unit-test")
        assert document.doc_id == "n1"
        assert document.concepts == ("C_DM",)
        assert document.token_count == 3
        assert document.metadata == {"source": "unit-test"}

    def test_for_ontology_roundtrip(self, small_ontology):
        extractor = ConceptExtractor.for_ontology(small_ontology)
        concept = next(iter(small_ontology.children(small_ontology.root)))
        label = small_ontology.label(concept)
        assert concept in extractor.extract_concepts(
            f"assessment shows {label} today")
