"""End-to-end integration scenarios spanning the whole stack.

Each test here is a miniature deployment: ontology (generated or parsed
from files) → corpus (generated or extracted from raw notes) → filters →
indexes → queries → explanations → persistence → live updates.  These
catch seams the per-module unit tests cannot (e.g. Dewey order surviving
a CSV round trip *and then* feeding DRC).
"""

from __future__ import annotations

import pytest

from repro.baselines.fullscan import FullScanSearch
from repro.core.engine import SearchEngine
from repro.core.knds import KNDSConfig
from repro.core.mapreduce import MapReduceKNDS
from repro.core.persistence import load_engine, save_engine
from repro.corpus.document import Document
from repro.corpus.filters import apply_default_filters
from repro.corpus.generators import patient_like
from repro.corpus.io import load_jsonl, save_jsonl
from repro.corpus.text.notegen import notes_corpus
from repro.ontology.generators import snomed_like
from repro.ontology.io.csvio import load_csv, save_csv


@pytest.fixture(scope="module")
def ontology():
    return snomed_like(700, seed=71)


class TestFileRoundTripThenSearch:
    def test_csv_ontology_feeds_identical_rankings(self, ontology,
                                                   tmp_path):
        corpus = patient_like(ontology, num_docs=25, mean_concepts=20,
                              seed=72)
        concepts_csv = tmp_path / "c.csv"
        edges_csv = tmp_path / "e.csv"
        save_csv(ontology, concepts_csv, edges_csv)
        reloaded_ontology = load_csv(concepts_csv, edges_csv)

        corpus_path = tmp_path / "corpus.jsonl"
        save_jsonl(corpus, corpus_path)
        reloaded_corpus = load_jsonl(corpus_path)

        original = SearchEngine(ontology, corpus)
        roundtripped = SearchEngine(reloaded_ontology, reloaded_corpus)
        query = list(next(iter(corpus)).concepts[:3])
        assert original.rds(query, k=6).distances() == \
            roundtripped.rds(query, k=6).distances()
        assert original.sds(corpus.doc_ids()[0], k=4).distances() == \
            pytest.approx(
                roundtripped.sds(corpus.doc_ids()[0], k=4).distances())


class TestNotesToSearchPipeline:
    def test_raw_notes_all_the_way_to_explained_results(self, ontology):
        corpus = notes_corpus(ontology, num_docs=30, mean_concepts=6,
                              seed=73)
        filtered = apply_default_filters(ontology, corpus,
                                         frequency_cutoff=10_000,
                                         min_depth=1)
        assert len(filtered) > 0
        engine = SearchEngine(ontology, filtered)
        document = next(iter(filtered))
        query = list(document.concepts[:2])
        results = engine.rds(query, k=5)
        assert document.doc_id in results.doc_ids()
        explanation = engine.explain(results.doc_ids()[0], query)
        assert "total distance:" in explanation

    def test_filters_drop_generic_concepts_consistently(self, ontology):
        corpus = notes_corpus(ontology, num_docs=20, mean_concepts=6,
                              seed=74)
        filtered = apply_default_filters(ontology, corpus,
                                         frequency_cutoff=10_000,
                                         min_depth=3)
        for document in filtered:
            for concept in document.concepts:
                assert ontology.depth(concept) >= 3


class TestAlgorithmsAgreeAtModerateScale:
    @pytest.fixture(scope="class")
    def world(self, ontology):
        corpus = patient_like(ontology, num_docs=40, mean_concepts=25,
                              seed=75)
        return corpus, SearchEngine(ontology, corpus)

    def test_three_implementations_one_answer(self, ontology, world):
        corpus, engine = world
        scanner = FullScanSearch(ontology, corpus, drc=engine.drc)
        parallel = MapReduceKNDS(ontology, corpus, dewey=engine.dewey)
        query = sorted(corpus.distinct_concepts())[10:13]
        for k in (1, 5, 15):
            truth = scanner.rds(query, k).distances()
            assert engine.rds(query, k=k).distances() == truth
            assert parallel.rds(query, k).distances() == truth

    def test_sds_under_every_error_threshold(self, ontology, world):
        corpus, engine = world
        scanner = FullScanSearch(ontology, corpus, drc=engine.drc)
        document = next(iter(corpus))
        truth = scanner.sds(document, 5).distances()
        for epsilon in (0.0, 0.3, 0.7, 1.0):
            mine = engine.sds(document.doc_id, k=5,
                              config=KNDSConfig(error_threshold=epsilon))
            assert mine.distances() == pytest.approx(truth)


class TestLifecycle:
    def test_persist_update_requery(self, ontology, tmp_path):
        corpus = patient_like(ontology, num_docs=15, mean_concepts=15,
                              seed=76)
        engine = SearchEngine(ontology, corpus)
        save_engine(engine, tmp_path / "deploy")

        reloaded = load_engine(tmp_path / "deploy")
        try:
            # A new patient arrives (the paper's point-of-care story)...
            seed_concepts = list(next(iter(corpus)).concepts[:8])
            reloaded.add_document(Document("arrival", seed_concepts))
            # ...and is immediately the best SDS match for itself and a
            # strong match for its donor document.
            results = reloaded.sds("arrival", k=3)
            assert results.results[0].doc_id == "arrival"
            assert results.results[0].distance == 0.0
        finally:
            reloaded.close()

    def test_two_saved_engines_are_independent(self, ontology, tmp_path):
        corpus = patient_like(ontology, num_docs=10, mean_concepts=10,
                              seed=77)
        engine = SearchEngine(ontology, corpus)
        save_engine(engine, tmp_path / "a")
        save_engine(engine, tmp_path / "b")
        first = load_engine(tmp_path / "a")
        second = load_engine(tmp_path / "b")
        try:
            first.remove_document(corpus.doc_ids()[0])
            assert corpus.doc_ids()[0] in second.collection
        finally:
            first.close()
            second.close()
