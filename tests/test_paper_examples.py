"""Every worked example of the paper, asserted verbatim.

These tests pin the implementation to the paper's own artifacts on the
Figure 3 running example: the Table 1 Dewey address lists, the worked
distances of Section 3.2 and Example 1, the Figure 4 Radix DAG, the
step-by-step D-Radix construction of Example 2 (Figures 5(a)-5(e)), the
tuned distance annotations of Figure 5(g), the breadth-first neighbor sets
of Example 3, and the full kNDS data-structure trace of Table 2/Example 4.
"""

from __future__ import annotations

import pytest

from repro.core.dradix import DRadixDAG
from repro.core.drc import DRC
from repro.core.knds import KNDSConfig, KNDSearch
from repro.core.radix import RadixDAG
from repro.datasets import (
    EXAMPLE_DOCUMENT,
    EXAMPLE_QUERY,
    example4_collection,
    figure3_ontology,
)
from repro.ontology.distance import (
    concept_distance,
    document_document_distance,
    document_query_distance,
)
from repro.ontology.traversal import ValidPathBFS
from repro.types import parse_dewey

TABLE1_STEPS = [
    # (step, concept, address) — the merged Pd/Pq processing order.
    (1, "I", "1.1.1.1"),
    (2, "R", "1.1.1.2.1.1"),
    (3, "U", "1.1.1.2.1.1.1"),
    (4, "V", "1.1.1.2.2.1.1"),
    (5, "F", "3.1"),
    (6, "R", "3.1.1.1.1"),
    (7, "U", "3.1.1.1.1.1"),
    (8, "V", "3.1.1.2.1.1"),
    (9, "T", "3.1.2.1.1.1"),
    (10, "L", "3.1.2.2"),
]


class TestTable1Dewey:
    def test_individual_address_sets(self, figure3_dewey):
        expected = {
            "I": ["1.1.1.1"],
            "R": ["1.1.1.2.1.1", "3.1.1.1.1"],
            "U": ["1.1.1.2.1.1.1", "3.1.1.1.1.1"],
            "V": ["1.1.1.2.2.1.1", "3.1.1.2.1.1"],
            "F": ["3.1"],
            "T": ["3.1.2.1.1.1"],
            "L": ["3.1.2.2"],
        }
        for concept, addresses in expected.items():
            got = figure3_dewey.addresses(concept)
            assert got == tuple(parse_dewey(a) for a in addresses)

    def test_merged_processing_order(self, figure3_dewey):
        merged = DRadixDAG.merged_address_list(
            figure3_dewey, EXAMPLE_DOCUMENT, EXAMPLE_QUERY)
        expected = [
            (parse_dewey(address), concept)
            for _step, concept, address in TABLE1_STEPS
        ]
        assert merged == expected


class TestSection32Distances:
    def test_distance_g_f_goes_through_common_ancestor(self, figure3):
        # "the shortest path distance D(G, F) is not 2 but 5 because it
        # has to pass through one of their common ancestors, A."
        assert concept_distance(figure3, "G", "F") == 5

    def test_example1_component_distances(self, figure3):
        # Ddq(d, q) = Ddc(d, I) + Ddc(d, L) + Ddc(d, U) = 4 + 2 + 1
        doc = EXAMPLE_DOCUMENT
        assert min(concept_distance(figure3, c, "I") for c in doc) == 4
        assert min(concept_distance(figure3, c, "L") for c in doc) == 2
        assert min(concept_distance(figure3, c, "U") for c in doc) == 1
        assert document_query_distance(figure3, doc, EXAMPLE_QUERY) == 7


class TestFigure4Radix:
    def test_document_radix_shape(self, figure3, figure3_dewey):
        # Indexing d = {F, R, T, V}: nodes B, E, G, J merge into a single
        # node (J) reached by the edge labelled 1.1.1.2.
        pairs = figure3_dewey.sorted_address_list(EXAMPLE_DOCUMENT)
        dag = RadixDAG.from_addresses(figure3, pairs)
        assert {node.concept_id for node in dag.nodes()} == {
            "A", "J", "R", "V", "F", "T",
        }
        assert dag.edges() == {
            ("A", "1.1.1.2", "J"),
            ("J", "1.1", "R"),
            ("J", "2.1.1", "V"),
            ("A", "3.1", "F"),
            ("F", "1", "J"),
            ("F", "2.1.1.1", "T"),
        }


class TestExample2DRadixConstruction:
    """The ten insertion steps of Example 2, checked against Figure 5."""

    @pytest.fixture()
    def snapshots(self, figure3, figure3_dewey):
        dradix = DRadixDAG(figure3, set(EXAMPLE_DOCUMENT), set(EXAMPLE_QUERY))
        merged = DRadixDAG.merged_address_list(
            figure3_dewey, EXAMPLE_DOCUMENT, EXAMPLE_QUERY)
        result = []
        for address, concept in merged:
            dradix.insert(address, concept)
            result.append(dradix.dag.edges())
        return dradix, result

    def test_step2_figure5a(self, snapshots):
        _dradix, steps = snapshots
        assert steps[1] == {
            ("A", "1.1.1", "G"),
            ("G", "1", "I"),
            ("G", "2.1.1", "R"),
        }

    def test_step4_figure5b(self, snapshots):
        _dradix, steps = snapshots
        assert steps[3] == {
            ("A", "1.1.1", "G"),
            ("G", "1", "I"),
            ("G", "2", "J"),
            ("J", "1.1", "R"),
            ("J", "2.1.1", "V"),
            ("R", "1", "U"),
        }

    def test_step6_figure5c_adds_edge_f_to_r(self, snapshots):
        _dradix, steps = snapshots
        assert ("F", "1.1.1", "R") in steps[5]

    def test_step7_fully_matched_makes_no_change(self, snapshots):
        _dradix, steps = snapshots
        assert steps[6] == steps[5]

    def test_step8_figure5d_reroutes_through_existing_j(self, snapshots):
        _dradix, steps = snapshots
        assert ("F", "1", "J") in steps[7]
        assert ("F", "1.1.1", "R") not in steps[7]
        # No duplicate edges were created below J.
        assert steps[7] == steps[6] - {("F", "1.1.1", "R")} | {("F", "1", "J")}

    def test_step10_figure5e_final_shape(self, snapshots):
        _dradix, steps = snapshots
        assert steps[9] == {
            ("A", "1.1.1", "G"),
            ("G", "1", "I"),
            ("G", "2", "J"),
            ("J", "1.1", "R"),
            ("J", "2.1.1", "V"),
            ("R", "1", "U"),
            ("A", "3.1", "F"),
            ("F", "1", "J"),
            ("F", "2", "H"),
            ("H", "1.1.1", "T"),
            ("H", "2", "L"),
        }

    def test_figure5f_bottom_up_annotations(self, figure3, figure3_dewey):
        # After the bottom-up sweep only, every node knows the nearest
        # document/query concept *below* it — Figure 5(f).
        from repro.types import INFINITY

        dradix = DRadixDAG(figure3, set(EXAMPLE_DOCUMENT),
                           set(EXAMPLE_QUERY))
        for address, concept in DRadixDAG.merged_address_list(
                figure3_dewey, EXAMPLE_DOCUMENT, EXAMPLE_QUERY):
            dradix.insert(address, concept)
        dradix.sweep_bottom_up()
        annotations = {
            node.concept_id: tuple(node.dist)
            for node in dradix.dag.nodes()
        }
        assert annotations == {
            "A": (2, 4),
            "G": (3, 1),
            "I": (INFINITY, 0),
            "J": (2, 3),
            "R": (0, 1),
            "U": (INFINITY, 0),
            "V": (0, INFINITY),
            "F": (0, 2),
            "H": (3, 1),
            "T": (0, INFINITY),
            "L": (INFINITY, 0),
        }

    def test_figure5g_tuned_annotations(self, snapshots):
        dradix, _steps = snapshots
        dradix.tune()
        # (nearest document distance, nearest query distance) per node.
        assert dradix.distance_annotations() == {
            "A": (2, 4),
            "G": (3, 1),
            "I": (4, 0),
            "J": (1, 2),  # F, a document concept, is J's direct parent
            "R": (0, 1),
            "U": (1, 0),
            "V": (0, 5),
            "F": (0, 2),
            "H": (1, 1),
            "T": (0, 4),
            "L": (2, 0),
        }

    def test_rds_and_sds_distances_from_the_index(self, snapshots):
        dradix, _steps = snapshots
        dradix.tune()
        # Ddq(d, q) = 4 + 2 + 1 = 7 (Example 1 continued in Section 4.2).
        assert dradix.document_query_distance() == 7
        # Ddd sums the mirrored annotations with the Eq. 3 normalization.
        expected = (2 + 1 + 4 + 5) / 4 + (4 + 2 + 1) / 3
        assert dradix.document_document_distance() == pytest.approx(expected)


class TestExample3BreadthFirst:
    def test_second_iteration_examines_the_published_nodes(self, figure3):
        # From q = {I, L, U}: level-1 nodes are G, M, N (from I), H (from
        # L) and R (from U); only R belongs to d = {F, R, T, V}.
        level1: set[str] = set()
        for origin in EXAMPLE_QUERY:
            bfs = ValidPathBFS(figure3, origin)
            next(bfs)
            _level, nodes = next(bfs)
            level1.update(nodes)
        assert level1 == {"G", "M", "N", "R", "H"}
        assert level1 & set(EXAMPLE_DOCUMENT) == {"R"}


class TestTable2KNDSTrace:
    """The complete Table 2 run: q = {F, I}, k = 2, εθ = 1."""

    # Settings that mirror the paper's run: analysis examines at most k
    # documents per round (the trace analyzes d1, d2 in round 0 and d3, d6
    # in round 1) and optimization-1 pruning is off so d4 stays in Ld.
    CONFIG = KNDSConfig(
        error_threshold=1.0,
        analyze_budget_per_round=2,
        prune_on_update=False,
        prune_at_pop=False,
    )

    @pytest.fixture()
    def trace(self, figure3, example4):
        events = []
        searcher = KNDSearch(figure3, example4)
        results = searcher.rds(["F", "I"], k=2, config=self.CONFIG,
                               observer=events.append)
        return results, events

    def test_final_results(self, trace):
        results, _events = trace
        assert [(r.doc_id, r.distance) for r in results.results] == [
            ("d2", 2.0), ("d3", 2.0),
        ]

    def test_row2_iteration0_expansion(self, trace):
        _results, events = trace
        expanded0 = [e for e in events if e["phase"] == "expanded"][0]
        assert expanded0["frontier"] == {
            ("F", "D"), ("F", "H"), ("F", "J"),
            ("I", "G"), ("I", "M"), ("I", "N"),
        }
        assert expanded0["candidates"] == {"d1": 1, "d2": 1, "d3": 1}

    def test_row3_after_iteration0(self, trace):
        _results, events = trace
        round0 = [e for e in events if e["phase"] == "round"][0]
        assert round0["examined"] == {"d1", "d2"}
        assert round0["candidates"] == {"d3": 1}
        assert round0["top"] == {"d1": 4.0, "d2": 2.0}
        assert round0["global_lower"] == 1  # D− from d3's bound
        assert round0["kth_distance"] == 4.0  # Dk+

    def test_row4_iteration1_expansion(self, trace):
        _results, events = trace
        expanded1 = [e for e in events if e["phase"] == "expanded"][1]
        assert expanded1["frontier"] == {
            ("F", "A"), ("F", "K"), ("F", "L"), ("F", "O"), ("F", "P"),
            ("I", "E"), ("I", "J"),
        }
        assert expanded1["candidates"] == {"d3": 2, "d6": 2, "d4": 3}

    def test_end_row(self, trace):
        _results, events = trace
        end = [e for e in events if e["phase"] == "round"][1]
        assert end["examined"] == {"d1", "d2", "d3", "d6"}
        assert end["candidates"] == {"d4": 3}
        assert end["top"] == {"d2": 2.0, "d3": 2.0}
        assert end["global_lower"] == 3  # D−
        assert end["kth_distance"] == 2.0  # Dk+ => termination
        # d5 (containing only the far-away concept C) was never touched.
        assert len([e for e in events if e["phase"] == "round"]) == 2


class TestExample4Semantics:
    def test_actual_distances_match_the_trace(self, figure3):
        drc = DRC(figure3)
        collection = example4_collection()
        query = ("F", "I")
        expected = {"d1": 4, "d2": 2, "d3": 2}
        for doc_id, distance in expected.items():
            doc = collection.get(doc_id)
            assert drc.document_query_distance(doc.concepts, query) == distance

    def test_default_configuration_agrees_with_the_trace_run(
            self, figure3, example4):
        searcher = KNDSearch(figure3, example4)
        results = searcher.rds(["F", "I"], k=2)
        assert sorted(r.distance for r in results.results) == [2.0, 2.0]
        assert sorted(r.doc_id for r in results.results) == ["d2", "d3"]


class TestSymmetry:
    def test_ddd_is_symmetric_on_the_running_example(self, figure3):
        forward = document_document_distance(
            figure3, EXAMPLE_DOCUMENT, EXAMPLE_QUERY)
        backward = document_document_distance(
            figure3, EXAMPLE_QUERY, EXAMPLE_DOCUMENT)
        assert forward == pytest.approx(backward)
