"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.corpus.io import load_jsonl


@pytest.fixture()
def ontology_prefix(tmp_path):
    prefix = str(tmp_path / "onto")
    code = main(["generate-ontology", "--concepts", "300", "--seed", "3",
                 "--out", prefix])
    assert code == 0
    return prefix


@pytest.fixture()
def corpus_path(tmp_path, ontology_prefix):
    path = str(tmp_path / "corpus.jsonl")
    code = main(["generate-corpus", "--ontology", ontology_prefix,
                 "--profile", "radio", "--docs", "40", "--out", path])
    assert code == 0
    return path


class TestGenerate:
    def test_generate_ontology_writes_csv_pair(self, tmp_path, capsys):
        prefix = str(tmp_path / "fresh")
        assert main(["generate-ontology", "--concepts", "120",
                     "--out", prefix]) == 0
        captured = capsys.readouterr()
        assert "120 concepts" in captured.out
        from repro.ontology.io.csvio import load_csv
        ontology = load_csv(f"{prefix}.concepts.csv", f"{prefix}.edges.csv")
        assert len(ontology) == 120

    def test_generate_corpus_writes_jsonl(self, corpus_path):
        collection = load_jsonl(corpus_path)
        assert len(collection) == 40

    def test_patient_profile(self, tmp_path, ontology_prefix):
        path = str(tmp_path / "patient.jsonl")
        code = main(["generate-corpus", "--ontology", ontology_prefix,
                     "--profile", "patient", "--docs", "10",
                     "--mean-concepts", "20", "--out", path])
        assert code == 0
        collection = load_jsonl(path)
        assert collection.stats().avg_concepts_per_document > 10


class TestStats:
    def test_ontology_and_corpus_stats(self, ontology_prefix, corpus_path,
                                       capsys):
        code = main(["stats", "--ontology", ontology_prefix,
                     "--corpus", corpus_path])
        assert code == 0
        output = capsys.readouterr().out
        assert "Total Concepts" in output
        assert "Avg. Concepts/Document" in output


class TestSearch:
    def test_rds(self, ontology_prefix, corpus_path, capsys):
        collection = load_jsonl(corpus_path)
        document = next(iter(collection))
        query = ",".join(document.concepts[:2])
        code = main(["search", "--ontology", ontology_prefix,
                     "--corpus", corpus_path, "-k", "3",
                     "rds", "--query", query])
        assert code == 0
        output = capsys.readouterr().out
        assert "distance=" in output
        assert "DRC" in output

    def test_sds(self, ontology_prefix, corpus_path, capsys):
        collection = load_jsonl(corpus_path)
        doc_id = next(iter(collection)).doc_id
        code = main(["search", "--ontology", ontology_prefix,
                     "--corpus", corpus_path, "-k", "3",
                     "sds", "--doc-id", doc_id])
        assert code == 0
        first_line = capsys.readouterr().out.splitlines()[0]
        assert doc_id in first_line  # the query doc itself at distance 0

    def test_error_threshold_flag(self, ontology_prefix, corpus_path,
                                  capsys):
        collection = load_jsonl(corpus_path)
        query = ",".join(next(iter(collection)).concepts[:2])
        code = main(["search", "--ontology", ontology_prefix,
                     "--corpus", corpus_path, "--error-threshold", "0.0",
                     "rds", "--query", query])
        assert code == 0

    def test_unknown_concept_reports_error(self, ontology_prefix,
                                           corpus_path, capsys):
        code = main(["search", "--ontology", ontology_prefix,
                     "--corpus", corpus_path,
                     "rds", "--query", "NOPE"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestExtract:
    def test_extract_from_text(self, ontology_prefix, capsys):
        # Use a label straight out of the generated ontology.
        from repro.ontology.io.csvio import load_csv
        ontology = load_csv(f"{ontology_prefix}.concepts.csv",
                            f"{ontology_prefix}.edges.csv")
        concept = next(iter(ontology.children(ontology.root)))
        label = ontology.label(concept)
        code = main(["extract", "--ontology", ontology_prefix,
                     "--text", f"patient presents with {label} today"])
        assert code == 0
        output = capsys.readouterr().out
        assert concept in output
        assert "[POS]" in output

    def test_extract_negated(self, ontology_prefix, capsys):
        from repro.ontology.io.csvio import load_csv
        ontology = load_csv(f"{ontology_prefix}.concepts.csv",
                            f"{ontology_prefix}.edges.csv")
        concept = next(iter(ontology.children(ontology.root)))
        label = ontology.label(concept)
        code = main(["extract", "--ontology", ontology_prefix,
                     "--text", f"no evidence of {label}"])
        assert code == 0
        output = capsys.readouterr().out
        assert "[NEG]" in output
        assert "positive concept set: -" in output


class TestExtractSections:
    def test_sections_flag(self, ontology_prefix, capsys):
        from repro.ontology.io.csvio import load_csv
        ontology = load_csv(f"{ontology_prefix}.concepts.csv",
                            f"{ontology_prefix}.edges.csv")
        concept = next(iter(ontology.children(ontology.root)))
        label = ontology.label(concept)
        text = (f"ASSESSMENT: {label} confirmed\n"
                f"FAMILY HISTORY: mother with {label}\n")
        code = main(["extract", "--ontology", ontology_prefix,
                     "--sections", "--text", text])
        assert code == 0
        output = capsys.readouterr().out
        assert "[section excluded]" in output
        assert "in ASSESSMENT" in output
        # The concept still counts (positively) via the ASSESSMENT
        # mention despite the excluded FAMILY HISTORY one.
        assert concept in output.splitlines()[-1]


class TestBench:
    def test_bench_list_delegates_to_perf_runner(self, capsys):
        assert main(["bench", "--list"]) == 0
        output = capsys.readouterr().out
        assert "knds_rds_radio" in output
        assert "obs_overhead_full" in output

    def test_bench_writes_schema_versioned_artifact(self, tmp_path,
                                                    capsys):
        import json

        from repro.bench.experiments import SCALES, BenchScale, build_world
        from repro.bench.perf import SCHEMA_VERSION

        SCALES["tiny"] = BenchScale("tiny", 400, 12, 12, 40, 6, 2, 4)
        out = tmp_path / "BENCH_cli.json"
        try:
            code = main(["bench", "--scenarios", "drc_pairs",
                         "--scale", "tiny", "--repeat", "2",
                         "--warmup", "0", "--json-out", str(out)])
        finally:
            del SCALES["tiny"]
            build_world.cache_clear()
        assert code == 0
        artifact = json.loads(out.read_text(encoding="utf-8"))
        assert artifact["schema_version"] == SCHEMA_VERSION
        assert "drc_pairs" in artifact["scenarios"]
        assert out.with_suffix(".md").exists()
        assert "artifact written" in capsys.readouterr().out
