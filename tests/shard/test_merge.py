"""merge_ranked: the scatter-gather reduce step, edge cases included."""

from __future__ import annotations

import pytest

from repro.core.results import (QueryStats, RankedResults, ResultItem,
                                merge_ranked)
from repro.exceptions import InvariantError


def _part(*pairs, drc_calls=0):
    return RankedResults(
        results=[ResultItem(doc_id, distance) for doc_id, distance in pairs],
        stats=QueryStats(drc_calls=drc_calls),
        algorithm="knds", query_kind="rds", k=len(pairs))


class TestMerge:
    def test_global_order_by_distance_then_doc_id(self):
        merged = merge_ranked([
            _part(("b", 2.0), ("d", 5.0)),
            _part(("a", 1.0), ("c", 2.0)),
        ], k=3)
        assert [tuple(item) for item in merged.results] \
            == [("a", 1.0), ("b", 2.0), ("c", 2.0)]
        assert merged.k == 3
        assert merged.algorithm == "knds"
        assert merged.query_kind == "rds"

    def test_duplicate_distances_break_ties_by_doc_id(self):
        # The canonical tie-break must be identical to the single
        # engine's stable_ties order, whichever shard a doc lives on.
        merged = merge_ranked([
            _part(("z", 1.0), ("m", 1.0)),
            _part(("a", 1.0), ("q", 1.0)),
        ], k=3)
        assert merged.doc_ids() == ["a", "m", "q"]

    def test_empty_shard_contributes_nothing(self):
        merged = merge_ranked([
            _part(("a", 1.0)),
            _part(),  # a shard that owns no documents
        ], k=2)
        assert merged.doc_ids() == ["a"]

    def test_shard_smaller_than_k(self):
        merged = merge_ranked([
            _part(("a", 1.0)),
            _part(("b", 2.0), ("c", 3.0)),
        ], k=10)
        assert merged.doc_ids() == ["a", "b", "c"]

    def test_stats_summed_across_shards(self):
        merged = merge_ranked([
            _part(("a", 1.0), drc_calls=3),
            _part(("b", 2.0), drc_calls=4),
        ], k=2)
        assert merged.stats.drc_calls == 7

    def test_no_partitions_is_invariant_error(self):
        with pytest.raises(InvariantError, match="at least one partition"):
            merge_ranked([], k=5)
