"""ShardPlanner: determinism, stability contract, balance, errors."""

from __future__ import annotations

import zlib

import pytest

from repro.corpus.document import Document
from repro.exceptions import InvariantError, QueryError
from repro.shard.planner import POLICIES, ShardPlanner


def _docs(*doc_ids):
    return [Document(doc_id, ("A",)) for doc_id in doc_ids]


class TestConstruction:
    def test_rejects_zero_shards(self):
        with pytest.raises(QueryError, match="shards must be >= 1"):
            ShardPlanner(0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(QueryError, match="unknown shard policy"):
            ShardPlanner(2, policy="range")

    def test_policies_tuple_matches_serve_config_literal(self):
        # serve/config.py validates against a literal copy to avoid
        # importing the process-spawning package; keep them in lockstep.
        assert POLICIES == ("hash", "round_robin")


class TestHashPolicy:
    def test_assignment_is_pure_function_of_doc_id(self):
        documents = _docs("a", "b", "c", "d", "e")
        first = ShardPlanner(3).plan(documents)
        second = ShardPlanner(3).plan(list(reversed(documents)))
        as_sets = lambda parts: [  # noqa: E731 - tiny local helper
            {doc.doc_id for doc in part} for part in parts]
        assert as_sets(first) == as_sets(second)
        planner = ShardPlanner(3)
        for doc_id in "abcde":
            assert planner.assign(doc_id) \
                == zlib.crc32(doc_id.encode()) % 3

    def test_other_documents_never_move_a_document(self):
        small = ShardPlanner(4)
        small.plan(_docs("x", "y"))
        large = ShardPlanner(4)
        large.plan(_docs("x", "y", "p", "q", "r", "s"))
        assert small.shard_of("x") == large.shard_of("x")
        assert small.shard_of("y") == large.shard_of("y")


class TestRoundRobinPolicy:
    def test_balanced_within_one(self):
        planner = ShardPlanner(3, policy="round_robin")
        planner.plan(_docs(*"abcdefghij"))
        counts = planner.counts()
        assert sum(counts) == 10
        assert max(counts) - min(counts) <= 1

    def test_deals_in_sorted_doc_id_order(self):
        planner = ShardPlanner(2, policy="round_robin")
        planner.plan(_docs("d3", "d1", "d2", "d4"))
        # sorted: d1 d2 d3 d4 -> shards 0 1 0 1
        assert planner.shard_of("d1") == 0
        assert planner.shard_of("d2") == 1
        assert planner.shard_of("d3") == 0
        assert planner.shard_of("d4") == 1

    def test_late_assign_goes_to_smallest_shard(self):
        planner = ShardPlanner(2, policy="round_robin")
        planner.plan(_docs("a", "b", "c"))  # counts [2, 1]
        assert planner.assign("z") == 1
        # Tie now; lowest index wins.
        assert planner.assign("zz") == 0


class TestBookkeeping:
    def test_members_preserves_iteration_order(self):
        planner = ShardPlanner(2, policy="round_robin")
        documents = _docs("b", "a", "d", "c")
        planner.plan(documents)
        # Dealt in sorted order (a b c d -> 0 1 0 1), shard 0 owns
        # {a, c}; members() reports them in the *iteration* order of
        # the documents argument, which respawn rebuilds rely on.
        members = planner.members(0, documents)
        assert [doc.doc_id for doc in members] == ["a", "c"]
        with pytest.raises(InvariantError, match="out of range"):
            planner.members(2, documents)

    def test_release_and_reassign(self):
        planner = ShardPlanner(2)
        planner.plan(_docs("a", "b"))
        owner = planner.shard_of("a")
        assert planner.release("a") == owner
        with pytest.raises(InvariantError, match="no shard assignment"):
            planner.shard_of("a")
        assert planner.assign("a") == owner  # hash: same shard again

    def test_double_assign_is_invariant_error(self):
        planner = ShardPlanner(2)
        planner.plan(_docs("a"))
        with pytest.raises(InvariantError, match="already assigned"):
            planner.assign("a")
