"""ShardedEngine: bit-identical answers, mutations, crash recovery.

The acceptance bar from the sharding milestone: a 4-shard engine must
return *bit-identical* RankedResults (ids, distances, order) to the
single-process engine, for RDS and SDS, across a randomized workload —
and killing a worker mid-run must heal via respawn-and-retry without a
wrong answer.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.bench.workloads import (random_concept_queries,
                                   random_query_documents)
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.core.engine import SearchEngine
from repro.datasets import example4_collection, figure3_ontology
from repro.exceptions import (QueryError, ShardUnavailableError,
                              UnknownConceptError, UnknownDocumentError)
from repro.shard import ShardedEngine


def assert_identical(left, right):
    """Bit-identical RankedResults: ids, distances, and order."""
    assert [(item.doc_id, item.distance) for item in left.results] \
        == [(item.doc_id, item.distance) for item in right.results]


class TestEquivalence:
    """Randomized single-vs-sharded parity on the 80-doc corpus."""

    def test_rds_bit_identical(self, engine_pair, small_corpus):
        single, sharded = engine_pair
        queries = random_concept_queries(small_corpus, nq=4, count=15,
                                         seed=31)
        for query in queries:
            assert_identical(single.rds(list(query), k=10),
                             sharded.rds(list(query), k=10))

    def test_sds_bit_identical(self, engine_pair, small_corpus):
        single, sharded = engine_pair
        for document in random_query_documents(small_corpus, nq=6,
                                               count=10, seed=32):
            assert_identical(single.sds(document, k=10),
                             sharded.sds(document, k=10))

    def test_sds_by_doc_id_resolves_at_coordinator(self, engine_pair,
                                                   small_corpus):
        # The query document may live on any shard; the coordinator
        # resolves it to concepts before fanning out.
        single, sharded = engine_pair
        for document in list(small_corpus)[:5]:
            assert_identical(single.sds(document.doc_id, k=5),
                             sharded.sds(document.doc_id, k=5))

    def test_fullscan_algorithm_bit_identical(self, engine_pair,
                                              small_corpus):
        single, sharded = engine_pair
        queries = random_concept_queries(small_corpus, nq=4, count=5,
                                         seed=33)
        for query in queries:
            assert_identical(
                single.rds(list(query), k=10, algorithm="fullscan"),
                sharded.rds(list(query), k=10, algorithm="fullscan"))

    def test_batch_queries_bit_identical(self, engine_pair, small_corpus):
        single, sharded = engine_pair
        queries = [list(query) for query in random_concept_queries(
            small_corpus, nq=4, count=6, seed=34)]
        for one, many in zip(single.rds_many(queries, k=8),
                             sharded.rds_many(queries, k=8)):
            assert_identical(one, many)
        documents = random_query_documents(small_corpus, nq=6, count=4,
                                           seed=35)
        for one, many in zip(single.sds_many(documents, k=8),
                             sharded.sds_many(documents, k=8)):
            assert_identical(one, many)

    def test_k_larger_than_any_partition(self, engine_pair, small_corpus):
        # 80 docs over 4 shards: k=40 forces every shard to return its
        # whole partition (each holds ~20) and the merge to interleave.
        single, sharded = engine_pair
        query = list(random_concept_queries(small_corpus, nq=3, count=1,
                                            seed=36)[0])
        assert_identical(single.rds(query, k=40), sharded.rds(query, k=40))

    def test_validation_errors_propagate(self, engine_pair):
        _, sharded = engine_pair
        with pytest.raises(UnknownConceptError):
            sharded.rds(["no-such-concept"], k=3)
        with pytest.raises(QueryError):
            sharded.rds([], k=3)
        with pytest.raises(UnknownDocumentError):
            sharded.sds("no-such-doc", k=3)


class TestSmallWorlds:
    """Paper-example corpus: shards smaller than k, empty shards."""

    def test_more_shards_than_documents_leaves_shards_empty(self):
        # Two documents over four round-robin shards: two shards own
        # nothing and must still answer (with empty contributions).
        ontology = figure3_ontology()
        documents = [Document("d1", ("F", "I")), Document("d2", ("B",))]
        single = SearchEngine(
            ontology, DocumentCollection(documents, name="tiny"))
        sharded = ShardedEngine(
            ontology, DocumentCollection(documents, name="tiny"),
            shards=4, policy="round_robin")
        try:
            assert 0 in sharded._planner.counts()
            assert_identical(single.rds(["F", "I"], k=5),
                             sharded.rds(["F", "I"], k=5))
        finally:
            sharded.close()
            single.close()

    def test_figure3_corpus_parity(self):
        ontology = figure3_ontology()
        single = SearchEngine(ontology, example4_collection())
        sharded = ShardedEngine(ontology, example4_collection(), shards=3)
        try:
            assert_identical(single.rds(["F", "I"], k=4),
                             sharded.rds(["F", "I"], k=4))
            assert_identical(single.sds("d2", k=6),
                             sharded.sds("d2", k=6))
        finally:
            sharded.close()
            single.close()


class TestMutations:
    @pytest.fixture()
    def sharded(self, figure3):
        engine = ShardedEngine(figure3, example4_collection(), shards=2)
        yield engine
        engine.close()

    def test_add_routes_to_owner_and_bumps_epoch(self, figure3, sharded):
        assert sharded.epoch == 0
        sharded.add_document(Document("zz_new", ("F", "I")))
        assert sharded.epoch == 1
        owner = sharded._planner.shard_of("zz_new")
        assert sharded.shard_health()[owner]["documents"] \
            == sum(1 for doc in sharded.collection
                   if sharded._planner.shard_of(doc.doc_id) == owner)
        # The new document is immediately queryable and ranks first.
        assert sharded.rds(["F", "I"], k=1).doc_ids() == ["zz_new"]

    def test_remove_returns_document_and_bumps_epoch(self, sharded):
        removed = sharded.remove_document("d2")
        assert removed.doc_id == "d2"
        assert sharded.epoch == 1
        assert "d2" not in sharded.rds(["F", "I"], k=10).doc_ids()
        with pytest.raises(UnknownDocumentError):
            sharded.remove_document("d2")

    def test_mutated_sharded_matches_mutated_single(self, figure3):
        single = SearchEngine(figure3, example4_collection())
        sharded = ShardedEngine(figure3, example4_collection(), shards=2)
        try:
            for engine in (single, sharded):
                engine.add_document(Document("extra", ("J", "K")))
                engine.remove_document("d5")
            assert_identical(single.rds(["F", "I"], k=10),
                             sharded.rds(["F", "I"], k=10))
        finally:
            sharded.close()
            single.close()


class TestFailureRecovery:
    def test_killed_worker_respawns_and_answers(self, figure3):
        sharded = ShardedEngine(figure3, example4_collection(), shards=2)
        try:
            expected = sharded.rds(["F", "I"], k=4)
            victim = sharded.shard_health()[0]
            os.kill(victim["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while sharded.shard_health()[0]["alive"]:
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("worker did not die")
                time.sleep(0.05)
            # The next query transparently respawns shard 0 and retries.
            assert_identical(sharded.rds(["F", "I"], k=4), expected)
            health = sharded.shard_health()
            assert health[0]["restarts"] == 1
            assert health[1]["restarts"] == 0
            assert all(worker["alive"] for worker in health)
        finally:
            sharded.close()

    def test_closed_engine_refuses_queries(self, figure3):
        sharded = ShardedEngine(figure3, example4_collection(), shards=2)
        sharded.close()
        with pytest.raises(ShardUnavailableError):
            sharded.rds(["F", "I"], k=2)


class TestObservability:
    def test_fanout_and_merge_counters(self, figure3):
        from repro.obs import Observability
        from repro.obs.metrics import MetricsRegistry

        obs = Observability(metrics=MetricsRegistry())
        sharded = ShardedEngine(figure3, example4_collection(), shards=2,
                                obs=obs)
        try:
            sharded.rds(["F", "I"], k=2)
            snapshot = obs.metrics.snapshot()
            assert snapshot["shard.fanout"]["value"] == 2.0
            kept = snapshot["shard.merge_kept"]["value"]
            dropped = snapshot["shard.merge_dropped"]["value"]
            assert kept == 2.0  # k=2 results survive the merge
            assert kept + dropped >= 2.0
            assert snapshot["shard.latency_seconds"]["count"] == 2
        finally:
            sharded.close()
