"""The serve stack running unchanged on top of a ShardedEngine.

Cache, admission, deadlines and the HTTP layer only see the duck-typed
engine surface, so everything — including epoch-keyed cache
invalidation and ``/healthz`` — must behave exactly as with one
in-process engine, plus shard health aggregation.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import time

import pytest

from repro.corpus.document import Document
from repro.datasets import example4_collection
from repro.serve import QueryService, ServeConfig, ServerHandle
from repro.shard import ShardedEngine


@pytest.fixture()
def sharded(figure3):
    engine = ShardedEngine(figure3, example4_collection(), shards=2)
    yield engine
    engine.close()


@pytest.fixture()
def service(sharded):
    service = QueryService(sharded,
                           ServeConfig(workers=2, queue_limit=8))
    yield service
    service.close(drain_seconds=0.0)


@pytest.fixture()
def server(service):
    handle = ServerHandle.start(service, port=0)
    yield handle
    handle.stop()


def request(server, method, path, payload=None, timeout=10.0):
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        parsed = json.loads(raw) if raw.startswith(b"{") else raw
        return response.status, parsed
    finally:
        connection.close()


class TestServiceOnShards:
    def test_queries_cache_and_batches(self, service):
        first = service.rds(["F", "I"], k=2)
        assert not first.cached
        assert service.rds(["I", "F"], k=2).cached
        batch = service.sds_many(["d2", ["F", "I"]], k=3)
        assert [result.results.doc_ids() for result in batch] \
            == [service.sds("d2", k=3).results.doc_ids(),
                service.sds(["F", "I"], k=3).results.doc_ids()]

    def test_mutation_epoch_invalidates_cache(self, service, sharded):
        stale = service.rds(["F", "I"], k=1)
        assert service.rds(["F", "I"], k=1).cached
        sharded.add_document(Document("aa_first", ("F", "I")))
        fresh = service.rds(["F", "I"], k=1)
        assert not fresh.cached  # epoch bump evicted the entry
        assert fresh.results.doc_ids() == ["aa_first"]
        assert stale.results.doc_ids() != fresh.results.doc_ids()

    def test_explain_runs_at_the_coordinator(self, service):
        text = service.explain("d2", ["F", "I"])
        assert "total distance" in text


class TestHttpOnShards:
    def test_search_parity_with_direct_engine(self, server, sharded):
        status, body = request(server, "POST", "/search/rds",
                               {"concepts": ["F", "I"], "k": 3})
        assert status == 200
        assert [item["doc_id"] for item in body["results"]] \
            == sharded.rds(["F", "I"], k=3).doc_ids()

    def test_healthz_aggregates_shards(self, server):
        status, body = request(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["documents"] == 6
        shards = body["shards"]
        assert shards["count"] == 2
        assert shards["alive"] == 2
        assert shards["respawns"] == 0
        assert [worker["shard"] for worker in shards["workers"]] == [0, 1]

    def test_shared_arena_gauge_counts_the_segment_once(self, figure3):
        # --shared-arena on: the gauge reports the segment's bytes at
        # the coordinator, while the per-process arena_bytes gauge stays
        # the coordinator's private arena — workers report 0 and are
        # not summed, so the segment is counted once per host.
        sharded = ShardedEngine(figure3, example4_collection(), shards=2,
                                shared_arena=True)
        service = QueryService(sharded,
                               ServeConfig(workers=2, queue_limit=8,
                                           shared_arena=True, shards=2))
        handle = ServerHandle.start(service, port=0)
        try:
            status, body = request(handle, "GET", "/debug/vars")
            assert status == 200
            resources = body["resources"]
            assert resources["resource.arena_shared_bytes"] \
                == sharded.shared_arena_bytes() > 0
            arena = body["arena"]
            assert arena["shared_bytes"] == sharded.shared_arena_bytes()
        finally:
            handle.stop()
            service.close(drain_seconds=0.0)
            sharded.close()

    def test_healthz_degrades_then_heals(self, server, sharded):
        victim = sharded.shard_health()[1]
        os.kill(victim["pid"], signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while sharded.shard_health()[1]["alive"]:
            if time.monotonic() > deadline:  # pragma: no cover
                pytest.fail("worker did not die")
            time.sleep(0.05)
        status, body = request(server, "GET", "/healthz")
        assert status == 200  # degraded, not down: next query respawns
        assert body["status"] == "degraded"
        assert body["shards"]["alive"] == 1
        # A query through the full HTTP stack triggers the respawn...
        status, _ = request(server, "POST", "/search/rds",
                            {"concepts": ["F", "I"], "k": 2})
        assert status == 200
        # ...after which health is green again with one recorded respawn.
        status, body = request(server, "GET", "/healthz")
        assert body["status"] == "ok"
        assert body["shards"]["alive"] == 2
        assert body["shards"]["respawns"] == 1
