"""Framed transport: round-trips, clean EOF, torn frames, bounds."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.exceptions import ShardProtocolError
from repro.shard.protocol import MAX_FRAME_BYTES, recv_frame, send_frame


@pytest.fixture()
def link():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestRoundTrip:
    def test_python_objects_survive(self, link):
        left, right = link
        message = ("req", 7, "rds", {"concepts": ["F", "I"], "k": 2})
        send_frame(left, message)
        assert recv_frame(right) == message

    def test_exception_instances_survive(self, link):
        left, right = link
        send_frame(left, ("err", 1, ValueError("boom")))
        kind, msg_id, error = recv_frame(right)
        assert (kind, msg_id) == ("err", 1)
        assert isinstance(error, ValueError)
        assert str(error) == "boom"

    def test_many_frames_in_sequence(self, link):
        left, right = link
        for index in range(50):
            send_frame(left, index)
        assert [recv_frame(right) for _ in range(50)] == list(range(50))

    def test_large_frame_crosses_recv_chunks(self, link):
        left, right = link
        blob = b"x" * (1 << 20)
        writer = threading.Thread(target=send_frame, args=(left, blob))
        writer.start()
        try:
            assert recv_frame(right) == blob
        finally:
            writer.join()


class TestFailureModes:
    def test_clean_eof_at_frame_boundary_is_eoferror(self, link):
        left, right = link
        send_frame(left, "last")
        left.close()
        assert recv_frame(right) == "last"
        with pytest.raises(EOFError):
            recv_frame(right)

    def test_eof_inside_header_is_torn_frame(self, link):
        left, right = link
        left.sendall(b"\x00\x00")  # half a length prefix
        left.close()
        with pytest.raises(ShardProtocolError, match="mid-frame"):
            recv_frame(right)

    def test_eof_inside_payload_is_torn_frame(self, link):
        left, right = link
        left.sendall(struct.pack(">I", 100) + b"short")
        left.close()
        with pytest.raises(ShardProtocolError, match="mid-frame"):
            recv_frame(right)

    def test_implausible_header_rejected_before_allocation(self, link):
        left, right = link
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ShardProtocolError, match="corrupted stream"):
            recv_frame(right)

    def test_oversized_send_rejected_locally(self, link, monkeypatch):
        # Shrink the cap instead of pickling a quarter-gigabyte blob.
        monkeypatch.setattr("repro.shard.protocol.MAX_FRAME_BYTES", 64)
        left, _ = link
        with pytest.raises(ShardProtocolError, match="exceeds"):
            send_frame(left, b"x" * 128)
