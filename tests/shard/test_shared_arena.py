"""Sharded serving over the shared arena snapshot (``--shared-arena``).

The acceptance bar: a 2-shard engine whose workers attach the published
shared-memory snapshot must return *bit-identical* RankedResults to the
single-process engine, every worker must actually report attaching (not
silently fall back to re-packing), a SIGKILLed worker must re-attach on
respawn, and closing the coordinator must unlink the segment so late
attach attempts degrade to the private re-pack path.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.bench.workloads import (random_concept_queries,
                                   random_query_documents)
from repro.core.engine import SearchEngine
from repro.core.sharena import try_attach
from repro.exceptions import QueryError
from repro.shard import ShardedEngine


def assert_identical(left, right):
    """Bit-identical RankedResults: ids, distances, and order."""
    assert [(item.doc_id, item.distance) for item in left.results] \
        == [(item.doc_id, item.distance) for item in right.results]


@pytest.fixture(scope="module")
def shared_pair(small_ontology, small_corpus):
    """(single engine, 2-shard engine with the shared arena on)."""
    single = SearchEngine(small_ontology, small_corpus)
    sharded = ShardedEngine(small_ontology, small_corpus, shards=2,
                            shared_arena=True)
    yield single, sharded
    sharded.close()
    single.close()


class TestSharedArenaServing:
    def test_every_worker_attached_the_snapshot(self, shared_pair):
        _single, sharded = shared_pair
        assert sharded.shared_arena
        assert sharded.shared_arena_bytes() > 0
        for index in range(sharded.shards):
            health = sharded.worker_health(index)
            assert health["shared_arena"] is True

    def test_rds_bit_identical_to_single_engine(self, shared_pair,
                                                small_corpus):
        single, sharded = shared_pair
        queries = random_concept_queries(small_corpus, nq=4, count=12,
                                         seed=51)
        for query in queries:
            assert_identical(single.rds(list(query), k=10),
                             sharded.rds(list(query), k=10))

    def test_sds_bit_identical_to_single_engine(self, shared_pair,
                                                small_corpus):
        single, sharded = shared_pair
        for document in random_query_documents(small_corpus, nq=6,
                                               count=8, seed=52):
            assert_identical(single.sds(document, k=10),
                             sharded.sds(document, k=10))

    def test_killed_worker_reattaches_on_respawn(self, shared_pair,
                                                 small_corpus):
        single, sharded = shared_pair
        victim = sharded.shard_health()[0]
        os.kill(victim["pid"], signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while sharded.shard_health()[0]["alive"]:
            if time.monotonic() > deadline:  # pragma: no cover
                pytest.fail("worker did not die")
            time.sleep(0.01)
        # The respawned worker attaches the same segment: spec reuse.
        health = sharded.worker_health(0)
        assert health["shared_arena"] is True
        assert sharded.shard_health()[0]["restarts"] == 1
        query = list(next(iter(random_concept_queries(
            small_corpus, nq=4, count=1, seed=53))))
        assert_identical(single.rds(query, k=10),
                         sharded.rds(query, k=10))

    def test_worker_health_index_is_validated(self, shared_pair):
        _single, sharded = shared_pair
        with pytest.raises(QueryError, match="out of range"):
            sharded.worker_health(99)


class TestTeardown:
    def test_close_unlinks_the_segment(self, small_ontology, small_corpus):
        sharded = ShardedEngine(small_ontology, small_corpus, shards=2,
                                shared_arena=True)
        spec = sharded._segment.spec
        sharded.close()
        # Unlinked on drain: a late attacher gets the re-pack fallback.
        assert try_attach(spec, small_ontology) is None

    def test_shared_arena_off_by_default(self, small_ontology,
                                         small_corpus):
        sharded = ShardedEngine(small_ontology, small_corpus, shards=2)
        try:
            assert not sharded.shared_arena
            assert sharded.shared_arena_bytes() == 0
            assert sharded.worker_health(0)["shared_arena"] is False
        finally:
            sharded.close()
