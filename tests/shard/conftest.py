"""Shard-layer fixtures.

Worker processes are expensive to spawn (fresh interpreter + per-shard
index build), so the equivalence tests share one module-scoped engine
pair instead of booting four processes per test.
"""

from __future__ import annotations

import pytest

from repro.core.engine import SearchEngine
from repro.shard import ShardedEngine


@pytest.fixture(scope="module")
def engine_pair(small_ontology, small_corpus):
    """(single-process engine, 4-shard engine) over the same corpus."""
    single = SearchEngine(small_ontology, small_corpus)
    sharded = ShardedEngine(small_ontology, small_corpus, shards=4)
    yield single, sharded
    sharded.close()
    single.close()
