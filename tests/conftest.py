"""Shared fixtures: the paper's Figure 3 example and small random worlds."""

from __future__ import annotations

import pytest

from repro.corpus.generators import generate_corpus
from repro.datasets import example4_collection, figure3_ontology
from repro.ontology.dewey import DeweyIndex
from repro.ontology.generators import snomed_like


@pytest.fixture(scope="session")
def figure3():
    """The paper's Figure 3 ontology (22 concepts, J has two parents)."""
    return figure3_ontology()


@pytest.fixture(scope="session")
def figure3_dewey(figure3):
    return DeweyIndex(figure3)


@pytest.fixture()
def example4(figure3):
    """The six-document collection behind the Table 2 kNDS trace."""
    return example4_collection()


@pytest.fixture(scope="session")
def small_ontology():
    """A 400-concept SNOMED-like DAG for integration tests."""
    return snomed_like(400, seed=7)


@pytest.fixture(scope="session")
def small_corpus(small_ontology):
    """An 80-document corpus over :func:`small_ontology`."""
    return generate_corpus(
        small_ontology,
        num_docs=80,
        mean_concepts=12,
        cohesion=0.6,
        seed=11,
        name="small",
    )


@pytest.fixture()
def lock_sanitizer(monkeypatch):
    """Runtime lock sanitizer auto-attached to every lock-bearing object.

    Patches the lock-heavy classes so each instance constructed during
    the test gets its lock attributes wrapped in recording proxies
    (see :class:`repro.analysis.runtime.LockMonitor`).  Teardown fails
    the test on any observed lock-ordering violation, then restores
    every wrapped attribute and patched ``__init__``.
    """
    from repro.analysis.runtime import LockMonitor
    from repro.core.arena import ConceptDistanceCache, PackedDeweyArena
    from repro.core.engine import SearchEngine
    from repro.index.sqlite import SQLiteIndexStore
    from repro.obs.recorder import FlightRecorder
    from repro.obs.slo import SLOTracker
    from repro.obs.tracing import Tracer
    from repro.serve.admission import AdmissionController
    from repro.serve.cache import QueryCache

    monitor = LockMonitor()
    classes = (QueryCache, AdmissionController, ConceptDistanceCache,
               PackedDeweyArena, SearchEngine, SQLiteIndexStore,
               Tracer, FlightRecorder, SLOTracker)
    for cls in classes:
        original = cls.__init__

        def attached_init(self, *args, __original=original, **kwargs):
            __original(self, *args, **kwargs)
            monitor.attach(self)

        monkeypatch.setattr(cls, "__init__", attached_init)
    yield monitor
    try:
        monitor.assert_clean()
    finally:
        monitor.close()
