"""Shared fixtures: the paper's Figure 3 example and small random worlds."""

from __future__ import annotations

import pytest

from repro.corpus.generators import generate_corpus
from repro.datasets import example4_collection, figure3_ontology
from repro.ontology.dewey import DeweyIndex
from repro.ontology.generators import snomed_like


@pytest.fixture(scope="session")
def figure3():
    """The paper's Figure 3 ontology (22 concepts, J has two parents)."""
    return figure3_ontology()


@pytest.fixture(scope="session")
def figure3_dewey(figure3):
    return DeweyIndex(figure3)


@pytest.fixture()
def example4(figure3):
    """The six-document collection behind the Table 2 kNDS trace."""
    return example4_collection()


@pytest.fixture(scope="session")
def small_ontology():
    """A 400-concept SNOMED-like DAG for integration tests."""
    return snomed_like(400, seed=7)


@pytest.fixture(scope="session")
def small_corpus(small_ontology):
    """An 80-document corpus over :func:`small_ontology`."""
    return generate_corpus(
        small_ontology,
        num_docs=80,
        mean_concepts=12,
        cohesion=0.6,
        seed=11,
        name="small",
    )
