"""Unit tests for result and stats types."""

from __future__ import annotations

import pytest

from repro.core.results import QueryStats, RankedResults, ResultItem


class TestResultItem:
    def test_unpacking(self):
        doc, distance = ResultItem("d1", 2.5)
        assert doc == "d1"
        assert distance == 2.5


class TestRankedResults:
    def make(self) -> RankedResults:
        return RankedResults(
            [ResultItem("d1", 1.0), ResultItem("d2", 2.0)],
            algorithm="knds", query_kind="rds", k=2,
        )

    def test_accessors(self):
        results = self.make()
        assert results.doc_ids() == ["d1", "d2"]
        assert results.distances() == [1.0, 2.0]
        assert len(results) == 2
        assert [item.doc_id for item in results] == ["d1", "d2"]


class TestQueryStats:
    def test_merge_accumulates(self):
        first = QueryStats(total_seconds=1.0, drc_calls=2, bfs_levels=3)
        second = QueryStats(total_seconds=0.5, drc_calls=1, docs_examined=4)
        first.merge(second)
        assert first.total_seconds == pytest.approx(1.5)
        assert first.drc_calls == 3
        assert first.bfs_levels == 3
        assert first.docs_examined == 4

    def test_scaled_divides(self):
        stats = QueryStats(total_seconds=2.0, io_seconds=1.0, drc_calls=10,
                           docs_examined=9)
        average = stats.scaled(2)
        assert average.total_seconds == pytest.approx(1.0)
        assert average.io_seconds == pytest.approx(0.5)
        assert average.drc_calls == 5
        assert average.docs_examined == 4 or average.docs_examined == 5

    def test_defaults_zero(self):
        stats = QueryStats()
        assert stats.total_seconds == 0.0
        assert stats.forced_rounds == 0
