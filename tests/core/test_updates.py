"""Incremental update tests: the paper's on-the-fly insertion story.

"Our algorithm can integrate new documents into its computation
on-the-fly; i.e., when a new patient arrives at the point-of-care, we can
instantly add his or her EMR to our database.  In contrast, TA would have
to update every concept inverted index with the distance from the newly
added EMR." (Section 1.)
"""

from __future__ import annotations

import pytest

from repro.baselines.ta import ThresholdAlgorithm
from repro.core.engine import SearchEngine
from repro.corpus.document import Document
from repro.datasets import example4_collection, figure3_ontology
from repro.exceptions import UnknownConceptError, UnknownDocumentError


@pytest.fixture(params=["memory", "sqlite"])
def engine(request, figure3):
    instance = SearchEngine(figure3, example4_collection(),
                            backend=request.param)
    yield instance
    instance.close()


class TestEngineUpdates:
    def test_added_document_is_searchable_immediately(self, engine):
        engine.add_document(Document("d7", ["F", "I"]))
        results = engine.rds(["F", "I"], k=1)
        assert results.doc_ids() == ["d7"]
        assert results.results[0].distance == 0.0

    def test_added_document_visible_to_sds(self, engine):
        engine.add_document(Document("d7", ["I", "O"]))  # same as d2
        results = engine.sds("d2", k=2)
        assert set(results.doc_ids()) == {"d2", "d7"}
        assert results.distances() == [0.0, 0.0]

    def test_remove_document(self, engine):
        before = engine.rds(["F", "I"], k=2)
        assert "d2" in before.doc_ids()
        removed = engine.remove_document("d2")
        assert removed.doc_id == "d2"
        after = engine.rds(["F", "I"], k=2)
        assert "d2" not in after.doc_ids()

    def test_remove_then_readd(self, engine):
        document = engine.remove_document("d3")
        engine.add_document(document)
        results = engine.rds(["F", "I"], k=2)
        assert "d3" in results.doc_ids()

    def test_add_unknown_concept_rejected(self, engine):
        with pytest.raises(UnknownConceptError):
            engine.add_document(Document("bad", ["Z99"]))
        # Nothing was partially indexed.
        assert "bad" not in engine.collection

    def test_remove_unknown_document(self, engine):
        with pytest.raises(UnknownDocumentError):
            engine.remove_document("nope")

    def test_update_consistency_with_rebuild(self, figure3):
        # Incrementally updated indexes must answer like freshly built
        # ones over the same final corpus.
        incremental = SearchEngine(figure3, example4_collection())
        incremental.add_document(Document("d7", ["K", "Q"]))
        incremental.remove_document("d5")

        collection = example4_collection()
        collection.add(Document("d7", ["K", "Q"]))
        collection.remove("d5")
        rebuilt = SearchEngine(figure3, collection)

        for query in (["F", "I"], ["U"], ["K", "Q", "L"]):
            assert incremental.rds(query, k=4).distances() == \
                rebuilt.rds(query, k=4).distances()


class TestTAUpdateCost:
    def test_ta_add_document_updates_every_list(self, figure3):
        collection = example4_collection()
        ta = ThresholdAlgorithm.build(figure3, collection,
                                      concepts=("F", "I", "U"))
        newcomer = Document("d7", ["J"])
        ta.add_document(newcomer)
        for concept in ("F", "I", "U"):
            postings = ta._sorted[concept]
            assert len(postings) == len(collection) + 1
            distances = [distance for distance, _doc in postings]
            assert distances == sorted(distances)

    def test_ta_results_correct_after_update(self, figure3):
        collection = example4_collection()
        ta = ThresholdAlgorithm.build(figure3, collection,
                                      concepts=("F", "I"))
        ta.add_document(Document("d7", ["F", "I"]))
        results = ta.rds(("F", "I"), k=1)
        assert results.doc_ids() == ["d7"]
        assert results.distances() == [0.0]
