"""Unit tests for the SearchEngine facade."""

from __future__ import annotations

import pytest

from repro.core.engine import SearchEngine
from repro.core.knds import KNDSConfig
from repro.exceptions import QueryError, UnknownDocumentError


@pytest.fixture(params=["memory", "sqlite"])
def engine(request, figure3, example4):
    instance = SearchEngine(figure3, example4, backend=request.param)
    yield instance
    instance.close()


class TestRDS:
    def test_default_algorithm(self, engine):
        results = engine.rds(["F", "I"], k=2)
        assert results.doc_ids() == ["d2", "d3"]
        assert results.algorithm == "knds"

    def test_fullscan_agrees(self, engine):
        knds = engine.rds(["F", "I"], k=2)
        scan = engine.rds(["F", "I"], k=2, algorithm="fullscan")
        assert knds.distances() == scan.distances()

    def test_ta_agrees(self, engine):
        knds = engine.rds(["F", "I"], k=2)
        ta = engine.rds(["F", "I"], k=2, algorithm="ta")
        assert knds.distances() == ta.distances()

    def test_config_overrides(self, engine):
        results = engine.rds(["F", "I"], k=2,
                             config=KNDSConfig(error_threshold=0.0))
        assert results.doc_ids() == ["d2", "d3"]
        overridden = engine.rds(["F", "I"], k=2, error_threshold=1.0)
        assert overridden.doc_ids() == ["d2", "d3"]

    def test_unknown_algorithm(self, engine):
        with pytest.raises(QueryError):
            engine.rds(["F"], k=1, algorithm="nope")


class TestSDS:
    def test_query_by_doc_id(self, engine):
        results = engine.sds("d1", k=3)
        assert results.results[0].doc_id == "d1"
        assert results.results[0].distance == 0.0

    def test_query_by_concepts(self, engine):
        results = engine.sds(["F", "R"], k=3)
        assert results.results[0].doc_id == "d1"

    def test_unknown_doc_id(self, engine):
        with pytest.raises(UnknownDocumentError):
            engine.sds("missing", k=2)

    def test_fullscan_agrees(self, engine):
        knds = engine.sds("d2", k=3)
        scan = engine.sds("d2", k=3, algorithm="fullscan")
        assert knds.distances() == pytest.approx(scan.distances())

    def test_sds_has_no_ta(self, engine):
        with pytest.raises(QueryError):
            engine.sds("d1", k=2, algorithm="ta")


class TestConstruction:
    def test_unknown_backend(self, figure3, example4):
        with pytest.raises(QueryError):
            SearchEngine(figure3, example4, backend="mysql")

    def test_knds_accessor(self, figure3, example4):
        engine = SearchEngine(figure3, example4)
        assert engine.knds is engine._knds
        items = list(engine.knds.rds_iter(["F", "I"], k=2))
        assert [item.doc_id for item in items] == ["d2", "d3"]

    def test_sqlite_on_disk(self, figure3, example4, tmp_path):
        engine = SearchEngine(figure3, example4, backend="sqlite",
                              sqlite_path=tmp_path / "idx.db")
        assert engine.rds(["F", "I"], k=2).doc_ids() == ["d2", "d3"]
        engine.close()
