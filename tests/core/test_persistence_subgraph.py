"""Tests for subontology extraction and whole-engine persistence."""

from __future__ import annotations

import pytest

from repro.core.engine import SearchEngine
from repro.core.persistence import load_engine, save_engine
from repro.datasets import example4_collection, figure3_ontology
from repro.exceptions import ParseError, UnknownConceptError
from repro.ontology.distance import concept_distance
from repro.ontology.subgraph import extract_closure, extract_rooted


class TestExtractRooted:
    def test_descendant_cone(self, figure3):
        subgraph = extract_rooted(figure3, "J")
        assert set(subgraph.concepts()) == {"J", "K", "P", "Q", "R", "U",
                                            "V"}
        assert subgraph.root == "J"

    def test_child_order_preserved(self, figure3):
        subgraph = extract_rooted(figure3, "J")
        assert list(subgraph.children("J")) == ["K", "P"]

    def test_distances_preserved_below_root(self, figure3):
        subgraph = extract_rooted(figure3, "J")
        for first in ("R", "U", "V"):
            for second in ("K", "P", "Q"):
                assert concept_distance(subgraph, first, second) == \
                    concept_distance(figure3, first, second)

    def test_unknown_root(self, figure3):
        with pytest.raises(UnknownConceptError):
            extract_rooted(figure3, "nope")


class TestExtractClosure:
    def test_contains_concepts_and_ancestors(self, figure3):
        subgraph = extract_closure(figure3, ["U", "L"])
        assert "U" in subgraph and "L" in subgraph
        assert "A" in subgraph  # shared root ancestor
        assert "M" not in subgraph  # unrelated sibling dropped

    def test_distances_between_kept_concepts_identical(self, figure3):
        concepts = ["U", "L", "I", "V"]
        subgraph = extract_closure(figure3, concepts)
        for first in concepts:
            for second in concepts:
                assert concept_distance(subgraph, first, second) == \
                    concept_distance(figure3, first, second)

    def test_searchable(self, figure3):
        from repro.corpus.collection import DocumentCollection
        from repro.corpus.document import Document

        subgraph = extract_closure(figure3, ["F", "I", "J", "O"])
        collection = DocumentCollection([
            Document("d2", ["I", "O"]),
            Document("d3", ["F", "J"]),
        ])
        engine = SearchEngine(subgraph, collection)
        assert sorted(engine.rds(["F", "I"], k=2).distances()) == [2.0, 2.0]


class TestEnginePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        original = SearchEngine(figure3_ontology(), example4_collection())
        save_engine(original, tmp_path / "deploy")
        reloaded = load_engine(tmp_path / "deploy")
        try:
            assert reloaded.rds(["F", "I"], k=2).distances() == \
                original.rds(["F", "I"], k=2).distances()
            assert reloaded.sds("d1", k=3).distances() == pytest.approx(
                original.sds("d1", k=3).distances())
        finally:
            reloaded.close()

    def test_load_with_memory_backend_and_inmemory_ontology(self, tmp_path):
        original = SearchEngine(figure3_ontology(), example4_collection())
        save_engine(original, tmp_path / "deploy")
        reloaded = load_engine(tmp_path / "deploy", backend="memory",
                               ontology_in_memory=True)
        assert reloaded.rds(["F", "I"], k=2).doc_ids() == ["d2", "d3"]
        # The in-memory ontology is a plain Ontology, fully mutable/fast.
        from repro.ontology.graph import Ontology
        assert type(reloaded.ontology) is Ontology

    def test_updates_after_reload(self, tmp_path):
        from repro.corpus.document import Document

        original = SearchEngine(figure3_ontology(), example4_collection())
        save_engine(original, tmp_path / "deploy")
        reloaded = load_engine(tmp_path / "deploy")
        try:
            reloaded.add_document(Document("d9", ["F", "I"]))
            assert reloaded.rds(["F", "I"], k=1).doc_ids() == ["d9"]
        finally:
            reloaded.close()

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ParseError):
            load_engine(tmp_path)

    def test_version_check(self, tmp_path):
        original = SearchEngine(figure3_ontology(), example4_collection())
        save_engine(original, tmp_path / "deploy")
        manifest = tmp_path / "deploy" / "engine.json"
        manifest.write_text(manifest.read_text().replace(
            '"format_version": 1', '"format_version": 99'))
        with pytest.raises(ParseError):
            load_engine(tmp_path / "deploy")
