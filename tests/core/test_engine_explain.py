"""Direct tests for SearchEngine.explain (beyond the CLI coverage)."""

from __future__ import annotations

import pytest

from repro.core.engine import SearchEngine
from repro.datasets import example4_collection, figure3_ontology
from repro.exceptions import EmptyDocumentError, UnknownDocumentError


@pytest.fixture()
def engine():
    return SearchEngine(figure3_ontology(), example4_collection())


class TestEngineExplain:
    def test_explains_a_ranked_result(self, engine):
        results = engine.rds(["F", "I"], k=1)
        text = engine.explain(results.doc_ids()[0], ["F", "I"])
        assert "total distance: 2" in text
        assert "F:" in text and "I:" in text

    def test_total_matches_rds_distance(self, engine):
        for doc_id in ("d1", "d2", "d3", "d6"):
            results = [
                item for item in engine.rds(["F", "I"], k=6)
                if item.doc_id == doc_id
            ]
            explanation = engine.explain(doc_id, ["F", "I"])
            total = int(explanation.rsplit("total distance:", 1)[1])
            assert total == results[0].distance

    def test_unknown_document(self, engine):
        with pytest.raises(UnknownDocumentError):
            engine.explain("ghost", ["F"])

    def test_paths_use_fixture_labels(self, engine):
        # d6 = {G, H}; G carries the "heart valve finding" label.
        text = engine.explain("d6", ["I"])
        assert "heart valve finding" in text

    def test_empty_document_rejected(self, figure3):
        from repro.corpus.collection import DocumentCollection
        from repro.corpus.document import Document

        collection = DocumentCollection([Document("empty", [])])
        # Index building tolerates the empty document; explain does not.
        engine = SearchEngine(figure3, collection)
        with pytest.raises(EmptyDocumentError):
            engine.explain("empty", ["F"])
