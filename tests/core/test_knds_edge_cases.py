"""kNDS edge cases: degenerate shapes, empty postings, adversarial ties."""

from __future__ import annotations

import pytest

from repro.baselines.fullscan import FullScanSearch
from repro.core.knds import KNDSConfig, KNDSearch
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.ontology.builder import OntologyBuilder


def chain_ontology(length: int = 12):
    builder = OntologyBuilder("chain")
    names = [f"n{i}" for i in range(length)]
    for name in names:
        builder.add_concept(name)
    for previous, current in zip(names, names[1:]):
        builder.add_edge(previous, current)
    return builder.build(), names


def star_ontology(leaves: int = 30):
    builder = OntologyBuilder("star")
    builder.add_concept("hub")
    names = [f"leaf{i}" for i in range(leaves)]
    for name in names:
        builder.add_concept(name)
        builder.add_edge("hub", name)
    return builder.build(), names


class TestDegenerateShapes:
    def test_chain_ontology_distances(self):
        ontology, names = chain_ontology()
        collection = DocumentCollection(
            [Document(f"d{i}", [names[i]]) for i in range(len(names))]
        )
        searcher = KNDSearch(ontology, collection)
        results = searcher.rds([names[0]], k=3)
        assert results.doc_ids() == ["d0", "d1", "d2"]
        assert results.distances() == [0.0, 1.0, 2.0]

    def test_star_ontology_all_leaves_equidistant(self):
        ontology, names = star_ontology()
        collection = DocumentCollection(
            [Document(f"d{i}", [names[i]]) for i in range(10)]
        )
        searcher = KNDSearch(ontology, collection)
        results = searcher.rds([names[20]], k=5)
        # Every leaf document sits at distance 2 (leaf -> hub -> leaf).
        assert results.distances() == [2.0] * 5

    def test_query_concept_with_empty_postings(self):
        ontology, names = chain_ontology()
        # No document contains n0; documents cluster at the deep end.
        collection = DocumentCollection(
            [Document("deep", [names[-1]]), Document("mid", [names[6]])]
        )
        searcher = KNDSearch(ontology, collection)
        results = searcher.rds([names[0]], k=2)
        oracle = FullScanSearch(ontology, collection).rds([names[0]], k=2)
        assert results.distances() == oracle.distances()

    def test_all_documents_identical(self):
        ontology, names = star_ontology()
        collection = DocumentCollection(
            [Document(f"d{i}", [names[0], names[1]]) for i in range(6)]
        )
        searcher = KNDSearch(ontology, collection)
        results = searcher.rds([names[0]], k=3)
        assert results.distances() == [0.0, 0.0, 0.0]
        sds = searcher.sds([names[0], names[1]], k=3)
        assert sds.distances() == [0.0, 0.0, 0.0]


class TestAdversarialTies:
    def test_many_boundary_ties(self):
        # 20 documents all at the same distance; any k of them is a valid
        # answer, distances must still be exact.
        ontology, names = star_ontology()
        collection = DocumentCollection(
            [Document(f"d{i:02d}", [names[i]]) for i in range(20)]
        )
        searcher = KNDSearch(ontology, collection)
        for config in (KNDSConfig(error_threshold=0.0),
                       KNDSConfig(error_threshold=1.0)):
            results = searcher.rds([names[25]], k=7, config=config)
            assert results.distances() == [2.0] * 7
            assert len(set(results.doc_ids())) == 7

    def test_single_concept_everywhere(self):
        ontology, names = chain_ontology(5)
        collection = DocumentCollection(
            [Document(f"d{i}", names[:5]) for i in range(4)]
        )
        searcher = KNDSearch(ontology, collection)
        results = searcher.sds(names[:5], k=4)
        assert results.distances() == [0.0] * 4


class TestSDSNormalizationEdge:
    def test_large_document_vs_small_document(self):
        # SDS normalizes by document size: a huge document containing the
        # query concepts plus noise is *further* than an exact small one.
        ontology, names = star_ontology()
        small = Document("small", [names[0]])
        big = Document("big", [names[0]] + names[5:15])
        collection = DocumentCollection([small, big])
        searcher = KNDSearch(ontology, collection)
        results = searcher.sds([names[0]], k=2)
        assert results.doc_ids()[0] == "small"
        assert results.results[0].distance == 0.0
        assert results.results[1].distance > 0.0

    def test_query_document_none_of_whose_concepts_occur(self):
        ontology, names = star_ontology()
        collection = DocumentCollection(
            [Document("d0", [names[1]]), Document("d1", [names[2]])]
        )
        searcher = KNDSearch(ontology, collection)
        results = searcher.sds([names[25], names[26]], k=2)
        oracle = FullScanSearch(ontology, collection).sds(
            [names[25], names[26]], k=2)
        assert results.distances() == pytest.approx(oracle.distances())


class TestBudgetInteractions:
    def test_tiny_budget_still_correct(self, small_ontology, small_corpus):
        pool = sorted(small_corpus.distinct_concepts())
        query = tuple(pool[10:13])
        searcher = KNDSearch(small_ontology, small_corpus)
        strict = searcher.rds(query, 5,
                              config=KNDSConfig(analyze_budget_per_round=1))
        free = searcher.rds(query, 5)
        assert strict.distances() == free.distances()

    def test_queue_limit_one_forces_every_round(self, small_ontology,
                                                small_corpus):
        pool = sorted(small_corpus.distinct_concepts())
        query = tuple(pool[3:5])
        searcher = KNDSearch(small_ontology, small_corpus)
        capped = searcher.rds(query, 4, config=KNDSConfig(queue_limit=1))
        free = searcher.rds(query, 4)
        assert capped.distances() == free.distances()
        assert capped.stats.forced_rounds >= 1
