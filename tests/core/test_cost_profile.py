"""EXPLAIN ANALYZE cost profiles: presence, schema, determinism."""

from __future__ import annotations

import pytest

from repro.core.engine import SearchEngine
from repro.core.explain import render_cost_profile


@pytest.fixture()
def engine(figure3, example4):
    engine = SearchEngine(figure3, example4)
    yield engine
    engine.close()


class TestOptIn:
    def test_no_profile_without_analyze(self, engine):
        results = engine.rds(["F", "I"], k=2)
        assert results.cost_profile is None

    def test_rds_profile_populated(self, engine):
        results = engine.rds(["F", "I"], k=2, analyze=True)
        profile = results.cost_profile
        assert profile is not None
        assert profile.algorithm == "knds"
        assert profile.query_kind == "rds"
        assert profile.k == 2
        assert profile.probes > 0
        assert profile.candidates_settled >= 2
        assert profile.termination_reason in ("converged", "exhausted")
        assert profile.termination_level >= 0
        assert len(profile.bounds) == profile.rounds

    def test_sds_profile_populated(self, engine):
        results = engine.sds("d1", k=2, analyze=True)
        profile = results.cost_profile
        assert profile is not None
        assert profile.query_kind == "sds"

    def test_analyze_does_not_change_results(self, engine):
        plain = engine.rds(["F", "I"], k=2)
        analyzed = engine.rds(["F", "I"], k=2, analyze=True)
        assert analyzed.doc_ids() == plain.doc_ids()
        assert [item.distance for item in analyzed] \
            == [item.distance for item in plain]

    def test_non_knds_algorithms_carry_no_profile(self, engine):
        for algorithm in ("fullscan", "ta"):
            results = engine.rds(["F", "I"], k=2, algorithm=algorithm,
                                 analyze=True)
            assert results.cost_profile is None

    def test_batch_analyze(self, engine):
        batch = engine.rds_many([["F", "I"], ["C"]], k=2, analyze=True)
        assert all(r.cost_profile is not None for r in batch)


class TestSchema:
    def test_to_dict_shape(self, engine):
        profile = engine.rds(["F", "I"], k=2, analyze=True).cost_profile
        row = profile.to_dict()
        assert set(row) == {"algorithm", "query_kind", "k", "path",
                            "work", "candidates", "termination",
                            "bounds", "seconds"}
        assert set(row["work"]) == {
            "probes", "drc_calls", "arena_calls", "exact_distances",
            "pair_lookups", "pair_kernels", "cache_hits",
            "cache_misses", "covered_shortcuts"}
        assert set(row["candidates"]) == {"created", "pruned", "settled"}
        assert set(row["termination"]) == {"level", "reason", "rounds",
                                           "forced_rounds"}
        for sample in row["bounds"]:
            assert set(sample) == {"level", "lower", "kth", "gap"}

    def test_bounds_trajectory_monotone_lower(self, engine):
        profile = engine.rds(["F", "I"], k=2, analyze=True).cost_profile
        lowers = [sample.lower for sample in profile.bounds]
        assert lowers == sorted(lowers)

    def test_converged_means_lower_meets_kth(self, engine):
        profile = engine.rds(["F", "I"], k=2, analyze=True).cost_profile
        assert profile.termination_reason == "converged"
        final = profile.bounds[-1]
        assert final.kth is not None
        assert final.lower >= final.kth
        assert final.gap <= 0

    def test_render_cost_profile(self, engine):
        profile = engine.rds(["F", "I"], k=2, analyze=True).cost_profile
        text = render_cost_profile(profile)
        assert "cost profile (knds rds, k=2" in text
        assert "terminated: converged" in text
        assert "D-" in text and "Dk+" in text


class TestDeterminism:
    def test_identical_profile_across_repeats(self, engine):
        first = engine.rds(["F", "I"], k=2, analyze=True).cost_profile
        second = engine.rds(["F", "I"], k=2, analyze=True).cost_profile
        assert first.deterministic_signature() \
            == second.deterministic_signature()

    def test_identical_signature_across_settle_paths(self, figure3,
                                                     example4):
        signatures = []
        for use_arena in (True, False):
            engine = SearchEngine(figure3, example4)
            try:
                profile = engine.rds(
                    ["F", "I"], k=2, analyze=True,
                    use_arena=use_arena).cost_profile
                assert profile.path == ("arena" if use_arena else "tuple")
                signatures.append(profile.deterministic_signature())
            finally:
                engine.close()
        assert signatures[0] == signatures[1]

    def test_exact_distances_path_independent(self, figure3, example4):
        totals = []
        for use_arena in (True, False):
            engine = SearchEngine(figure3, example4)
            try:
                profile = engine.sds(
                    "d1", k=3, analyze=True,
                    use_arena=use_arena).cost_profile
                totals.append(profile.exact_distances)
                # The split is path-dependent, the sum is not.
                if use_arena:
                    assert profile.drc_calls == 0
                else:
                    assert profile.arena_calls == 0
            finally:
                engine.close()
        assert totals[0] == totals[1]

    def test_signature_excludes_seconds(self, engine):
        profile = engine.rds(["F", "I"], k=2, analyze=True).cost_profile
        signature = profile.deterministic_signature()
        assert "seconds" not in signature
        assert "path" not in signature
