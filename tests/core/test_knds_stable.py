"""Canonical tie-break mode (``KNDSConfig.stable_ties``).

The sharded engine merges per-shard top-k lists under the total order
``(distance, doc_id)``; bit-identity of the merged ranking requires the
single engine to keep *the same* boundary documents when distances tie
at ``Dk+``.  ``stable_ties=True`` pins that choice; the default stays
``False`` so the paper's Table 2 traces are untouched.
"""

from __future__ import annotations

import pytest

from repro.baselines.fullscan import FullScanSearch
from repro.core.engine import SearchEngine
from repro.core.knds import KNDSConfig, KNDSearch
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.datasets import figure3_ontology


def _canonical_topk(fullscan, query, k):
    """The unambiguous answer: all distances, (distance, doc_id) order."""
    everything = fullscan.rds(query, k=len(fullscan.collection))
    ranked = sorted((item.distance, item.doc_id)
                    for item in everything.results)
    return [(doc_id, distance) for distance, doc_id in ranked[:k]]


class TestStableMode:
    def test_matches_canonical_order_exactly(self, small_ontology,
                                             small_corpus):
        searcher = KNDSearch(small_ontology, small_corpus)
        fullscan = FullScanSearch(small_ontology, small_corpus)
        import random
        rng = random.Random(91)
        pool = sorted({concept for doc in small_corpus
                       for concept in doc.concepts})
        for _ in range(20):
            query = rng.sample(pool, 4)
            ranked = searcher.rds(query, k=10, stable_ties=True)
            assert [(item.doc_id, item.distance)
                    for item in ranked.results] \
                == _canonical_topk(fullscan, query, 10)

    def test_progressive_iterator_agrees_with_batch(self, small_ontology,
                                                    small_corpus):
        searcher = KNDSearch(small_ontology, small_corpus)
        config = KNDSConfig(stable_ties=True)
        query = sorted({concept for doc in small_corpus
                        for concept in doc.concepts})[:4]
        batch = searcher.rds(query, 8, config)
        streamed = sorted((item.distance, item.doc_id)
                          for item in searcher.rds_iter(query, 8, config))
        assert [(doc_id, distance) for distance, doc_id in streamed] \
            == [(item.doc_id, item.distance) for item in batch.results]

    def test_boundary_tie_keeps_smallest_doc_ids(self):
        # Duplicate documents guarantee distance ties at the k-th slot;
        # stable mode must keep the lexicographically smallest ids.
        ontology = figure3_ontology()
        concepts = ("F", "I")
        documents = [Document(f"t{index}", concepts) for index in range(5)]
        collection = DocumentCollection(documents, name="ties")
        searcher = KNDSearch(ontology, collection)
        ranked = searcher.rds(["F"], k=3, stable_ties=True)
        assert ranked.doc_ids() == ["t0", "t1", "t2"]


class TestDefaults:
    def test_raw_searcher_default_is_unstable(self):
        assert KNDSConfig().stable_ties is False

    def test_engine_default_is_stable(self, figure3, example4):
        assert SearchEngine.DEFAULT_CONFIG.stable_ties is True
        engine = SearchEngine(figure3, example4)
        try:
            assert engine.default_config.stable_ties is True
            # Explicit configs still win over the engine default.
            unstable = engine.rds(["F", "I"], k=2,
                                  config=KNDSConfig(stable_ties=False))
            assert len(unstable.results) == 2
        finally:
            engine.close()
