"""Tests for the MapReduce runtime and kNDS-as-MapReduce."""

from __future__ import annotations

import pytest

from repro.baselines.fullscan import FullScanSearch
from repro.core.knds import KNDSConfig, KNDSearch
from repro.core.mapreduce import MapReduceKNDS, MapReduceRuntime
from repro.datasets import example4_collection, figure3_ontology


class TestRuntime:
    def test_word_count(self):
        runtime = MapReduceRuntime(num_partitions=3)

        def mapper(line):
            for word in line.split():
                yield word, 1

        def reducer(word, counts):
            yield word, sum(counts)

        output = dict(runtime.run(
            ["a b a", "b c", "a"], mapper, reducer))
        assert output == {"a": 3, "b": 2, "c": 1}
        assert runtime.stats.map_invocations == 3
        assert runtime.stats.shuffled_pairs == 6
        assert runtime.stats.reduce_invocations == 3

    def test_deterministic_across_partition_counts(self):
        def mapper(item):
            yield item % 5, item

        def reducer(key, values):
            yield key, sorted(values)

        single = MapReduceRuntime(1).run(range(20), mapper, reducer)
        many = MapReduceRuntime(7).run(range(20), mapper, reducer)
        assert sorted(single) == sorted(many)

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            MapReduceRuntime(0)


class TestMapReduceKNDS:
    @pytest.fixture()
    def world(self, small_ontology, small_corpus):
        return small_ontology, small_corpus

    def test_example4_matches_paper(self, figure3, example4):
        searcher = MapReduceKNDS(figure3, example4)
        results = searcher.rds(["F", "I"], k=2)
        assert sorted(results.doc_ids()) == ["d2", "d3"]
        assert results.distances() == [2.0, 2.0]

    @pytest.mark.parametrize("config", [
        KNDSConfig(),
        KNDSConfig(error_threshold=0.0),
        KNDSConfig(error_threshold=1.0),
        KNDSConfig(prune_at_pop=False),
    ])
    def test_rds_matches_serial_knds(self, world, config):
        ontology, corpus = world
        pool = sorted(corpus.distinct_concepts())
        serial = KNDSearch(ontology, corpus)
        parallel = MapReduceKNDS(ontology, corpus)
        for offset in (0, 7, 19):
            query = tuple(pool[offset:offset + 3])
            assert parallel.rds(query, 6, config).distances() == \
                serial.rds(query, 6, config).distances()

    def test_sds_matches_serial_knds(self, world):
        ontology, corpus = world
        serial = KNDSearch(ontology, corpus)
        parallel = MapReduceKNDS(ontology, corpus)
        for document in list(corpus)[:4]:
            assert parallel.sds(document, 5).distances() == pytest.approx(
                serial.sds(document, 5).distances())

    def test_matches_oracle(self, world):
        ontology, corpus = world
        pool = sorted(corpus.distinct_concepts())
        oracle = FullScanSearch(ontology, corpus)
        parallel = MapReduceKNDS(ontology, corpus)
        query = tuple(pool[4:8])
        assert parallel.rds(query, 8).distances() == \
            oracle.rds(query, 8).distances()

    def test_partition_count_does_not_change_results(self, world):
        ontology, corpus = world
        pool = sorted(corpus.distinct_concepts())
        query = tuple(pool[2:5])
        one = MapReduceKNDS(ontology, corpus,
                            runtime=MapReduceRuntime(1)).rds(query, 5)
        eight = MapReduceKNDS(ontology, corpus,
                              runtime=MapReduceRuntime(8)).rds(query, 5)
        assert one.distances() == eight.distances()

    def test_no_global_queue(self, world):
        # The point of the MapReduce formulation: no single process holds
        # the combined frontier.  The max per-mapper frontier must stay
        # below the sum of all per-origin frontiers at the widest level.
        ontology, corpus = world
        pool = sorted(corpus.distinct_concepts())
        query = tuple(pool[0:4])
        parallel = MapReduceKNDS(ontology, corpus)
        parallel.rds(query, 5, KNDSConfig(error_threshold=0.0))
        stats = parallel.runtime.stats
        assert stats.rounds >= 1
        assert stats.max_mapper_frontier > 0
        serial = KNDSearch(ontology, corpus)
        observed = []
        serial.rds(query, 5, KNDSConfig(error_threshold=0.0),
                   observer=lambda e: observed.append(len(e["frontier"])))
        assert stats.max_mapper_frontier <= max(observed)

    def test_validation(self, figure3):
        with pytest.raises(ValueError):
            MapReduceKNDS(figure3)
