"""Tests for result explanation and shortest valid-path recovery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.explain import (
    explain_rds,
    explain_sds,
    render_explanation,
    shortest_valid_path,
)
from repro.datasets import EXAMPLE_DOCUMENT, EXAMPLE_QUERY
from repro.exceptions import EmptyDocumentError
from repro.ontology.distance import (
    concept_distance,
    document_document_distance,
)
from tests.test_properties import small_dags


class TestShortestValidPath:
    def test_identity(self, figure3):
        assert shortest_valid_path(figure3, "J", "J") == ["J"]

    def test_parent_child(self, figure3):
        assert shortest_valid_path(figure3, "F", "J") == ["F", "J"]

    def test_paper_example_g_to_f(self, figure3):
        path = shortest_valid_path(figure3, "G", "F")
        assert len(path) - 1 == 5
        assert path[0] == "G" and path[-1] == "F"
        assert "A" in path  # routes through the common ancestor

    def test_path_length_equals_distance(self, figure3):
        for first in "GJUVL":
            for second in "FITM":
                path = shortest_valid_path(figure3, first, second)
                assert len(path) - 1 == concept_distance(
                    figure3, first, second)

    def test_path_is_up_then_down(self, figure3):
        path = shortest_valid_path(figure3, "U", "L")
        # Each consecutive hop is a real is-a edge; direction may switch
        # from up to down exactly once.
        directions = []
        for current, following in zip(path, path[1:]):
            if following in figure3.parents(current):
                directions.append("up")
            else:
                assert following in figure3.children(current)
                directions.append("down")
        ups = directions.count("up")
        assert directions == ["up"] * ups + ["down"] * (len(directions)
                                                        - ups)

    @given(small_dags(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_path_matches_distance(self, ontology, data):
        concepts = list(ontology.concepts())
        first = data.draw(st.sampled_from(concepts))
        second = data.draw(st.sampled_from(concepts))
        path = shortest_valid_path(ontology, first, second)
        assert len(path) - 1 == concept_distance(ontology, first, second)
        # Valid-path shape: ups precede downs.
        saw_down = False
        for current, following in zip(path, path[1:]):
            if following in ontology.children(current):
                saw_down = True
            else:
                assert following in ontology.parents(current)
                assert not saw_down


class TestExplainRDS:
    def test_example1_decomposition(self, figure3):
        explanation = explain_rds(figure3, EXAMPLE_DOCUMENT, EXAMPLE_QUERY)
        by_query = {term.query_concept: term for term in explanation.terms}
        assert by_query["I"].distance == 4
        assert by_query["L"].distance == 2
        assert by_query["U"].distance == 1
        assert by_query["U"].nearest_concept == "R"
        assert explanation.total == 7

    def test_paths_connect_query_to_document(self, figure3):
        explanation = explain_rds(figure3, EXAMPLE_DOCUMENT, EXAMPLE_QUERY)
        for term in explanation.terms:
            assert term.path[0] == term.query_concept
            assert term.path[-1] == term.nearest_concept
            assert term.path[-1] in EXAMPLE_DOCUMENT

    def test_empty_document_rejected(self, figure3):
        with pytest.raises(EmptyDocumentError):
            explain_rds(figure3, (), ("I",))

    def test_render(self, figure3):
        explanation = explain_rds(figure3, EXAMPLE_DOCUMENT, EXAMPLE_QUERY)
        text = render_explanation(figure3, explanation)
        assert "total distance: 7" in text
        assert "U: nearest is R at distance 1" in text
        # Labels appear where the fixture defines them.
        assert "heart valve finding" in text


class TestExplainSDS:
    def test_reconstructs_ddd(self, figure3):
        doc, query = ("G", "H"), ("F", "I")
        forward, backward = explain_sds(figure3, doc, query)
        reconstructed = (forward.total / len(query)
                         + backward.total / len(doc))
        assert reconstructed == pytest.approx(
            document_document_distance(figure3, doc, query))
