"""Shared-memory arena snapshots: parity, lifecycle, and freezing.

Two contracts under test.  First, the kernel-ladder parity contract:
the tuple reference path, the packed scalar kernel, the numpy batch
kernel, and a view attached over a shared segment must all produce
bit-identical distances — including over adversarial Dewey shapes
(multi-parent concepts with shared prefixes, the root's short
addresses, and parent/child pairs that sit on the distance<=1
early-exit boundary) — and the batch entry points must advance every
gated counter exactly as the scalar loop would.  Second, the segment
lifecycle: publish -> attach -> detach -> unlink, with every mismatch
(missing segment, stale epoch, foreign magic) degrading to the re-pack
fallback instead of a failed worker.
"""

from __future__ import annotations

import random
import threading
from multiprocessing import shared_memory

import pytest

from repro.core import npkernel
from repro.core.arena import KERNEL_TIERS, PackedDeweyArena
from repro.core.drc import DRC
from repro.core.sharena import (SharedArenaSpec, attach_view,
                                publish_snapshot, try_attach)
from repro.exceptions import (ArenaSnapshotError, InvariantError,
                              ReproError, UnknownConceptError)
from repro.ontology.dewey import DeweyIndex
from repro.ontology.distance import concept_distance_dewey
from repro.ontology.generators import snomed_like

TIERS = [tier for tier in KERNEL_TIERS if tier != "auto"
         and (tier != "numpy" or npkernel.available())]


@pytest.fixture(autouse=True)
def _sanitized_locks(lock_sanitizer):
    """Same discipline as the arena tests: fail on lock-order issues."""
    yield lock_sanitizer


def adversarial_pairs(ontology, rng, count=150):
    """Concept pairs biased toward the kernels' edge cases.

    Random pairs share long prefixes on a deep DAG; the explicit extras
    pin the boundaries: identical pairs (distance 0 short-circuit),
    parent/child pairs (distance 1, the scalar kernel's early exit),
    and pairs involving a root whose addresses are shortest.
    """
    concepts = sorted(ontology)
    pairs = [(rng.choice(concepts), rng.choice(concepts))
             for _ in range(count)]
    pairs.extend((concept, concept) for concept in concepts[:10])
    for concept in concepts:
        for parent in ontology.parents(concept):
            pairs.append((concept, parent))
            pairs.append((parent, concept))
    roots = [concept for concept in concepts
             if not ontology.parents(concept)]
    pairs.extend((root, rng.choice(concepts)) for root in roots)
    return pairs


# ----------------------------------------------------------------------
# Three-way (plus shared-view) kernel equivalence
# ----------------------------------------------------------------------
class TestKernelLadderParity:
    @pytest.mark.parametrize("seed", [2, 13, 47])
    @pytest.mark.parametrize("tier", TIERS)
    def test_pair_distances_match_tuple_reference(self, seed, tier):
        ontology = snomed_like(130, seed=seed)
        dewey = DeweyIndex(ontology)
        arena = PackedDeweyArena(ontology, dewey, kernel_tier=tier)
        rng = random.Random(seed * 7)
        for first, second in adversarial_pairs(ontology, rng):
            assert arena.concept_pair_distance(first, second) \
                == concept_distance_dewey(dewey, first, second)

    @pytest.mark.parametrize("tier", TIERS)
    def test_batch_matches_scalar_with_identical_counters(self, tier):
        ontology = snomed_like(90, seed=5)
        dewey = DeweyIndex(ontology)
        scalar = PackedDeweyArena(ontology, dewey, kernel_tier="packed")
        batched = PackedDeweyArena(ontology, dewey, kernel_tier=tier)
        rng = random.Random(19)
        pairs = adversarial_pairs(ontology, rng, count=80)
        # Duplicates inside one batch exercise the pending-dedup path.
        pairs.extend(pairs[:15])
        ids = [(batched.concept_id(first), batched.concept_id(second))
               for first, second in pairs]
        expected = [scalar.concept_pair_distance(first, second)
                    for first, second in pairs]
        for first, second in pairs:  # mirror the id interning
            scalar.concept_id(first), scalar.concept_id(second)
        assert batched.batch_pair_distances(ids) == expected
        assert (batched.pair_lookups, batched.pair_kernels) \
            == (scalar.pair_lookups, scalar.pair_kernels)
        assert (batched.cache.stats.hits, batched.cache.stats.misses) \
            == (scalar.cache.stats.hits, scalar.cache.stats.misses)

    @pytest.mark.skipif(not npkernel.available(), reason="numpy tier only")
    def test_batch_kernel_survives_concurrent_interning(self):
        # Regression: the numpy snapshot used to live in six separate
        # attributes reassigned one by one during refresh, so a reader
        # racing a rebuild could index a grown starts vector into the
        # previous (smaller) matrix -> IndexError.  The snapshot is now
        # one immutable object swapped atomically; hammer interning
        # growth against cache-less batch queries to keep it that way.
        ontology = snomed_like(240, seed=31)
        dewey = DeweyIndex(ontology)
        arena = PackedDeweyArena(ontology, dewey, cache_entries=0,
                                 kernel_tier="numpy")
        concepts = sorted(ontology)
        anchor = arena.concept_id(concepts[0])
        chunks = [concepts[index::4] for index in range(4)]
        barrier = threading.Barrier(len(chunks))
        errors: list[BaseException] = []
        results: dict[str, int] = {}

        def worker(chunk):
            try:
                barrier.wait()
                for concept in chunk:
                    interned = arena.concept_id(concept)
                    results[concept] = arena.batch_pair_distances(
                        [(anchor, interned)])[0]
            except BaseException as error:  # noqa: BLE001 - recorded
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(chunk,))
                   for chunk in chunks]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for concept in concepts:
            assert results[concept] == concept_distance_dewey(
                dewey, concepts[0], concept)

    @pytest.mark.parametrize("tier", TIERS)
    def test_document_distances_match_drc_tuple_path(self, tier):
        ontology = snomed_like(110, seed=23)
        dewey = DeweyIndex(ontology)
        arena = PackedDeweyArena(ontology, dewey, kernel_tier=tier)
        drc = DRC(ontology, dewey)  # no arena: the tuple path
        rng = random.Random(29)
        concepts = sorted(ontology)
        for _ in range(30):
            doc = rng.sample(concepts, rng.randint(1, 10))
            query = rng.sample(concepts, rng.randint(1, 5))
            assert arena.doc_query_distance(doc, query) \
                == drc.document_query_distance(doc, query)
            assert arena.doc_doc_distance(doc, query) \
                == drc.document_document_distance(doc, query)

    def test_forcing_numpy_without_numpy_is_a_clear_error(self,
                                                          monkeypatch):
        if npkernel.available():
            monkeypatch.setattr(npkernel, "_np", None)
        ontology = snomed_like(20, seed=3)
        with pytest.raises(ReproError, match=r"repro\[perf\]"):
            PackedDeweyArena(ontology, kernel_tier="numpy")


# ----------------------------------------------------------------------
# Segment lifecycle: publish, attach, detach, unlink
# ----------------------------------------------------------------------
class TestSegmentLifecycle:
    @pytest.fixture()
    def world(self):
        ontology = snomed_like(80, seed=31)
        dewey = DeweyIndex(ontology)
        arena = PackedDeweyArena(ontology, dewey)
        segment = publish_snapshot(arena)
        yield ontology, dewey, arena, segment
        segment.unlink()

    @pytest.mark.parametrize("tier", TIERS)
    def test_attached_view_is_bit_identical(self, world, tier):
        ontology, dewey, arena, segment = world
        view = attach_view(segment.spec, ontology, dewey=dewey,
                           kernel_tier=tier)
        try:
            assert view.interned == arena.interned == len(ontology)
            rng = random.Random(37)
            for first, second in adversarial_pairs(ontology, rng,
                                                   count=60):
                assert view.concept_pair_distance(first, second) \
                    == arena.concept_pair_distance(first, second)
            concepts = sorted(ontology)
            assert view.doc_doc_distance(concepts[:6], concepts[3:9]) \
                == arena.doc_doc_distance(concepts[:6], concepts[3:9])
        finally:
            view.detach()

    def test_view_is_frozen_and_reports_zero_private_bytes(self, world):
        ontology, dewey, arena, segment = world
        with attach_view(segment.spec, ontology, dewey=dewey) as view:
            assert view.attached
            assert view.buffer_bytes() == 0  # counted once, publisher-side
            assert view.shared_segment_bytes() == segment.spec.nbytes
            assert arena.buffer_bytes() > 0
            with pytest.raises(UnknownConceptError):
                view.concept_pair_distance("not-a-concept",
                                           sorted(ontology)[0])
            with pytest.raises(InvariantError):
                view.invalidate()
        assert not view.attached

    def test_detach_is_idempotent(self, world):
        ontology, dewey, _arena, segment = world
        view = attach_view(segment.spec, ontology, dewey=dewey)
        view.detach()
        view.detach()
        assert not view.attached

    def test_epoch_mismatch_degrades_to_repack(self, world):
        ontology, dewey, _arena, segment = world
        stale = SharedArenaSpec(name=segment.spec.name,
                                epoch=segment.spec.epoch + 1,
                                nbytes=segment.spec.nbytes)
        with pytest.raises(ArenaSnapshotError, match="re-pack"):
            attach_view(stale, ontology, dewey=dewey)
        assert try_attach(stale, ontology, dewey=dewey) is None
        # The genuine spec still attaches: the segment is intact.
        view = try_attach(segment.spec, ontology, dewey=dewey)
        assert view is not None
        view.detach()

    def test_missing_segment_degrades_to_repack(self, world):
        ontology, dewey, _arena, _segment = world
        gone = SharedArenaSpec(name="repro-no-such-segment", epoch=0,
                               nbytes=0)
        assert try_attach(gone, ontology, dewey=dewey) is None

    def test_unlink_is_idempotent_and_stops_new_attaches(self, world):
        ontology, dewey, _arena, segment = world
        segment.unlink()
        segment.unlink()
        assert try_attach(segment.spec, ontology, dewey=dewey) is None

    def test_foreign_magic_is_rejected(self):
        ontology = snomed_like(20, seed=41)
        shm = shared_memory.SharedMemory(create=True, size=64)
        try:
            shm.buf[:4] = b"NOPE"
            spec = SharedArenaSpec(name=shm.name, epoch=0, nbytes=64)
            with pytest.raises(ArenaSnapshotError, match="magic"):
                attach_view(spec, ontology)
            assert try_attach(spec, ontology) is None
        finally:
            shm.close()
            shm.unlink()

    def test_publish_interns_lazily_packed_arenas(self):
        # A publisher that never answered a query still seals the full
        # ontology: attached views are frozen, so partial snapshots
        # would strand concepts.
        ontology = snomed_like(50, seed=43)
        arena = PackedDeweyArena(ontology)
        assert arena.interned == 0
        segment = publish_snapshot(arena)
        try:
            assert arena.interned == len(ontology)
            with attach_view(segment.spec, ontology) as view:
                assert view.interned == len(ontology)
        finally:
            segment.unlink()
