"""Unit tests for the D-Radix DAG and the DRC algorithm."""

from __future__ import annotations

import pytest

from repro.core.dradix import DRadixDAG
from repro.core.drc import DRC
from repro.exceptions import EmptyDocumentError
from repro.ontology.dewey import DeweyIndex
from repro.ontology.distance import (
    document_document_distance,
    document_query_distance,
)
from repro.types import INFINITY


class TestDRadixConstruction:
    def test_concept_nodes_not_merged_without_branch(self, figure3,
                                                     figure3_dewey):
        # Section 4.2: "in a Radix Tree nodes R and U would have been
        # merged; in the D-Radix they are kept separate."
        dradix = DRadixDAG.build(figure3, figure3_dewey, ("R",), ("U",))
        assert "R" in dradix.dag
        assert "U" in dradix.dag
        assert ("R", "1", "U") in dradix.dag.edges()

    def test_initial_distances(self, figure3, figure3_dewey):
        dradix = DRadixDAG(figure3, ("F",), ("I",))
        merged = DRadixDAG.merged_address_list(figure3_dewey, ("F",), ("I",))
        for address, concept in merged:
            dradix.insert(address, concept)
        annotations = {
            node.concept_id: tuple(node.dist)
            for node in dradix.dag.nodes()
        }
        assert annotations["F"] == (0.0, INFINITY)
        assert annotations["I"] == (INFINITY, 0.0)
        assert annotations["A"] == (INFINITY, INFINITY)

    def test_shared_concept_gets_both_zeroes(self, figure3, figure3_dewey):
        dradix = DRadixDAG.build(figure3, figure3_dewey, ("F", "J"), ("J",))
        assert dradix.dag.node("J").dist == [0.0, 0.0]

    def test_empty_sets_rejected(self, figure3):
        with pytest.raises(EmptyDocumentError):
            DRadixDAG(figure3, (), ("I",))
        with pytest.raises(EmptyDocumentError):
            DRadixDAG(figure3, ("F",), ())

    def test_reading_before_tune_fails(self, figure3, figure3_dewey):
        dradix = DRadixDAG(figure3, ("F",), ("I",))
        with pytest.raises(RuntimeError):
            dradix.document_query_distance()


class TestDRCDistances:
    def test_rds_distance_matches_brute_force(self, figure3):
        drc = DRC(figure3)
        cases = [
            (("F", "R", "T", "V"), ("I", "L", "U")),
            (("F",), ("I",)),
            (("C",), ("U", "L")),
            (("M", "N"), ("M",)),
        ]
        for doc, query in cases:
            assert drc.document_query_distance(doc, query) == (
                document_query_distance(figure3, doc, query))

    def test_sds_distance_matches_brute_force(self, figure3):
        drc = DRC(figure3)
        doc, query = ("G", "H"), ("F", "I")
        assert drc.document_document_distance(doc, query) == pytest.approx(
            document_document_distance(figure3, doc, query))

    def test_identical_sets_zero(self, figure3):
        drc = DRC(figure3)
        assert drc.document_query_distance(("F", "I"), ("F", "I")) == 0
        assert drc.document_document_distance(("F", "I"), ("F", "I")) == 0

    def test_call_counter(self, figure3):
        drc = DRC(figure3)
        drc.document_query_distance(("F",), ("I",))
        drc.document_document_distance(("F",), ("I",))
        assert drc.calls == 2
        drc.reset_counters()
        assert drc.calls == 0

    def test_shared_dewey_index_reused(self, figure3):
        dewey = DeweyIndex(figure3)
        drc = DRC(figure3, dewey)
        assert drc.dewey is dewey


class TestComplexityProxy:
    def test_node_count_linear_in_paths(self, small_ontology):
        # |Td,q| = O(|Pq| + |Pd|): the D-Radix node count never exceeds
        # the total path count times a constant.
        import random
        rng = random.Random(11)
        dewey = DeweyIndex(small_ontology)
        concepts = list(small_ontology.concepts())
        doc = tuple(rng.sample(concepts, 12))
        query = tuple(rng.sample(concepts, 6))
        dradix = DRadixDAG.build(small_ontology, dewey, doc, query)
        total_paths = dewey.total_paths(set(doc) | set(query))
        # Each path contributes at most its nodes; radix compression keeps
        # the node count far below path-length * paths and at most
        # ~2 nodes per path (branch + leaf) plus the root.
        assert len(dradix.dag) <= 2 * total_paths + 1
