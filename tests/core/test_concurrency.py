"""Concurrency smoke tests.

The engine has no internal locking; the supported pattern is many
concurrent *readers* (queries) with writes (add/remove document)
serialized by the caller.  These tests pin the reader side: concurrent
queries over a fixed corpus must neither crash nor produce results that
differ from serial execution.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.engine import SearchEngine
from repro.core.knds import KNDSearch


@pytest.fixture(scope="module")
def engine(small_ontology, small_corpus):
    return SearchEngine(small_ontology, small_corpus)


class TestConcurrentReaders:
    def test_parallel_rds_matches_serial(self, engine, small_corpus):
        pool = sorted(small_corpus.distinct_concepts())
        queries = [tuple(pool[i:i + 3]) for i in range(0, 24, 3)]
        expected = {
            query: engine.rds(list(query), k=5).distances()
            for query in queries
        }
        results: dict = {}
        errors: list[BaseException] = []

        def worker(query):
            try:
                results[query] = engine.rds(list(query), k=5).distances()
            except BaseException as error:  # noqa: BLE001 - recorded
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(query,))
                   for query in queries for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results == expected

    def test_parallel_mixed_rds_sds(self, engine, small_corpus):
        pool = sorted(small_corpus.distinct_concepts())
        doc_ids = small_corpus.doc_ids()[:6]
        errors: list[BaseException] = []

        def rds_worker():
            try:
                engine.rds(pool[5:8], k=4)
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        def sds_worker(doc_id):
            try:
                engine.sds(doc_id, k=4)
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=rds_worker) for _ in range(4)]
        threads += [threading.Thread(target=sds_worker, args=(doc_id,))
                    for doc_id in doc_ids]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_separate_searchers_share_nothing_mutable(self, small_ontology,
                                                      small_corpus):
        # Two searchers over the same collection can run fully
        # interleaved because all their per-query state is local.
        first = KNDSearch(small_ontology, small_corpus)
        second = KNDSearch(small_ontology, small_corpus)
        pool = sorted(small_corpus.distinct_concepts())
        assert first.rds(pool[:3], 5).distances() == \
            second.rds(pool[:3], 5).distances()
