"""Tests for the packed Dewey arena and the shared distance cache.

The load-bearing property is *bit-for-bit exactness*: every arena kernel
must agree with the tuple-based reference paths (the pairwise baseline's
ancestor cones, ``concept_distance_dewey``, and DRC's D-Radix build) on
randomized ontologies, not just the paper's Figure 3 example.  The rest
covers the cache contract (LRU bounds, epoch invalidation, adoption
flush), the engine's batch API, and the observability wiring.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.pairwise import PairwiseDistanceBaseline
from repro.core.arena import (ConceptDistanceCache, PackedDeweyArena)
from repro.core.drc import DRC
from repro.core.engine import SearchEngine
from repro.core.knds import KNDSearch
from repro.corpus.document import Document
from repro.exceptions import EmptyDocumentError, UnknownConceptError
from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.ontology.dewey import DeweyIndex
from repro.ontology.distance import concept_distance_dewey
from repro.ontology.generators import snomed_like
from repro.types import common_prefix_length


@pytest.fixture(autouse=True)
def _sanitized_locks(lock_sanitizer):
    """Arena tests run under the runtime lock sanitizer; teardown fails
    on any observed lock-ordering violation."""
    yield lock_sanitizer


# ----------------------------------------------------------------------
# Exactness: arena kernels vs the tuple-based reference paths
# ----------------------------------------------------------------------
class TestExactEquivalence:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_pair_distance_matches_references_on_random_ontology(
            self, seed):
        ontology = snomed_like(120, seed=seed)
        dewey = DeweyIndex(ontology)
        arena = PackedDeweyArena(ontology, dewey)
        baseline = PairwiseDistanceBaseline(ontology)
        rng = random.Random(seed)
        concepts = sorted(ontology.concepts())
        for _ in range(200):
            first = rng.choice(concepts)
            second = rng.choice(concepts)
            packed = arena.concept_pair_distance(first, second)
            assert packed == baseline.concept_distance(first, second)
            assert packed == concept_distance_dewey(dewey, first, second)

    @pytest.mark.parametrize("seed", [5, 17])
    def test_document_distances_match_drc_bit_for_bit(self, seed):
        ontology = snomed_like(150, seed=seed)
        dewey = DeweyIndex(ontology)
        arena = PackedDeweyArena(ontology, dewey)
        drc = DRC(ontology, dewey)  # no arena: the tuple path
        rng = random.Random(seed + 1)
        concepts = sorted(ontology.concepts())
        for _ in range(40):
            doc = rng.sample(concepts, rng.randint(1, 12))
            query = rng.sample(concepts, rng.randint(1, 6))
            # Repeats exercise the frozenset dedupe of the tuple path.
            doc = doc + doc[:2]
            assert arena.doc_query_distance(doc, query) \
                == drc.document_query_distance(doc, query)
            assert arena.doc_doc_distance(doc, query) \
                == drc.document_document_distance(doc, query)

    def test_drc_arena_facade_matches_tuple_path(self, figure3,
                                                 figure3_dewey):
        plain = DRC(figure3, figure3_dewey)
        arena = PackedDeweyArena(figure3, figure3_dewey)
        fast = DRC(figure3, figure3_dewey, arena=arena)
        doc, query = ("R", "U", "F"), ("I", "P")
        assert fast.document_query_distance(doc, query) \
            == plain.document_query_distance(doc, query)
        assert fast.document_document_distance(doc, query) \
            == plain.document_document_distance(doc, query)
        assert fast.calls == 2  # arena-served calls still count

    def test_knds_results_identical_with_and_without_arena(
            self, figure3, example4):
        searcher = KNDSearch(figure3, example4)
        for concepts in (("F", "I"), ("U",), ("F", "I", "P")):
            with_arena = searcher.rds(concepts, 4)
            tuple_path = searcher.rds(concepts, 4, use_arena=False)
            assert with_arena.doc_ids() == tuple_path.doc_ids()
            assert with_arena.distances() == tuple_path.distances()
        sds_arena = searcher.sds("R U F".split(), 4)
        sds_tuple = searcher.sds("R U F".split(), 4, use_arena=False)
        assert sds_arena.distances() == sds_tuple.distances()

    def test_pairwise_baseline_with_arena_matches_cones(self, figure3):
        arena = PackedDeweyArena(figure3)
        fast = PairwiseDistanceBaseline(figure3, arena=arena)
        plain = PairwiseDistanceBaseline(figure3)
        doc, query = ("R", "U"), ("I", "F", "P")
        assert fast.document_query_distance(doc, query) \
            == plain.document_query_distance(doc, query)
        assert fast.pair_evaluations == plain.pair_evaluations

    def test_identical_concepts_short_circuit(self, figure3):
        arena = PackedDeweyArena(figure3)
        assert arena.concept_pair_distance("J", "J") == 0
        # The shortcut never touches the pair counters or the cache.
        assert arena.pair_lookups == 0
        assert len(arena.cache) == 0


# ----------------------------------------------------------------------
# Error contract
# ----------------------------------------------------------------------
class TestErrors:
    def test_unknown_concept_raises(self, figure3):
        arena = PackedDeweyArena(figure3)
        with pytest.raises(UnknownConceptError):
            arena.concept_id("NOPE")
        assert arena.cache_token(["F", "NOPE"]) is None

    def test_empty_sides_raise(self, figure3):
        arena = PackedDeweyArena(figure3)
        with pytest.raises(EmptyDocumentError):
            arena.doc_query_distance((), ("F",))
        with pytest.raises(EmptyDocumentError):
            arena.doc_doc_distance(("F",), ())


# ----------------------------------------------------------------------
# ConceptDistanceCache: bounds, stats, invalidation
# ----------------------------------------------------------------------
class TestConceptDistanceCache:
    def test_lru_eviction_with_tiny_capacity(self, figure3):
        cache = ConceptDistanceCache(max_entries=2)
        arena = PackedDeweyArena(figure3, cache=cache)
        arena.concept_pair_distance("F", "I")
        arena.concept_pair_distance("F", "P")
        arena.concept_pair_distance("R", "U")  # evicts the (F, I) entry
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        kernels_before = arena.pair_kernels
        arena.concept_pair_distance("F", "I")  # recomputed, not cached
        assert arena.pair_kernels == kernels_before + 1

    def test_symmetric_keys_share_one_entry(self, figure3):
        arena = PackedDeweyArena(figure3)
        first = arena.concept_pair_distance("F", "I")
        second = arena.concept_pair_distance("I", "F")
        assert first == second
        assert arena.pair_kernels == 1
        assert arena.cache.stats.hits == 1

    def test_zero_capacity_disables_caching(self, figure3):
        arena = PackedDeweyArena(figure3, cache_entries=0)
        arena.concept_pair_distance("F", "I")
        arena.concept_pair_distance("F", "I")
        assert arena.pair_kernels == 2
        assert len(arena.cache) == 0

    def test_invalidate_clears_and_bumps_epoch(self, figure3):
        cache = ConceptDistanceCache()
        arena = PackedDeweyArena(figure3, cache=cache)
        arena.concept_pair_distance("F", "I")
        assert len(cache) == 1
        epoch = cache.epoch
        cache.invalidate()
        assert len(cache) == 0
        assert cache.epoch == epoch + 1
        assert cache.stats.invalidations == 1

    def test_adopting_arena_flushes_foreign_entries(self, figure3):
        """Ontology rebuild: a new arena must not trust old-id entries."""
        cache = ConceptDistanceCache()
        old_arena = PackedDeweyArena(snomed_like(60, seed=9), cache=cache)
        foreign = list(old_arena.ontology.concepts())
        old_arena.doc_query_distance(foreign[:4], foreign[4:6])
        assert len(cache) > 0
        fresh = PackedDeweyArena(figure3, cache=cache)
        assert len(cache) == 0
        assert cache.stats.invalidations == 1
        assert fresh.cache is cache

    def test_arena_invalidate_resets_ids_and_epoch(self, figure3):
        arena = PackedDeweyArena(figure3)
        token_before = arena.cache_token(["F", "I"])
        arena.concept_pair_distance("F", "I")
        arena.invalidate()
        assert len(arena.cache) == 0
        assert arena.interned == 0
        assert arena.epoch == 1
        token_after = arena.cache_token(["F", "I"])
        assert token_before is not None and token_after is not None
        assert token_before[0] == 0 and token_after[0] == 1
        # Distances are unchanged after re-interning.
        assert arena.concept_pair_distance("F", "I") > 0


# ----------------------------------------------------------------------
# Engine integration: add_document, batch API
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_add_document_keeps_distance_cache_warm(self, figure3,
                                                    example4):
        """Corpus mutations must NOT flush concept distances: they
        depend only on the ontology.  The serve-layer QueryCache keys on
        the engine epoch instead (see tests/serve)."""
        engine = SearchEngine(figure3, example4)
        engine.rds(["F", "I"], k=3)
        engine.sds("R U".split(), k=3)
        cached_pairs = len(engine.arena.cache)
        arena_epoch = engine.arena.epoch
        engine.add_document(Document("d_new", concepts=("F", "U")))
        assert engine.epoch == 1
        assert engine.arena.epoch == arena_epoch
        assert len(engine.arena.cache) >= cached_pairs
        ranked = engine.rds(["F", "U"], k=3)
        assert "d_new" in ranked.doc_ids()

    def test_rds_many_matches_singles(self, figure3, example4):
        engine = SearchEngine(figure3, example4)
        queries = [["F", "I"], ["U"], ["I", "F"]]
        batch = engine.rds_many(queries, k=3)
        singles = [engine.rds(query, 3) for query in queries]
        assert [r.doc_ids() for r in batch] \
            == [r.doc_ids() for r in singles]
        assert [r.distances() for r in batch] \
            == [r.distances() for r in singles]

    def test_sds_many_accepts_mixed_query_forms(self, figure3, example4):
        engine = SearchEngine(figure3, example4)
        batch = engine.sds_many(["d2", ["R", "U"]], k=3)
        assert batch[0].doc_ids() == engine.sds("d2", 3).doc_ids()
        assert batch[1].doc_ids() == engine.sds(["R", "U"], 3).doc_ids()

    def test_batch_ddq_matches_per_document_calls(self, figure3):
        arena = PackedDeweyArena(figure3)
        docs = [("R", "U"), ("F",), ("I", "P")]
        query = ("F", "I")
        assert arena.batch_ddq(docs, query) \
            == [arena.doc_query_distance(doc, query) for doc in docs]


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestArenaMetrics:
    def test_counters_published_as_deltas(self, figure3):
        arena = PackedDeweyArena(figure3)
        arena.doc_query_distance(("R", "U"), ("F", "I"))  # pre-wiring
        registry = MetricsRegistry()
        arena.instrument(Observability(metrics=registry))
        arena.doc_query_distance(("R", "U"), ("F", "I"))  # all hits now
        snapshot = registry.snapshot()
        assert snapshot["arena.cache.hit"]["value"] == 4
        assert snapshot["arena.pair_kernels"]["value"] == 0
        assert snapshot["arena.pair_lookups"]["value"] == 4

    def test_knds_telemetry_counts_arena_calls(self, figure3, example4):
        searcher = KNDSearch(figure3, example4)
        stats = searcher.rds(("F", "I"), 4, covered_shortcut=False).stats
        assert stats.arena_calls > 0
        assert stats.drc_calls == 0
        tuple_stats = searcher.rds(("F", "I"), 4, covered_shortcut=False,
                                   use_arena=False).stats
        assert tuple_stats.arena_calls == 0
        assert tuple_stats.drc_calls == stats.arena_calls


# ----------------------------------------------------------------------
# The common_prefix_length fast path
# ----------------------------------------------------------------------
class TestCommonPrefixFastPath:
    def test_identical_object_short_circuits(self):
        address = (1, 2, 3, 4)
        assert common_prefix_length(address, address) == 4

    def test_equal_tuples_short_circuit(self):
        assert common_prefix_length((1, 2, 3), (1, 2, 3)) == 3

    def test_general_cases_unchanged(self):
        assert common_prefix_length((1, 2, 3), (1, 2, 4)) == 2
        assert common_prefix_length((), (1,)) == 0
        assert common_prefix_length((1,), (2,)) == 0
