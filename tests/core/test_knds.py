"""Unit tests for the kNDS search algorithm beyond the paper trace."""

from __future__ import annotations

import pytest

from repro.baselines.fullscan import FullScanSearch
from repro.core.knds import KNDSConfig, KNDSearch
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.exceptions import QueryError, UnknownConceptError


@pytest.fixture()
def searcher(small_ontology, small_corpus):
    return KNDSearch(small_ontology, small_corpus)


@pytest.fixture()
def oracle(small_ontology, small_corpus):
    return FullScanSearch(small_ontology, small_corpus)


def some_concepts(corpus, count, offset=0):
    pool = sorted(corpus.distinct_concepts())
    return tuple(pool[offset:offset + count])


class TestValidation:
    def test_empty_query_rejected(self, searcher):
        with pytest.raises(QueryError):
            searcher.rds([], k=3)

    def test_nonpositive_k_rejected(self, searcher, small_corpus):
        query = some_concepts(small_corpus, 2)
        with pytest.raises(QueryError):
            searcher.rds(query, k=0)

    def test_unknown_concept_rejected(self, searcher):
        with pytest.raises(UnknownConceptError):
            searcher.rds(["not-a-concept"], k=3)

    def test_invalid_error_threshold(self):
        with pytest.raises(QueryError):
            KNDSConfig(error_threshold=1.5)

    def test_invalid_queue_limit(self):
        with pytest.raises(QueryError):
            KNDSConfig(queue_limit=0)

    def test_requires_collection_or_indexes(self, small_ontology):
        with pytest.raises(QueryError):
            KNDSearch(small_ontology)


class TestSemantics:
    def test_duplicate_query_concepts_collapsed(self, searcher,
                                                small_corpus):
        concept = some_concepts(small_corpus, 1)[0]
        single = searcher.rds([concept], k=5)
        doubled = searcher.rds([concept, concept], k=5)
        assert single.distances() == doubled.distances()

    def test_k_larger_than_corpus_returns_everything(self, searcher,
                                                     small_corpus):
        query = some_concepts(small_corpus, 2)
        results = searcher.rds(query, k=10 * len(small_corpus))
        assert len(results) == len(small_corpus)
        distances = results.distances()
        assert distances == sorted(distances)

    def test_sds_accepts_document_or_concepts(self, searcher, small_corpus):
        document = next(iter(small_corpus))
        from_doc = searcher.sds(document, k=5)
        from_concepts = searcher.sds(document.concepts, k=5)
        assert from_doc.distances() == from_concepts.distances()

    def test_sds_query_from_corpus_ranks_itself_first(self, searcher,
                                                      small_corpus):
        document = next(iter(small_corpus))
        results = searcher.sds(document, k=3)
        assert results.results[0].distance == 0.0

    def test_results_sorted_by_distance(self, searcher, small_corpus):
        results = searcher.rds(some_concepts(small_corpus, 3), k=12)
        assert results.distances() == sorted(results.distances())

    def test_matches_oracle_on_fixture_corpus(self, searcher, oracle,
                                              small_corpus):
        query = some_concepts(small_corpus, 3, offset=5)
        mine = searcher.rds(query, k=7)
        truth = oracle.rds(query, k=7)
        assert mine.distances() == truth.distances()


class TestStats:
    def test_rds_stats_populated(self, searcher, small_corpus):
        results = searcher.rds(some_concepts(small_corpus, 3), k=5)
        stats = results.stats
        assert stats.total_seconds > 0
        assert stats.docs_examined >= 5
        assert stats.docs_touched >= stats.docs_examined
        assert stats.bfs_levels >= 1
        assert stats.nodes_visited >= 3

    def test_covered_shortcut_counts(self, searcher, small_corpus):
        query = some_concepts(small_corpus, 2)
        with_shortcut = searcher.rds(query, k=5,
                                     config=KNDSConfig(error_threshold=0.0))
        # eps=0 only analyzes fully covered docs, so every examination
        # should use the shortcut and DRC should stay silent.
        assert with_shortcut.stats.covered_shortcuts == (
            with_shortcut.stats.docs_examined)
        assert with_shortcut.stats.drc_calls == 0

    def test_epsilon_one_probes_eagerly(self, searcher, small_corpus):
        query = some_concepts(small_corpus, 2)
        eager = searcher.rds(query, k=5,
                             config=KNDSConfig(error_threshold=1.0))
        lazy = searcher.rds(query, k=5,
                            config=KNDSConfig(error_threshold=0.0))
        assert eager.stats.docs_examined >= lazy.stats.docs_examined
        assert eager.distances() == lazy.distances()

    def test_queue_limit_forces_rounds(self, searcher, small_corpus):
        query = some_concepts(small_corpus, 3)
        forced = searcher.rds(query, k=3, config=KNDSConfig(queue_limit=5))
        free = searcher.rds(query, k=3)
        assert forced.stats.forced_rounds >= 1
        assert forced.distances() == free.distances()


class TestObserver:
    def test_snapshots_emitted_per_round(self, searcher, small_corpus):
        events = []
        searcher.rds(some_concepts(small_corpus, 2), k=3,
                     observer=events.append)
        phases = [event["phase"] for event in events]
        assert "expanded" in phases
        assert "round" in phases
        rounds = [e for e in events if e["phase"] == "round"]
        assert all(e["global_lower"] is not None for e in rounds)


class TestProgressive:
    def test_iterator_yields_in_distance_order(self, searcher, small_corpus):
        query = some_concepts(small_corpus, 3)
        distances = [item.distance
                     for item in searcher.rds_iter(query, k=8)]
        assert distances == sorted(distances)
        assert len(distances) == 8

    def test_sds_iterator(self, searcher, small_corpus):
        document = next(iter(small_corpus))
        items = list(searcher.sds_iter(document, k=4))
        assert len(items) == 4
        assert items[0].distance == 0.0


class TestSingleDocumentCorpus:
    def test_degenerate_corpus(self, figure3):
        collection = DocumentCollection([Document("only", ["F"])])
        searcher = KNDSearch(figure3, collection)
        results = searcher.rds(["I"], k=3)
        assert results.doc_ids() == ["only"]
        assert results.results[0].distance == 6.0  # D(F, I)
