"""Unit tests for the Radix DAG machinery."""

from __future__ import annotations

from repro.core.radix import RadixDAG
from repro.ontology.dewey import DeweyIndex


def _walk(dag, address):
    """Follow an address through the radix edges; return the node or None."""
    node = dag.root
    remaining = tuple(address)
    while remaining:
        position = node.index.get(remaining[0])
        if position is None:
            return None
        label, child = node.children[position]
        if remaining[:len(label)] != label:
            return None
        remaining = remaining[len(label):]
        node = child
    return node


class TestInsertion:
    def test_every_inserted_address_is_reachable(self, figure3,
                                                 figure3_dewey):
        concepts = ("F", "R", "T", "V", "I", "L", "U")
        pairs = figure3_dewey.sorted_address_list(concepts)
        dag = RadixDAG.from_addresses(figure3, pairs)
        for address, concept in pairs:
            node = _walk(dag, address)
            assert node is not None, address
            assert node.concept_id == concept
            assert node.is_target

    def test_root_address_insertion(self, figure3):
        dag = RadixDAG(figure3)
        dag.insert((), "A")
        assert dag.root.is_target

    def test_duplicate_insertion_is_idempotent(self, figure3, figure3_dewey):
        pairs = figure3_dewey.sorted_address_list(("R",))
        dag = RadixDAG(figure3)
        for address, concept in pairs + pairs:
            dag.insert(address, concept)
        assert len(dag) == len(set(n.concept_id for n in dag.nodes()))
        # Edge labels concatenated along any path reproduce an address.
        assert _walk(dag, (1, 1, 1, 2, 1, 1)).concept_id == "R"

    def test_first_component_invariant(self, figure3, figure3_dewey):
        concepts = tuple("FRTVILU")
        dag = RadixDAG.from_addresses(
            figure3, figure3_dewey.sorted_address_list(concepts))
        for node in dag.nodes():
            first_components = [label[0] for label, _child in node.children]
            assert len(first_components) == len(set(first_components))
            assert node.index == {
                label[0]: position
                for position, (label, _child) in enumerate(node.children)
            }

    def test_registry_merges_multi_address_concepts(self, figure3,
                                                    figure3_dewey):
        dag = RadixDAG.from_addresses(
            figure3, figure3_dewey.sorted_address_list(("R", "V")))
        # R and V each have two addresses but exactly one node.
        ids = [node.concept_id for node in dag.nodes()]
        assert ids.count("R") == 1
        assert ids.count("V") == 1


class TestStructure:
    def test_targets(self, figure3, figure3_dewey):
        dag = RadixDAG.from_addresses(
            figure3, figure3_dewey.sorted_address_list(("R", "V")))
        assert {node.concept_id for node in dag.targets()} == {"R", "V"}

    def test_topological_order(self, figure3, figure3_dewey):
        dag = RadixDAG.from_addresses(
            figure3, figure3_dewey.sorted_address_list(tuple("FRTVILU")))
        order = dag.topological_order()
        assert len(order) == len(dag)
        position = {id(node): index for index, node in enumerate(order)}
        for node in dag.nodes():
            for _label, child in node.children:
                assert position[id(node)] < position[id(child)]

    def test_edges_snapshot_labels(self, figure3, figure3_dewey):
        dag = RadixDAG.from_addresses(
            figure3, figure3_dewey.sorted_address_list(("F",)))
        assert dag.edges() == {("A", "3.1", "F")}


class TestRandomizedStructure:
    def test_generated_ontology_addresses_all_reachable(self, small_ontology):
        import random
        rng = random.Random(4)
        dewey = DeweyIndex(small_ontology)
        concepts = rng.sample(list(small_ontology.concepts()), 25)
        pairs = dewey.sorted_address_list(concepts)
        dag = RadixDAG.from_addresses(small_ontology, pairs)
        for address, concept in pairs:
            node = _walk(dag, address)
            assert node is not None and node.concept_id == concept
