"""Unit tests for query expansion and weighted distances."""

from __future__ import annotations

import pytest

from repro.core.drc import DRC
from repro.core.expansion import QueryExpander, merged_rds
from repro.core.knds import KNDSearch
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.datasets import example4_collection
from repro.exceptions import QueryError
from repro.ontology.distance import document_query_distance
from repro.ontology.measures import InformationContent
from repro.ontology.weighting import (
    information_content_weights,
    weighted_distance_from_dradix,
    weighted_document_document_distance,
    weighted_document_query_distance,
    weighted_rerank,
)


class TestQueryExpander:
    def test_radius_zero_is_identity_with_weight_one(self, figure3):
        expander = QueryExpander(figure3, radius=0)
        assert expander.expand(["F", "I"]) == {"F": 1.0, "I": 1.0}

    def test_radius_one_adds_neighbors(self, figure3):
        expander = QueryExpander(figure3, radius=1, decay=0.5)
        weights = expander.expand(["F"])
        assert weights["F"] == 1.0
        assert weights["D"] == 0.5  # parent
        assert weights["J"] == 0.5 and weights["H"] == 0.5  # children
        assert "A" not in weights

    def test_min_distance_wins_for_overlapping_origins(self, figure3):
        expander = QueryExpander(figure3, radius=1, decay=0.5)
        weights = expander.expand(["F", "J"])
        # J is an original concept and also F's neighbor: weight 1 wins.
        assert weights["J"] == 1.0

    def test_expanded_concepts_sorted(self, figure3):
        expander = QueryExpander(figure3, radius=1)
        assert expander.expanded_concepts(["F"]) == ["D", "F", "H", "J"]

    def test_validation(self, figure3):
        with pytest.raises(QueryError):
            QueryExpander(figure3, radius=-1)
        with pytest.raises(QueryError):
            QueryExpander(figure3, decay=0.0)


class TestWeightedDistances:
    def test_uniform_weights_match_unweighted(self, figure3):
        doc, query = ("F", "R", "T", "V"), ("I", "L", "U")
        assert weighted_document_query_distance(
            figure3, doc, query) == document_query_distance(
            figure3, doc, query)

    def test_weights_scale_contributions(self, figure3):
        doc, query = ("F", "R", "T", "V"), ("I", "L", "U")
        # Ddc values are 4, 2, 1; doubling I's weight adds 4.
        weighted = weighted_document_query_distance(
            figure3, doc, query, weights={"I": 2.0})
        assert weighted == 4 * 2 + 2 + 1

    def test_normalized_matches_footnote3(self, figure3):
        doc, query = ("F", "R", "T", "V"), ("I", "L", "U")
        normalized = weighted_document_query_distance(
            figure3, doc, query, normalize=True)
        assert normalized == pytest.approx(7 / 3)

    def test_weighted_ddd_symmetric(self, figure3):
        weights = {"F": 2.0, "I": 3.0, "R": 0.5}
        forward = weighted_document_document_distance(
            figure3, ("F", "R"), ("I", "O"), weights=weights)
        backward = weighted_document_document_distance(
            figure3, ("I", "O"), ("F", "R"), weights=weights)
        assert forward == pytest.approx(backward)

    def test_negative_weight_rejected(self, figure3):
        with pytest.raises(QueryError):
            weighted_document_query_distance(
                figure3, ("F",), ("I",), weights={"I": -1.0})

    def test_zero_total_weight_rejected(self, figure3):
        with pytest.raises(QueryError):
            weighted_document_query_distance(
                figure3, ("F",), ("I",), weights={"I": 0.0})

    def test_dradix_weighted_matches_brute_force(self, figure3):
        doc, query = ("F", "R", "T", "V"), ("I", "L", "U")
        weights = {"I": 2.0, "L": 1.0, "U": 0.25, "F": 3.0, "V": 0.5}
        drc = DRC(figure3)
        dradix = drc.build(doc, query)
        assert weighted_distance_from_dradix(
            dradix, weights=weights, kind="ddq"
        ) == weighted_document_query_distance(
            figure3, doc, query, weights=weights)
        assert weighted_distance_from_dradix(
            dradix, weights=weights, kind="ddd"
        ) == pytest.approx(weighted_document_document_distance(
            figure3, doc, query, weights=weights))

    def test_unknown_kind(self, figure3):
        dradix = DRC(figure3).build(("F",), ("I",))
        with pytest.raises(QueryError):
            weighted_distance_from_dradix(dradix, kind="nope")

    def test_ic_weights(self, figure3):
        ic = InformationContent.from_frequencies(
            figure3, {"U": 2, "L": 3, "T": 1})
        weights = information_content_weights(ic, ["U", "L"])
        assert weights["U"] > weights["L"] > 0


class TestWeightedRerank:
    def test_rerank_reorders_by_weighted_distance(self, figure3):
        collection = DocumentCollection([
            Document("near_i", ["G"]),   # distance 1 to I, 6 to L... far
            Document("near_l", ["H"]),   # distance 1 to L
        ])
        searcher = KNDSearch(figure3, collection)
        base = searcher.rds(("I", "L"), k=2)
        heavy_l = weighted_rerank(
            figure3, base, searcher.forward.concepts, ("I", "L"),
            weights={"I": 0.01, "L": 10.0})
        assert heavy_l.doc_ids()[0] == "near_l"
        heavy_i = weighted_rerank(
            figure3, base, searcher.forward.concepts, ("I", "L"),
            weights={"I": 10.0, "L": 0.01})
        assert heavy_i.doc_ids()[0] == "near_i"


class TestMergedRDS:
    def test_exact_matches_manual_footnote3_score(self, figure3):
        collection = example4_collection()
        sub_queries = [("F", "I"), ("U",)]
        results = merged_rds(figure3, collection, sub_queries, k=3)
        drc = DRC(figure3)
        for item in results:
            document = collection.get(item.doc_id)
            expected = (
                drc.document_query_distance(document.concepts, ("F", "I"))
                / 2
                + drc.document_query_distance(document.concepts, ("U",))
            )
            assert item.distance == pytest.approx(expected)
        assert results.distances() == sorted(results.distances())

    def test_pooled_agrees_on_easy_corpus(self, figure3):
        collection = example4_collection()
        sub_queries = [("F", "I"), ("U",)]
        exact = merged_rds(figure3, collection, sub_queries, k=2)
        pooled = merged_rds(figure3, collection, sub_queries, k=2,
                            exact=False)
        assert exact.distances() == pooled.distances()

    def test_validation(self, figure3):
        collection = example4_collection()
        with pytest.raises(QueryError):
            merged_rds(figure3, collection, [], k=2)
        with pytest.raises(QueryError):
            merged_rds(figure3, collection, [()], k=2)
        with pytest.raises(QueryError):
            merged_rds(figure3, collection, [("F",)], k=0)
