"""Tests for :mod:`repro.obs` — tracing, metrics, events, integration.

Covers the three legs in isolation (span nesting and exporters, registry
semantics and exposition formats, event schemas and ordering) and then
end-to-end: an instrumented :class:`~repro.core.engine.SearchEngine`
produces a nested trace (engine -> algorithm -> BFS level -> index I/O),
a metrics snapshot with the headline series, and a typed event stream
whose ``expanded`` events precede their ``round`` events with exactly one
``terminated`` event at the end.
"""

from __future__ import annotations

import json

import pytest

from repro.core.engine import SearchEngine
from repro.core.results import QueryStats
from repro.datasets import example4_collection, figure3_ontology
from repro.obs import Observability
from repro.obs.events import (EVENT_TYPES, EventLog, EventStream,
                              ExpandedEvent, RoundEvent, SNAPSHOT_SCHEMA,
                              TerminatedEvent)
from repro.obs.metrics import (Histogram, MetricsRegistry,
                               QUERY_TELEMETRY_FIELDS, QueryTelemetry)
from repro.obs.tracing import NULL_TRACER, Tracer


def _snapshot_fields(**overrides):
    fields = {"level": 1, "examined": 2, "candidates": 3, "frontier": 4,
              "top": [], "kth_distance": None, "global_lower": 0.5}
    fields.update(overrides)
    return fields


def make_obs() -> Observability:
    """A fresh, fully-enabled bundle (private registry, live tracer)."""
    return Observability(tracer=Tracer(), metrics=MetricsRegistry(),
                         events=EventStream())


class TestTracer:
    def test_nested_spans_record_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer", k=3):
            with tracer.span("inner"):
                pass
        spans = {span["name"]: span for span in tracer.to_dicts()}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["outer"]["parent_id"] is None
        assert spans["outer"]["attributes"]["k"] == 3

    def test_set_attribute_and_duration(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.set_attribute("rows", 7)
        (record,) = tracer.to_dicts()
        assert record["attributes"]["rows"] == 7
        assert record["duration"] >= 0.0

    def test_record_leaf_span(self):
        tracer = Tracer()
        with tracer.span("parent"):
            tracer.record("io", 1.0, 1.5, rows=9)
        spans = {span["name"]: span for span in tracer.to_dicts()}
        assert spans["io"]["parent_id"] == spans["parent"]["span_id"]
        assert spans["io"]["duration"] == pytest.approx(0.5)

    def test_export_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        target = tmp_path / "trace.jsonl"
        tracer.export_jsonl(target)
        lines = [json.loads(line)
                 for line in target.read_text().splitlines()]
        header, *records = lines
        assert header["record"] == "header"
        assert header["spans"] == 2
        assert {record["name"] for record in records} == {"a", "b"}

    def test_export_chrome_format(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        target = tmp_path / "trace.json"
        tracer.export_chrome(target)
        payload = json.loads(target.read_text())
        (event,) = payload["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "a"
        assert event["dur"] >= 0

    def test_export_chrome_roundtrip_nesting_and_monotonicity(
            self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        target = tmp_path / "trace.json"
        assert tracer.export_chrome(target) == 3
        payload = json.loads(target.read_text())
        events = {event["name"]: event for event in payload["traceEvents"]}
        assert len(events) == 3
        for event in events.values():
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        # Children sit inside the parent's [ts, ts + dur] window...
        outer = events["outer"]
        for child in ("first", "second"):
            assert events[child]["ts"] >= outer["ts"]
            assert (events[child]["ts"] + events[child]["dur"]
                    <= outer["ts"] + outer["dur"])
        # ...and sibling start times are monotone in creation order.
        assert events["first"]["ts"] <= events["second"]["ts"]

    def test_export_chrome_empty_trace(self, tmp_path):
        tracer = Tracer()
        target = tmp_path / "empty.json"
        assert tracer.export_chrome(target) == 0
        payload = json.loads(target.read_text())
        assert payload["traceEvents"] == []
        assert payload["displayTimeUnit"] == "ms"

    def test_null_tracer_collects_nothing(self):
        with NULL_TRACER.span("anything", k=1) as span:
            span.set_attribute("x", 1)
        NULL_TRACER.record("io", 0.0, 1.0)
        assert NULL_TRACER.to_dicts() == []


class TestMetrics:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        registry.gauge("depth").set(4)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        snapshot = registry.snapshot()
        assert snapshot["hits"]["value"] == 3
        assert snapshot["depth"]["value"] == 4
        assert snapshot["lat"]["count"] == 1

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("knds.nodes_visited").inc(5)
        registry.histogram("query.latency_seconds",
                           buckets=(0.1,)).observe(0.05)
        text = registry.to_prometheus()
        assert "knds_nodes_visited 5" in text
        assert 'query_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'query_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "query_latency_seconds_count 1" in text

    def test_prometheus_escapes_help_and_label_values(self):
        registry = MetricsRegistry()
        registry.counter("x", help="path C:\\temp\nsecond line").inc()
        text = registry.to_prometheus()
        (help_line,) = [line for line in text.splitlines()
                        if line.startswith("# HELP x ")]
        assert help_line == "# HELP x path C:\\\\temp\\nsecond line"
        # The raw newline must not have split the HELP comment: every
        # physical line is a comment or a sample, never a continuation.
        assert all(line.startswith("#") or line.startswith("x ")
                   for line in text.splitlines())

    def test_histogram_quantile_interpolates(self):
        histogram = Histogram("t", buckets=(10.0, 20.0, 30.0))
        for value in (5, 15, 15, 25):
            histogram.observe(value)
        # target rank 2 falls at the top of the (10, 20] bucket
        assert histogram.quantile(0.5) == pytest.approx(15.0)
        assert (histogram.quantile(0.25)
                <= histogram.quantile(0.5)
                <= histogram.quantile(0.95)
                <= histogram.quantile(0.99))

    def test_histogram_quantile_inf_bucket_clamps(self):
        histogram = Histogram("t", buckets=(1.0, 2.0))
        histogram.observe(100.0)  # lands in +Inf
        # No finite upper bound to interpolate toward: clamp to 2.0.
        assert histogram.quantile(0.5) == 2.0
        assert histogram.quantile(1.0) == 2.0

    def test_histogram_quantile_edge_cases(self):
        import math
        histogram = Histogram("t", buckets=(1.0, 2.0))
        assert math.isnan(histogram.quantile(0.5))
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        histogram.observe(0.5)
        assert 0.0 <= histogram.quantile(0.5) <= 1.0

    def test_histogram_quantile_empty_is_nan_at_extremes(self):
        # Pinned: an empty histogram answers nan for EVERY q, including
        # the 0.0/1.0 extremes — never 0.0, which would read as "great
        # latency" on a dashboard that has seen no data.
        import math
        histogram = Histogram("t", buckets=(1.0, 2.0))
        for q in (0.0, 0.5, 1.0):
            assert math.isnan(histogram.quantile(q))

    def test_histogram_quantile_q0_is_first_occupied_bucket_floor(self):
        # Pinned: q=0.0 interpolates to the lower edge of the first
        # occupied bucket (rank 0 of the cumulative distribution).
        histogram = Histogram("t", buckets=(10.0, 20.0, 30.0))
        histogram.observe(25.0)  # only the (20, 30] bucket is occupied
        assert histogram.quantile(0.0) == pytest.approx(20.0)

    def test_histogram_quantile_q1_is_last_occupied_upper_bound(self):
        # Pinned: q=1.0 is the upper bound of the last occupied finite
        # bucket — and the +Inf bucket clamps to the largest finite
        # bound rather than answering inf.
        histogram = Histogram("t", buckets=(10.0, 20.0, 30.0))
        histogram.observe(5.0)
        histogram.observe(25.0)
        assert histogram.quantile(1.0) == pytest.approx(30.0)
        histogram.observe(999.0)  # +Inf bucket
        assert histogram.quantile(1.0) == pytest.approx(30.0)

    def test_histogram_quantile_monotone_in_q(self):
        histogram = Histogram("t", buckets=(1.0, 2.0, 5.0, 10.0))
        for value in (0.5, 1.5, 1.5, 3.0, 7.0, 50.0):
            histogram.observe(value)
        quantiles = [histogram.quantile(q / 20.0) for q in range(21)]
        assert quantiles == sorted(quantiles)

    def test_write_infers_format_from_suffix(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        json_path = tmp_path / "m.json"
        prom_path = tmp_path / "m.prom"
        registry.write(json_path)
        registry.write(prom_path)
        assert json.loads(json_path.read_text())["hits"]["value"] == 1
        assert "hits 1" in prom_path.read_text()

    def test_query_telemetry_publish_mapping(self):
        registry = MetricsRegistry()
        telemetry = QueryTelemetry()
        telemetry.nodes_visited = 11
        telemetry.docs_pruned = 4
        telemetry.total_seconds = 1.0  # never published as a counter
        telemetry.publish(registry, prefix="knds")
        snapshot = registry.snapshot()
        assert snapshot["knds.nodes_visited"]["value"] == 11
        assert snapshot["knds.candidates_pruned"]["value"] == 4
        assert "knds.total_seconds" not in snapshot

    def test_query_stats_from_metrics(self):
        telemetry = QueryTelemetry()
        telemetry.docs_examined = 9
        telemetry.drc_calls = 2
        stats = QueryStats.from_metrics(telemetry)
        assert stats.docs_examined == 9
        assert stats.drc_calls == 2
        assert QueryStats.FIELDS == QUERY_TELEMETRY_FIELDS


class TestEvents:
    def test_schemas_are_stable(self):
        assert ExpandedEvent.SCHEMA == SNAPSHOT_SCHEMA
        assert RoundEvent.SCHEMA == SNAPSHOT_SCHEMA
        assert TerminatedEvent.SCHEMA == SNAPSHOT_SCHEMA + ("reason",)
        assert set(EVENT_TYPES) == {"expanded", "round", "terminated"}

    def test_events_behave_like_dicts(self):
        event = ExpandedEvent(**_snapshot_fields())
        assert event["phase"] == "expanded"
        assert event.phase == "expanded"
        assert event.level == 1
        assert dict(event)["examined"] == 2

    def test_schema_validation(self):
        with pytest.raises(ValueError):
            ExpandedEvent(level=1)  # missing fields
        with pytest.raises(ValueError):
            ExpandedEvent(**_snapshot_fields(), bogus=1)

    def test_terminated_reason(self):
        event = TerminatedEvent(**_snapshot_fields(), reason="converged")
        assert event.reason == "converged"

    def test_event_stream_fanout_and_unsubscribe(self):
        stream = EventStream()
        first, second = EventLog(), EventLog()
        stream.subscribe(first)
        stream.subscribe(second)
        stream(ExpandedEvent(**_snapshot_fields()))
        stream.unsubscribe(second)
        stream(RoundEvent(**_snapshot_fields()))
        assert first.phases() == ["expanded", "round"]
        assert second.phases() == ["expanded"]


@pytest.fixture()
def engine():
    with SearchEngine(figure3_ontology(), example4_collection()) as eng:
        yield eng


class TestEngineIntegration:
    def test_trace_has_expected_nesting(self, engine):
        obs = make_obs()
        engine.instrument(obs)
        engine.rds(["F", "I"], k=2)
        spans = obs.tracer.to_dicts()
        by_id = {span["span_id"]: span for span in spans}
        names = [span["name"] for span in spans]
        assert "engine.query" in names
        assert "knds.rds" in names
        assert "knds.level" in names
        knds = next(s for s in spans if s["name"] == "knds.rds")
        assert by_id[knds["parent_id"]]["name"] == "engine.query"
        level = next(s for s in spans if s["name"] == "knds.level")
        assert by_id[level["parent_id"]]["name"] == "knds.rds"
        io = next(s for s in spans if s["name"] == "index.postings")
        assert by_id[io["parent_id"]]["name"] == "knds.level"

    def test_metrics_snapshot_has_headline_series(self, engine):
        obs = make_obs()
        engine.instrument(obs)
        engine.rds(["F", "I"], k=2)
        snapshot = obs.metrics.snapshot()
        assert snapshot["knds.nodes_visited"]["value"] > 0
        assert "drc.probes" in snapshot
        assert snapshot["query.latency_seconds"]["count"] == 1
        assert snapshot["query.count"]["value"] == 1

    def test_stats_match_published_counters(self, engine):
        obs = make_obs()
        engine.instrument(obs)
        results = engine.rds(["F", "I"], k=2)
        snapshot = obs.metrics.snapshot()
        stats = results.stats
        assert snapshot["knds.nodes_visited"]["value"] == \
            stats.nodes_visited
        assert snapshot["knds.docs_examined"]["value"] == \
            stats.docs_examined

    def test_event_ordering_expanded_before_round(self, engine):
        obs = make_obs()
        log = EventLog()
        obs.events.subscribe(log)
        engine.instrument(obs)
        engine.rds(["F", "I"], k=2)
        phases = log.phases()
        assert phases, "no events emitted"
        assert phases[-1] == "terminated"
        assert phases.count("terminated") == 1
        # Per level: the expansion snapshot precedes the analysis round.
        body = phases[:-1]
        assert body[::2] == ["expanded"] * (len(body) // 2)
        assert body[1::2] == ["round"] * (len(body) // 2)
        levels = [event["level"] for event in log
                  if event["phase"] == "expanded"]
        assert levels == sorted(levels)

    def test_terminated_event_on_early_termination(self, engine):
        obs = make_obs()
        log = EventLog()
        obs.events.subscribe(log)
        engine.instrument(obs)
        # k=1 on Example 4 converges before the ontology is exhausted.
        engine.rds(["F"], k=1)
        terminal = log[-1]
        assert isinstance(terminal, TerminatedEvent)
        assert terminal.reason in {"converged", "exhausted"}
        assert set(SNAPSHOT_SCHEMA) <= set(terminal)

    def test_observer_and_stream_both_receive_events(self, engine):
        obs = make_obs()
        stream_log = EventLog()
        obs.events.subscribe(stream_log)
        engine.instrument(obs)
        observer_log = EventLog()
        engine.rds(["F", "I"], k=2, observer=observer_log)
        assert observer_log.phases() == stream_log.phases()

    def test_sqlite_backend_reports_io(self):
        obs = make_obs()
        with SearchEngine(figure3_ontology(), example4_collection(),
                          backend="sqlite", obs=obs) as engine:
            engine.rds(["F", "I"], k=2)
        snapshot = obs.metrics.snapshot()
        assert snapshot["index.rows_read"]["value"] > 0
        assert snapshot["index.io_seconds"]["value"] > 0
        io_spans = [span for span in obs.tracer.to_dicts()
                    if span["name"].startswith("index.")]
        assert io_spans
        assert all(span["attributes"]["backend"] == "sqlite"
                   for span in io_spans)

    def test_uninstrumented_engine_emits_nothing(self, engine):
        results = engine.rds(["F", "I"], k=2)
        assert results.doc_ids() == ["d2", "d3"]
        assert engine._obs is None

    def test_baselines_publish_counters(self, engine):
        obs = make_obs()
        engine.instrument(obs)
        engine.rds(["F", "I"], k=2, algorithm="fullscan")
        engine.rds(["F", "I"], k=2, algorithm="ta")
        snapshot = obs.metrics.snapshot()
        assert snapshot["fullscan.docs_examined"]["value"] == \
            len(engine.collection)
        assert snapshot["ta.sorted_accesses"]["value"] > 0
        assert snapshot["query.count"]["value"] == 2


class TestEngineContextManager:
    def test_enter_returns_engine_and_exit_closes(self):
        with SearchEngine(figure3_ontology(), example4_collection(),
                          backend="sqlite") as engine:
            assert engine.rds(["F", "I"], k=2).doc_ids() == ["d2", "d3"]
            store = engine._store
        with pytest.raises(Exception):
            store.inverted.postings("F")  # connection closed

    def test_close_idempotent_for_memory_backend(self):
        engine = SearchEngine(figure3_ontology(), example4_collection())
        with engine as same:
            assert same is engine
        engine.close()  # second close is harmless


class TestCLIObservability:
    def _ontology_corpus(self, tmp_path):
        from repro.corpus.io import save_jsonl
        from repro.ontology.io.csvio import save_csv
        save_csv(figure3_ontology(), tmp_path / "o.concepts.csv",
                 tmp_path / "o.edges.csv")
        save_jsonl(example4_collection(), tmp_path / "docs.jsonl")
        return str(tmp_path / "o"), str(tmp_path / "docs.jsonl")

    def test_search_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro.cli import main
        prefix, corpus = self._ontology_corpus(tmp_path)
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(["search", "--ontology", prefix, "--corpus", corpus,
                     "-k", "2", "--trace", str(trace),
                     "--metrics", str(metrics),
                     "rds", "--query", "F,I"])
        assert code == 0
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        assert records[0]["record"] == "header"
        assert any(r.get("name") == "engine.query" for r in records[1:])
        snapshot = json.loads(metrics.read_text())
        assert "knds.nodes_visited" in snapshot
        assert "query.latency_seconds" in snapshot
        out = capsys.readouterr().out
        assert "trace" in out and "metrics" in out

    def test_search_chrome_and_prometheus_formats(self, tmp_path):
        from repro.cli import main
        prefix, corpus = self._ontology_corpus(tmp_path)
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.prom"
        code = main(["search", "--ontology", prefix, "--corpus", corpus,
                     "-k", "2", "--trace", str(trace),
                     "--trace-format", "chrome",
                     "--metrics", str(metrics),
                     "--metrics-format", "prometheus",
                     "rds", "--query", "F,I"])
        assert code == 0
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]
        assert "knds_nodes_visited" in metrics.read_text()

    def test_search_without_flags_stays_uninstrumented(self, tmp_path,
                                                       capsys):
        from repro.cli import main
        prefix, corpus = self._ontology_corpus(tmp_path)
        code = main(["search", "--ontology", prefix, "--corpus", corpus,
                     "-k", "2", "rds", "--query", "F,I"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace" not in out.splitlines()[-1]
