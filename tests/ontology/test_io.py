"""Unit tests for the RF2 / UMLS / OBO / CSV ontology parsers."""

from __future__ import annotations

import pytest

from repro.exceptions import ParseError
from repro.ontology.builder import VIRTUAL_ROOT_ID
from repro.ontology.io.csvio import load_csv, save_csv
from repro.ontology.io.obo import load_obo
from repro.ontology.io.rf2 import IS_A_TYPE_ID, load_rf2
from repro.ontology.io.umls import load_umls


RF2_CONCEPTS = """\
id\teffectiveTime\tactive\tmoduleId\tdefinitionStatusId
100\t20230101\t1\tm\tp
200\t20230101\t1\tm\tp
300\t20230101\t1\tm\tp
400\t20230101\t0\tm\tp
"""

RF2_RELATIONSHIPS = (
    "id\teffectiveTime\tactive\tmoduleId\tsourceId\tdestinationId\t"
    "relationshipGroup\ttypeId\tcharacteristicTypeId\tmodifierId\n"
    f"1\t20230101\t1\tm\t200\t100\t0\t{IS_A_TYPE_ID}\tc\tmo\n"
    f"2\t20230101\t1\tm\t300\t100\t0\t{IS_A_TYPE_ID}\tc\tmo\n"
    f"3\t20230101\t1\tm\t300\t200\t0\t999\tc\tmo\n"          # not is-a
    f"4\t20230101\t0\t m\t300\t200\t0\t{IS_A_TYPE_ID}\tc\tmo\n"  # inactive
    f"5\t20230101\t1\tm\t400\t100\t0\t{IS_A_TYPE_ID}\tc\tmo\n"   # inactive src
)

RF2_DESCRIPTIONS = (
    "id\teffectiveTime\tactive\tmoduleId\tconceptId\tlanguageCode\ttypeId\t"
    "term\tcaseSignificanceId\n"
    "10\t20230101\t1\tm\t100\ten\t900000000000003001\tclinical finding\tci\n"
    "11\t20230101\t1\tm\t100\ten\t900000000000013009\tfinding\tci\n"
    "12\t20230101\t1\tm\t200\ten\t900000000000003001\theart disease\tci\n"
)


class TestRF2:
    @pytest.fixture()
    def paths(self, tmp_path):
        concepts = tmp_path / "sct2_Concept.txt"
        relationships = tmp_path / "sct2_Relationship.txt"
        descriptions = tmp_path / "sct2_Description.txt"
        concepts.write_text(RF2_CONCEPTS)
        relationships.write_text(RF2_RELATIONSHIPS)
        descriptions.write_text(RF2_DESCRIPTIONS)
        return concepts, relationships, descriptions

    def test_loads_active_is_a_hierarchy(self, paths):
        concepts, relationships, _descriptions = paths
        ontology = load_rf2(concepts, relationships)
        assert len(ontology) == 3  # 400 inactive
        assert ontology.root == "100"
        assert set(ontology.children("100")) == {"200", "300"}
        assert list(ontology.children("200")) == []  # typeId 999 skipped

    def test_descriptions_set_labels_and_synonyms(self, paths):
        ontology = load_rf2(*paths)
        assert ontology.label("100") == "clinical finding"
        assert ontology.synonyms("100") == ("finding",)
        assert ontology.label("200") == "heart disease"
        assert ontology.label("300") == "300"

    def test_missing_column_raises(self, tmp_path, paths):
        _concepts, relationships, _descriptions = paths
        bad = tmp_path / "bad.txt"
        bad.write_text("identifier\tactive\n1\t1\n")
        with pytest.raises(ParseError):
            load_rf2(bad, relationships)

    def test_empty_file_raises(self, tmp_path, paths):
        _concepts, relationships, _descriptions = paths
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        with pytest.raises(ParseError):
            load_rf2(empty, relationships)


MRCONSO = """\
C01|ENG|P|L1|PF|S1|Y|A1||||SRC|TTY|X1|root concept|0|N||
C02|ENG|P|L2|PF|S2|Y|A2||||SRC|TTY|X2|heart disease|0|N||
C02|ENG|S|L3|VO|S3|N|A3||||SRC|TTY|X3|cardiac disease|0|N||
C03|ENG|P|L4|PF|S4|Y|A4||||SRC|TTY|X4|valve disorder|0|N||
C04|FRE|P|L5|PF|S5|Y|A5||||SRC|TTY|X5|maladie|0|N||
"""

MRREL = """\
C02|A2|SCUI|PAR|C01|A1|SCUI|isa|R1||SRC|SRC|||N||
C03|A4|SCUI|PAR|C02|A2|SCUI|isa|R2||SRC|SRC|||N||
C01|A1|SCUI|CHD|C03|A4|SCUI|other_rel|R3||SRC|SRC|||N||
"""


class TestUMLS:
    @pytest.fixture()
    def paths(self, tmp_path):
        mrconso = tmp_path / "MRCONSO.RRF"
        mrrel = tmp_path / "MRREL.RRF"
        mrconso.write_text(MRCONSO)
        mrrel.write_text(MRREL)
        return mrconso, mrrel

    def test_loads_cui_hierarchy(self, paths):
        ontology = load_umls(*paths)
        assert "C04" not in ontology  # non-English
        assert ontology.root == "C01"
        assert list(ontology.children("C01")) == ["C02"]
        assert list(ontology.children("C02")) == ["C03"]

    def test_labels_and_synonyms(self, paths):
        ontology = load_umls(*paths)
        assert ontology.label("C02") == "heart disease"
        assert ontology.synonyms("C02") == ("cardiac disease",)

    def test_isa_only_filters_other_relations(self, paths):
        ontology = load_umls(*paths)
        # The CHD row carries RELA=other_rel and must be skipped.
        assert "C03" not in set(ontology.children("C01"))

    def test_non_isa_included_when_disabled(self, paths):
        ontology = load_umls(*paths, isa_only=False)
        assert set(ontology.children("C01")) == {"C02", "C03"}


OBO = """\
format-version: 1.2

[Term]
id: GO:0001
name: biological process

[Term]
id: GO:0002
name: metabolic process
is_a: GO:0001 ! biological process
synonym: "metabolism" EXACT []

[Term]
id: GO:0003
name: obsolete thing
is_a: GO:0001
is_obsolete: true

[Typedef]
id: part_of
"""


class TestOBO:
    def test_loads_terms_and_hierarchy(self, tmp_path):
        path = tmp_path / "go.obo"
        path.write_text(OBO)
        ontology = load_obo(path)
        assert ontology.root == "GO:0001"
        assert list(ontology.children("GO:0001")) == ["GO:0002"]
        assert ontology.label("GO:0002") == "metabolic process"
        assert ontology.synonyms("GO:0002") == ("metabolism",)

    def test_obsolete_terms_skipped(self, tmp_path):
        path = tmp_path / "go.obo"
        path.write_text(OBO)
        ontology = load_obo(path)
        assert "GO:0003" not in ontology

    def test_multi_root_gets_virtual_root(self, tmp_path):
        path = tmp_path / "multi.obo"
        path.write_text("[Term]\nid: X:1\nname: a\n\n[Term]\nid: X:2\nname: b\n")
        ontology = load_obo(path)
        assert ontology.root == VIRTUAL_ROOT_ID


class TestCSVRoundTrip:
    def test_figure3_roundtrip_preserves_dewey(self, figure3, tmp_path):
        concepts = tmp_path / "concepts.csv"
        edges = tmp_path / "edges.csv"
        save_csv(figure3, concepts, edges)
        reloaded = load_csv(concepts, edges)
        assert list(reloaded.concepts()) == list(figure3.concepts())
        for concept in figure3.concepts():
            assert list(reloaded.children(concept)) == list(
                figure3.children(concept))
            assert reloaded.label(concept) == figure3.label(concept)

    def test_generated_roundtrip(self, small_ontology, tmp_path):
        concepts = tmp_path / "c.csv"
        edges = tmp_path / "e.csv"
        save_csv(small_ontology, concepts, edges)
        reloaded = load_csv(concepts, edges)
        assert reloaded.edge_count() == small_ontology.edge_count()

    def test_malformed_header(self, tmp_path):
        concepts = tmp_path / "c.csv"
        edges = tmp_path / "e.csv"
        concepts.write_text("wrong,header\n")
        edges.write_text("parent,child\n")
        with pytest.raises(ParseError):
            load_csv(concepts, edges)
