"""Unit tests for the semantic distance functions."""

from __future__ import annotations

import pytest

from repro.exceptions import EmptyDocumentError, UnknownConceptError
from repro.ontology.distance import (
    ancestor_distances,
    concept_distance,
    concept_distance_dewey,
    document_concept_distance,
    document_document_distance,
    document_query_distance,
)


class TestAncestorDistances:
    def test_includes_self_at_zero(self, figure3):
        cone = ancestor_distances(figure3, "J")
        assert cone["J"] == 0

    def test_minimum_up_distance_over_paths(self, figure3):
        cone = ancestor_distances(figure3, "J")
        # J reaches A via F (3 hops) even though the G-side path takes 4.
        assert cone["A"] == 3
        assert cone["F"] == 1
        assert cone["G"] == 1
        assert cone["E"] == 2
        assert cone["D"] == 2

    def test_unknown_concept(self, figure3):
        with pytest.raises(UnknownConceptError):
            ancestor_distances(figure3, "nope")


class TestConceptDistance:
    def test_zero_for_identical(self, figure3):
        assert concept_distance(figure3, "J", "J") == 0

    def test_parent_child(self, figure3):
        assert concept_distance(figure3, "F", "J") == 1

    def test_siblings_through_parent(self, figure3):
        assert concept_distance(figure3, "I", "J") == 2

    def test_invalid_shortcut_rejected(self, figure3, figure3_dewey):
        # G and F are 2 apart through J in the undirected sense, but the
        # valid-path distance must route through common ancestor A.
        assert concept_distance(figure3, "G", "F") == 5
        assert concept_distance_dewey(figure3_dewey, "G", "F") == 5

    def test_multi_parent_gives_shorter_route(self, figure3):
        # R to L: via J up to F (3 hops) then down to H, L (2 hops).
        assert concept_distance(figure3, "R", "L") == 5


class TestDocumentDistances:
    def test_ddc_minimum_over_document(self, figure3):
        assert document_concept_distance(figure3, ("F", "R"), "I") == 4
        assert document_concept_distance(figure3, ("F",), "F") == 0

    def test_ddq_sums_over_query(self, figure3):
        assert document_query_distance(
            figure3, ("F", "R", "T", "V"), ("I", "L", "U")) == 7

    def test_ddd_normalizes_both_sides(self, figure3):
        value = document_document_distance(figure3, ("F",), ("J", "H"))
        # F->nearest of {J,H} = 1; J->F = 1 and H->F = 1.
        assert value == pytest.approx(1 / 1 + 2 / 2)

    def test_empty_inputs_rejected(self, figure3):
        with pytest.raises(EmptyDocumentError):
            document_concept_distance(figure3, (), "I")
        with pytest.raises(EmptyDocumentError):
            document_document_distance(figure3, (), ("I",))
        with pytest.raises(EmptyDocumentError):
            document_document_distance(figure3, ("F",), ())
