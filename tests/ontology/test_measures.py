"""Unit tests for the alternative semantic similarity measures."""

from __future__ import annotations

import math

import pytest

from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.exceptions import OntologyError, UnknownConceptError
from repro.ontology.measures import (
    InformationContent,
    least_common_ancestors,
    rank_concepts_by_similarity,
    wu_palmer_similarity,
)


class TestLCA:
    def test_single_lca(self, figure3):
        assert least_common_ancestors(figure3, "I", "J") == {"G"}

    def test_lca_of_ancestor_is_itself(self, figure3):
        assert least_common_ancestors(figure3, "F", "V") == {"F"}

    def test_root_as_only_common_ancestor(self, figure3):
        assert least_common_ancestors(figure3, "G", "F") == {"A"}


class TestWuPalmer:
    def test_identity_is_one(self, figure3):
        assert wu_palmer_similarity(figure3, "J", "J") == pytest.approx(1.0)

    def test_root_pair(self, figure3):
        assert wu_palmer_similarity(figure3, "A", "A") == 1.0

    def test_siblings_closer_than_strangers(self, figure3):
        siblings = wu_palmer_similarity(figure3, "M", "N")
        strangers = wu_palmer_similarity(figure3, "M", "L")
        assert siblings > strangers

    def test_known_value(self, figure3):
        # LCA(I, J) = G at depth 4; depth(I) = 5 hmm — computed from the
        # DAG: depth(I)=depth(G)+1 and depth(J)=3 via F.
        depth_i = figure3.depth("I")
        depth_j = figure3.depth("J")
        depth_g = figure3.depth("G")
        expected = 2 * depth_g / (depth_i + depth_j)
        assert wu_palmer_similarity(figure3, "I", "J") == pytest.approx(
            expected)

    def test_root_similarity_zero_for_disjoint_branches(self, figure3):
        # Concepts whose only common ancestor is the root score 0.
        assert wu_palmer_similarity(figure3, "C", "F") == 0.0


class TestInformationContent:
    def corpus(self) -> DocumentCollection:
        return DocumentCollection([
            Document("d1", ["U", "V"]),
            Document("d2", ["U"]),
            Document("d3", ["L"]),
            Document("d4", ["T"]),
        ])

    def test_counts_propagate_to_ancestors(self, figure3):
        ic = InformationContent.from_collection(figure3, self.corpus())
        # The root sees everything: p=1, IC=0.
        assert ic["A"] == pytest.approx(0.0)
        # U occurs twice out of five total occurrences... counts
        # propagate: J's subtree holds U(2) + V(1) = 3 occurrences.
        assert ic["J"] == pytest.approx(-math.log(3 / 5))
        assert ic["U"] == pytest.approx(-math.log(2 / 5))

    def test_unseen_concept_gets_ceiling(self, figure3):
        ic = InformationContent.from_collection(figure3, self.corpus())
        # M never occurs, directly or transitively.
        assert ic["M"] > ic["U"]
        assert ic["M"] == pytest.approx(
            max(ic["U"], ic["V"], ic["L"], ic["T"]) + 1.0, abs=1e-6)

    def test_more_specific_means_higher_ic(self, figure3):
        ic = InformationContent.from_collection(figure3, self.corpus())
        assert ic["U"] > ic["J"] > ic["A"]

    def test_empty_corpus_rejected(self, figure3):
        with pytest.raises(OntologyError):
            InformationContent.from_collection(figure3, DocumentCollection())

    def test_unknown_concept(self, figure3):
        ic = InformationContent.from_collection(figure3, self.corpus())
        with pytest.raises(UnknownConceptError):
            ic["nope"]


class TestICSimilarities:
    @pytest.fixture()
    def ic(self, figure3):
        return InformationContent.from_collection(
            figure3,
            DocumentCollection([
                Document("d1", ["U", "V"]),
                Document("d2", ["U"]),
                Document("d3", ["L"]),
                Document("d4", ["T"]),
            ]),
        )

    def test_resnik_uses_mica(self, figure3, ic):
        # Common ancestors of U and V include J (IC of 3/5 subtree mass).
        assert ic.resnik_similarity("U", "V") == pytest.approx(
            -math.log(3 / 5))

    def test_lin_identity(self, ic):
        assert ic.lin_similarity("U", "U") == pytest.approx(1.0)

    def test_lin_bounded(self, ic):
        value = ic.lin_similarity("U", "L")
        assert 0.0 <= value <= 1.0

    def test_jiang_conrath_zero_for_identical(self, ic):
        assert ic.jiang_conrath_distance("V", "V") == pytest.approx(0.0)

    def test_jiang_conrath_symmetric(self, ic):
        assert ic.jiang_conrath_distance("U", "L") == pytest.approx(
            ic.jiang_conrath_distance("L", "U"))

    def test_jiang_conrath_nonnegative(self, ic, figure3):
        for first in ("U", "V", "L", "T", "J"):
            for second in ("U", "V", "L", "T", "J"):
                assert ic.jiang_conrath_distance(first, second) >= -1e-9


class TestRanking:
    def test_wu_palmer_ranking(self, figure3):
        ranked = rank_concepts_by_similarity(
            figure3, "U", ["V", "C", "R"])
        assert ranked[0][0] == "R"  # U's parent
        assert ranked[-1][0] == "C"

    def test_ic_ranking_requires_ic(self, figure3):
        with pytest.raises(OntologyError):
            rank_concepts_by_similarity(figure3, "U", ["V"], measure="lin")

    def test_unknown_measure(self, figure3):
        with pytest.raises(OntologyError):
            rank_concepts_by_similarity(figure3, "U", ["V"],
                                        measure="cosine")

    def test_lin_ranking(self, figure3):
        ic = InformationContent.from_frequencies(
            figure3, {"U": 2, "V": 1, "L": 1, "T": 1})
        ranked = rank_concepts_by_similarity(
            figure3, "U", ["V", "L"], measure="lin",
            information_content=ic)
        assert ranked[0][0] == "V"  # shares the informative ancestor J
