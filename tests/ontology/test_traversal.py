"""Unit tests for the valid-path breadth-first traversal."""

from __future__ import annotations

import pytest

from repro.exceptions import UnknownConceptError
from repro.ontology.distance import concept_distance
from repro.ontology.traversal import ValidPathBFS, valid_path_distances


class TestLevels:
    def test_level_zero_is_origin(self, figure3):
        bfs = ValidPathBFS(figure3, "F")
        level, nodes = next(bfs)
        assert level == 0
        assert nodes == ["F"]

    def test_level_one_parents_and_children(self, figure3):
        bfs = ValidPathBFS(figure3, "F")
        next(bfs)
        level, nodes = next(bfs)
        assert level == 1
        assert set(nodes) == {"D", "J", "H"}

    def test_no_climb_after_descend(self, figure3):
        # From F the BFS reaches J by descending; J's parent G must only
        # be reached the valid way (up through A), i.e. at distance 5.
        distances = valid_path_distances(figure3, "F")
        assert distances["G"] == 5

    def test_distances_match_concept_distance(self, figure3):
        distances = valid_path_distances(figure3, "L")
        for concept in figure3.concepts():
            assert distances[concept] == concept_distance(
                figure3, "L", concept)

    def test_covers_whole_ontology(self, figure3):
        distances = valid_path_distances(figure3, "V")
        assert set(distances) == set(figure3.concepts())

    def test_max_level_truncates(self, figure3):
        distances = valid_path_distances(figure3, "F", max_level=1)
        assert set(distances) == {"F", "D", "J", "H"}


class TestMechanics:
    def test_exhaustion(self, figure3):
        bfs = ValidPathBFS(figure3, "A")
        levels = list(bfs)
        assert bfs.exhausted()
        assert bfs.pending_states() == 0
        visited = [node for _level, nodes in levels for node in nodes]
        assert sorted(visited) == sorted(figure3.concepts())
        with pytest.raises(StopIteration):
            next(bfs)

    def test_visited_tracking(self, figure3):
        bfs = ValidPathBFS(figure3, "F")
        next(bfs)
        assert bfs.visited("F")
        assert not bfs.visited("J")
        next(bfs)
        assert bfs.visited("J")

    def test_frontier_nodes(self, figure3):
        bfs = ValidPathBFS(figure3, "F")
        next(bfs)
        assert sorted(bfs.frontier_nodes()) == ["D", "H", "J"]

    def test_unknown_origin(self, figure3):
        with pytest.raises(UnknownConceptError):
            ValidPathBFS(figure3, "nope")


class TestDedupeModes:
    def test_dedupe_off_still_visits_first_at_min_distance(self, figure3):
        # Without dominated-state pruning the frontier is larger, but
        # first-visit levels (distances) are identical.
        with_dedupe = valid_path_distances(figure3, "I")
        reference: dict[str, int] = {}
        for level, nodes in ValidPathBFS(figure3, "I", dedupe=False):
            if level > 12:
                break
            for node in nodes:
                reference.setdefault(node, level)
        for concept, distance in reference.items():
            assert with_dedupe[concept] == distance

    def test_dedupe_off_grows_frontier(self, figure3):
        deduped = ValidPathBFS(figure3, "I", dedupe=True)
        raw = ValidPathBFS(figure3, "I", dedupe=False)
        for _ in range(4):
            next(deduped)
            next(raw)
        assert raw.pending_states() >= deduped.pending_states()
