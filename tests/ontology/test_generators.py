"""Unit tests for the synthetic SNOMED-like ontology generator."""

from __future__ import annotations

import pytest

from repro.ontology.dewey import DeweyIndex
from repro.ontology.generators import concept_id_for, snomed_like
from repro.ontology.stats import compute_stats


class TestGeneration:
    def test_deterministic_given_seed(self):
        first = snomed_like(300, seed=5)
        second = snomed_like(300, seed=5)
        assert list(first.concepts()) == list(second.concepts())
        assert first.edge_count() == second.edge_count()
        for concept in first.concepts():
            assert list(first.children(concept)) == list(
                second.children(concept))

    def test_different_seeds_differ(self):
        first = snomed_like(300, seed=5)
        second = snomed_like(300, seed=6)
        edges_first = {
            (p, c) for p in first.concepts() for c in first.children(p)
        }
        edges_second = {
            (p, c) for p in second.concepts() for c in second.children(p)
        }
        assert edges_first != edges_second

    def test_exact_concept_count(self):
        for count in (1, 2, 10, 500):
            assert len(snomed_like(count, seed=0)) == count

    def test_validated_single_root_dag(self):
        ontology = snomed_like(400, seed=3)
        assert ontology.root == concept_id_for(0)
        # validate() ran inside the generator; run again for certainty.
        ontology.validate()

    def test_path_cap_respected(self):
        ontology = snomed_like(600, seed=9, path_cap=16)
        dewey = DeweyIndex(ontology)
        assert all(
            dewey.address_count(concept) <= 16
            for concept in ontology.concepts()
        )

    def test_labels_and_synonyms_present(self):
        ontology = snomed_like(200, seed=1, synonym_rate=1.0)
        with_synonyms = sum(
            1 for concept in ontology.concepts()
            if ontology.synonyms(concept)
        )
        assert with_synonyms >= 190  # all but the root
        labels = {ontology.label(c) for c in ontology.concepts()}
        assert len(labels) == len(ontology)  # labels unique

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            snomed_like(0)
        with pytest.raises(ValueError):
            snomed_like(10, target_depth=0)
        with pytest.raises(ValueError):
            snomed_like(10, internal_fraction=0.0)


class TestShape:
    def test_snomed_like_shape_statistics(self):
        ontology = snomed_like(3000, seed=42)
        stats = compute_stats(ontology, path_sample=300, seed=0)
        # Loose envelopes around the published SNOMED-CT shape
        # (paths/concept 9.78, path length 14.1): the generator must land
        # in the same regime, not on the exact values.
        assert 8 <= stats.max_depth <= 18
        assert 3 <= stats.avg_paths_per_concept <= 25
        assert 8 <= stats.avg_path_length <= 15
        internal = stats.num_concepts - stats.num_leaves
        assert 2.0 <= stats.num_edges / internal <= 7.0

    def test_no_extra_parents_mode_is_tree(self):
        ontology = snomed_like(400, seed=2, extra_parent_rate=0.0)
        assert ontology.edge_count() == len(ontology) - 1
        dewey = DeweyIndex(ontology)
        assert all(
            dewey.address_count(concept) == 1
            for concept in ontology.concepts()
        )
