"""Unit tests for the Dewey address index."""

from __future__ import annotations

import pytest

from repro.ontology.builder import OntologyBuilder
from repro.ontology.dewey import DeweyIndex, PathExplosionError


class TestAddresses:
    def test_root_has_empty_address(self, figure3, figure3_dewey):
        assert figure3_dewey.addresses(figure3.root) == ((),)

    def test_multi_parent_concept_has_multiple_addresses(self, figure3_dewey):
        assert figure3_dewey.addresses("J") == ((1, 1, 1, 2), (3, 1, 1))

    def test_addresses_cached(self, figure3):
        dewey = DeweyIndex(figure3)
        first = dewey.addresses("V")
        assert dewey.addresses("V") is first

    def test_primary_address_is_smallest(self, figure3_dewey):
        assert figure3_dewey.primary_address("R") == (1, 1, 1, 2, 1, 1)

    def test_address_count_and_total_paths(self, figure3_dewey):
        assert figure3_dewey.address_count("R") == 2
        assert figure3_dewey.address_count("F") == 1
        assert figure3_dewey.total_paths(["F", "R", "T", "V"]) == 6

    def test_deep_chain_does_not_recurse(self):
        # 5000-deep chain: the iterative materialization must not hit the
        # Python recursion limit.
        builder = OntologyBuilder("chain")
        names = [f"n{i}" for i in range(5000)]
        for name in names:
            builder.add_concept(name)
        for previous, current in zip(names, names[1:]):
            builder.add_edge(previous, current)
        ontology = builder.build()
        dewey = DeweyIndex(ontology)
        addresses = dewey.addresses(names[-1])
        assert addresses == ((1,) * 4999,)


class TestSortedAddressList:
    def test_lexicographic_merge(self, figure3_dewey):
        pairs = figure3_dewey.sorted_address_list(["F", "R"])
        assert [address for address, _ in pairs] == sorted(
            address for address, _ in pairs)
        assert pairs[0] == ((1, 1, 1, 2, 1, 1), "R")
        assert pairs[1] == ((3, 1), "F")

    def test_duplicate_concepts_contribute_once_each_call(self, figure3_dewey):
        once = figure3_dewey.sorted_address_list(["R"])
        assert len(once) == 2


class TestPathExplosion:
    def test_cap_enforced(self):
        # A ladder of diamonds doubles the path count at every level.
        builder = OntologyBuilder("ladder")
        builder.add_concept("top")
        previous = "top"
        for level in range(12):
            left, right, bottom = f"l{level}", f"r{level}", f"b{level}"
            for name in (left, right, bottom):
                builder.add_concept(name)
            builder.add_edge(previous, left)
            builder.add_edge(previous, right)
            builder.add_edge(left, bottom)
            builder.add_edge(right, bottom)
            previous = bottom
        ontology = builder.build()
        dewey = DeweyIndex(ontology, max_paths_per_concept=100)
        with pytest.raises(PathExplosionError):
            dewey.addresses(previous)  # 2^12 paths
