"""Unit tests for the ontology DAG model."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    CycleError,
    DeweyError,
    DuplicateConceptError,
    RootError,
    UnknownConceptError,
)
from repro.ontology.builder import OntologyBuilder
from repro.ontology.graph import Ontology


def build_diamond() -> Ontology:
    # A -> B, A -> C, B -> D, C -> D (the classic multi-parent diamond).
    builder = OntologyBuilder("diamond")
    for concept in "ABCD":
        builder.add_concept(concept)
    builder.add_edge("A", "B").add_edge("A", "C")
    builder.add_edge("B", "D").add_edge("C", "D")
    return builder.build()


class TestStructure:
    def test_root_children_parents(self):
        ontology = build_diamond()
        assert ontology.root == "A"
        assert list(ontology.children("A")) == ["B", "C"]
        assert list(ontology.parents("D")) == ["B", "C"]
        assert list(ontology.neighbors("B")) == ["A", "D"]

    def test_len_contains_iter(self):
        ontology = build_diamond()
        assert len(ontology) == 4
        assert "B" in ontology
        assert "Z" not in ontology
        assert sorted(ontology) == ["A", "B", "C", "D"]

    def test_child_component_follows_insertion_order(self):
        ontology = build_diamond()
        assert ontology.child_component("A", "B") == 1
        assert ontology.child_component("A", "C") == 2
        assert ontology.child_component("B", "D") == 1

    def test_duplicate_edge_is_idempotent(self):
        builder = OntologyBuilder()
        builder.add_concept("A").add_concept("B")
        builder.add_edge("A", "B").add_edge("A", "B")
        ontology = builder.build()
        assert list(ontology.children("A")) == ["B"]
        assert ontology.edge_count() == 1

    def test_unknown_concept_errors(self):
        ontology = build_diamond()
        with pytest.raises(UnknownConceptError):
            ontology.children("nope")
        with pytest.raises(UnknownConceptError):
            ontology.parents("nope")
        with pytest.raises(UnknownConceptError):
            ontology.label("nope")
        with pytest.raises(UnknownConceptError):
            ontology.depth("nope")

    def test_duplicate_concept_raises(self):
        ontology = Ontology()
        ontology._add_concept("A")
        with pytest.raises(DuplicateConceptError):
            ontology._add_concept("A")

    def test_labels_and_synonyms(self):
        builder = OntologyBuilder()
        builder.add_concept("C1", "heart disease", ["cardiac disease"])
        builder.add_concept("C2")
        builder.add_edge("C1", "C2")
        ontology = builder.build()
        assert ontology.label("C1") == "heart disease"
        assert ontology.synonyms("C1") == ("cardiac disease",)
        assert ontology.label("C2") == "C2"  # id doubles as label
        assert ontology.synonyms("C2") == ()


class TestValidation:
    def test_cycle_detected(self):
        ontology = Ontology()
        for concept in "RAB":
            ontology._add_concept(concept)
        ontology._add_edge("R", "A")
        ontology._add_edge("A", "B")
        ontology._add_edge("B", "A")
        with pytest.raises(CycleError) as excinfo:
            ontology.validate()
        assert set(excinfo.value.cycle) >= {"A", "B"}

    def test_multiple_roots_rejected(self):
        ontology = Ontology()
        ontology._add_concept("A")
        ontology._add_concept("B")
        with pytest.raises(RootError):
            ontology.validate()

    def test_no_root_rejected(self):
        ontology = Ontology()
        ontology._add_concept("A")
        ontology._add_concept("B")
        ontology._add_edge("A", "B")
        ontology._add_edge("B", "A")
        with pytest.raises(RootError):
            ontology.validate()


class TestDerived:
    def test_depth_is_minimum_root_distance(self, figure3):
        assert figure3.depth("A") == 0
        assert figure3.depth("J") == 3  # via F (3.1.1), not via G (1.1.1.2)
        assert figure3.depth("V") == 6  # 3.1.1.2.1.1
        assert figure3.depth("U") == 6  # 3.1.1.1.1.1

    def test_topological_order(self):
        ontology = build_diamond()
        order = ontology.topological_order()
        assert len(order) == 4
        position = {concept: index for index, concept in enumerate(order)}
        assert position["A"] < position["B"] < position["D"]
        assert position["A"] < position["C"] < position["D"]

    def test_ancestors_descendants(self, figure3):
        assert figure3.ancestors("J") == {"A", "B", "D", "E", "F", "G"}
        assert figure3.descendants("J") == {"K", "P", "Q", "R", "U", "V"}
        assert figure3.ancestors("A") == set()

    def test_is_leaf(self, figure3):
        assert figure3.is_leaf("U")
        assert not figure3.is_leaf("J")


class TestDeweyResolution:
    def test_resolve_known_addresses(self, figure3):
        assert figure3.resolve_dewey(()) == "A"
        assert figure3.resolve_dewey((1, 1, 1, 2)) == "J"
        assert figure3.resolve_dewey((3, 1, 1)) == "J"
        assert figure3.resolve_dewey((3, 1, 2)) == "H"

    def test_resolve_invalid_component(self, figure3):
        with pytest.raises(DeweyError):
            figure3.resolve_dewey((9,))
        with pytest.raises(DeweyError):
            figure3.resolve_dewey((1, 1, 1, 1, 1, 1, 1, 1))
