"""Property tests for subontology extraction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ontology.distance import concept_distance
from repro.ontology.subgraph import extract_closure, extract_rooted
from tests.test_properties import small_dags


class TestClosureProperties:
    @given(small_dags(min_concepts=3), st.data())
    @settings(max_examples=40, deadline=None)
    def test_distances_between_kept_concepts_preserved(self, ontology,
                                                       data):
        concepts = list(ontology.concepts())
        chosen = data.draw(st.lists(st.sampled_from(concepts), min_size=1,
                                    max_size=4, unique=True))
        subgraph = extract_closure(ontology, chosen)
        for first in chosen:
            for second in chosen:
                assert concept_distance(subgraph, first, second) == \
                    concept_distance(ontology, first, second)

    @given(small_dags(min_concepts=3), st.data())
    @settings(max_examples=40, deadline=None)
    def test_closure_is_ancestor_closed(self, ontology, data):
        concepts = list(ontology.concepts())
        chosen = data.draw(st.lists(st.sampled_from(concepts), min_size=1,
                                    max_size=4, unique=True))
        subgraph = extract_closure(ontology, chosen)
        for concept in subgraph.concepts():
            for parent in ontology.parents(concept):
                assert parent in subgraph

    @given(small_dags(min_concepts=3), st.data())
    @settings(max_examples=30, deadline=None)
    def test_dewey_addresses_of_kept_concepts_survive(self, ontology,
                                                      data):
        from repro.ontology.dewey import DeweyIndex

        concepts = list(ontology.concepts())
        chosen = data.draw(st.lists(st.sampled_from(concepts), min_size=1,
                                    max_size=3, unique=True))
        subgraph = extract_closure(ontology, chosen)
        full_dewey = DeweyIndex(ontology)
        sub_dewey = DeweyIndex(subgraph)
        for concept in chosen:
            # Every address in the closure resolves to the same concept
            # in the full ontology... the closure may renumber children
            # (siblings outside the closure vanish), so compare counts
            # and depths rather than raw component values.
            full = full_dewey.addresses(concept)
            sub = sub_dewey.addresses(concept)
            assert len(sub) == len(full)
            assert sorted(len(a) for a in sub) == sorted(
                len(a) for a in full)


class TestRootedProperties:
    @given(small_dags(min_concepts=3), st.data())
    @settings(max_examples=40, deadline=None)
    def test_rooted_extraction_is_exactly_the_descendant_cone(
            self, ontology, data):
        new_root = data.draw(st.sampled_from(list(ontology.concepts())))
        subgraph = extract_rooted(ontology, new_root)
        expected = ontology.descendants(new_root) | {new_root}
        assert set(subgraph.concepts()) == expected
        assert subgraph.root == new_root

    @given(small_dags(min_concepts=3), st.data())
    @settings(max_examples=40, deadline=None)
    def test_rooted_distances_never_shorter_than_full(self, ontology,
                                                      data):
        new_root = data.draw(st.sampled_from(list(ontology.concepts())))
        subgraph = extract_rooted(ontology, new_root)
        members = sorted(subgraph.concepts())[:4]
        for first in members:
            for second in members:
                # Removing concepts can only remove paths, and rooted
                # extraction keeps all common ancestors at/below the
                # root, so distances within the cone either match the
                # full ontology or reflect a lost shortcut through an
                # ancestor above the root (never shorter).
                assert concept_distance(subgraph, first, second) >= \
                    concept_distance(ontology, first, second)
