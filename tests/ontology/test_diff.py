"""Tests for ontology version diffing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import figure3_ontology
from repro.ontology.builder import OntologyBuilder
from repro.ontology.diff import diff_ontologies, summarize_diff
from repro.ontology.distance import concept_distance
from tests.test_properties import small_dags


def _variant(edit):
    """Rebuild Figure 3 with a single edit applied at build time."""
    from repro.datasets import FIGURE3_EDGES, FIGURE3_LABELS

    builder = OntologyBuilder("figure3-variant")
    concepts = set("ABCDEFGHIJKLMNOPQRSTUV")
    edges = list(FIGURE3_EDGES)
    concepts, edges = edit(concepts, edges)
    for concept in sorted(concepts):
        builder.add_concept(concept, FIGURE3_LABELS.get(concept))
    for parent, child in edges:
        builder.add_edge(parent, child)
    return builder.build()


class TestDiff:
    def test_identical_versions(self, figure3):
        diff = diff_ontologies(figure3, figure3_ontology())
        assert diff.is_empty()
        assert summarize_diff(diff) == "identical ontology versions"

    def test_added_concept_and_edge(self, figure3):
        def edit(concepts, edges):
            concepts = concepts | {"W"}
            return concepts, edges + [("V", "W")]

        new = _variant(edit)
        diff = diff_ontologies(figure3, new)
        assert diff.added_concepts == {"W"}
        assert diff.added_edges == {("V", "W")}
        assert not diff.removed_concepts

    def test_removed_edge(self, figure3):
        def edit(concepts, edges):
            return concepts, [e for e in edges if e != ("F", "J")]

        new = _variant(edit)
        diff = diff_ontologies(figure3, new)
        assert diff.removed_edges == {("F", "J")}
        assert "edges removed" in summarize_diff(diff)

    def test_reordered_children_detected(self, figure3):
        def edit(concepts, edges):
            swapped = []
            for edge in edges:
                if edge == ("G", "I"):
                    continue
                swapped.append(edge)
                if edge == ("G", "J"):
                    swapped.append(("G", "I"))
            return concepts, swapped

        new = _variant(edit)
        diff = diff_ontologies(figure3, new)
        assert "G" in diff.reordered_parents
        assert "Dewey renumbering" in summarize_diff(diff)

    def test_relabelled(self, figure3):
        new = figure3_ontology()
        new._labels["G"] = "renamed"
        diff = diff_ontologies(figure3, new)
        assert diff.relabelled == {"G"}
        assert diff.is_empty()  # structure unchanged


class TestImpactAnalysis:
    def test_impact_closes_over_descendants(self, figure3):
        def edit(concepts, edges):
            return concepts, [e for e in edges if e != ("F", "J")]

        new = _variant(edit)
        diff = diff_ontologies(figure3, new)
        impacted = diff.impacted_concepts(new)
        # Everything under J loses its 3.1.1-side addresses, and F's
        # whole cone (including the H branch) may see distance changes
        # to the J subtree (e.g. L's route to U went through F -> J).
        assert {"J", "K", "P", "Q", "R", "U", "V", "F", "H", "L"} <= \
            impacted
        # The G/I branch is untouched: its ancestor cones and all routes
        # among its members are intact.
        assert {"M", "N", "I", "G", "A", "B", "E"} & impacted == set()

    @given(small_dags(min_concepts=4), st.data())
    @settings(max_examples=30, deadline=None)
    def test_unimpacted_distances_are_stable(self, ontology, data):
        # Remove one non-tree-critical leaf edge... simplest structural
        # edit that keeps the DAG valid: drop a leaf concept entirely.
        leaves = [c for c in ontology.concepts()
                  if ontology.is_leaf(c) and ontology.parents(c)]
        if not leaves:
            return
        victim = data.draw(st.sampled_from(leaves))
        builder = OntologyBuilder("new")
        for concept in ontology.concepts():
            if concept != victim:
                builder.add_concept(concept, ontology.label(concept))
        for parent in ontology.concepts():
            if parent == victim:
                continue
            for child in ontology.children(parent):
                if child != victim:
                    builder.add_edge(parent, child)
        new = builder.build()
        diff = diff_ontologies(ontology, new)
        impacted = diff.impacted_concepts(new)
        stable = [c for c in new.concepts() if c not in impacted]
        for first in stable[:4]:
            for second in stable[:4]:
                assert concept_distance(new, first, second) == \
                    concept_distance(ontology, first, second)
