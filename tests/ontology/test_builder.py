"""Unit tests for OntologyBuilder."""

from __future__ import annotations

import pytest

from repro.exceptions import RootError, UnknownConceptError
from repro.ontology.builder import VIRTUAL_ROOT_ID, OntologyBuilder


class TestBuilder:
    def test_fluent_chaining(self):
        ontology = (
            OntologyBuilder("toy")
            .add_concept("A")
            .add_concept("B")
            .add_edge("A", "B")
            .build()
        )
        assert ontology.root == "A"
        assert ontology.name == "toy"

    def test_forward_references_allowed(self):
        builder = OntologyBuilder()
        builder.add_edge("A", "B")  # neither declared yet
        builder.add_concept("A").add_concept("B")
        ontology = builder.build()
        assert list(ontology.children("A")) == ["B"]

    def test_undeclared_endpoint_raises_at_build(self):
        builder = OntologyBuilder()
        builder.add_concept("A")
        builder.add_edge("A", "missing")
        with pytest.raises(UnknownConceptError):
            builder.build()

    def test_add_hierarchy_sets_dewey_order(self):
        builder = OntologyBuilder()
        for concept in "RXYZ":
            builder.add_concept(concept)
        builder.add_hierarchy("R", ["Z", "X", "Y"])
        ontology = builder.build()
        assert ontology.child_component("R", "Z") == 1
        assert ontology.child_component("R", "X") == 2
        assert ontology.child_component("R", "Y") == 3

    def test_repeated_declaration_updates_metadata(self):
        builder = OntologyBuilder()
        builder.add_concept("A")
        builder.add_concept("B", "first label")
        builder.add_concept("B", "second label", ["syn"])
        builder.add_edge("A", "B")
        ontology = builder.build()
        assert ontology.label("B") == "second label"
        assert ontology.synonyms("B") == ("syn",)


class TestVirtualRoot:
    def test_multi_rooted_input_normalized(self):
        builder = OntologyBuilder()
        for concept in "ABCD":
            builder.add_concept(concept)
        builder.add_edge("A", "C").add_edge("B", "D")
        ontology = builder.build(add_virtual_root=True)
        assert ontology.root == VIRTUAL_ROOT_ID
        assert set(ontology.children(VIRTUAL_ROOT_ID)) == {"A", "B"}

    def test_single_root_left_untouched(self):
        builder = OntologyBuilder()
        builder.add_concept("A").add_concept("B").add_edge("A", "B")
        ontology = builder.build(add_virtual_root=True)
        assert ontology.root == "A"
        assert VIRTUAL_ROOT_ID not in ontology

    def test_multi_rooted_without_option_fails(self):
        builder = OntologyBuilder()
        builder.add_concept("A").add_concept("B")
        with pytest.raises(RootError):
            builder.build()

    def test_virtual_root_name_collision(self):
        builder = OntologyBuilder()
        builder.add_concept(VIRTUAL_ROOT_ID)
        builder.add_concept("A").add_concept("B")
        with pytest.raises(RootError):
            builder.build(add_virtual_root=True)
