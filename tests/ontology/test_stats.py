"""Unit tests for ontology statistics."""

from __future__ import annotations

import pytest

from repro.ontology.stats import compute_stats


class TestComputeStats:
    def test_figure3_exact(self, figure3):
        stats = compute_stats(figure3, path_sample=1000)
        assert stats.num_concepts == 22
        assert stats.num_edges == 22
        assert stats.num_leaves == 7  # C, L, M, N, T, U, V
        assert stats.max_depth == 6  # T, U and V sit six levels down
        assert stats.paths_sampled == 22
        # Total addresses: the J subtree concepts have 2 each, the rest 1.
        expected_total = sum(
            2 if concept in "JKPQRUV" else 1
            for concept in "ABCDEFGHIJKLMNOPQRSTUV"
        )
        assert stats.avg_paths_per_concept * 22 == pytest.approx(
            expected_total)

    def test_sampled_subset(self, figure3):
        stats = compute_stats(figure3, path_sample=5, seed=3)
        assert stats.paths_sampled == 5
        assert stats.num_concepts == 22

    def test_as_rows_renders(self, figure3):
        stats = compute_stats(figure3)
        rows = dict(stats.as_rows())
        assert rows["Total Concepts"] == "22"
        assert "Avg. Paths/Concept" in rows
