"""Tests for the SQLite-backed ontology store.

The disk-backed ontology must be observationally identical to the
in-memory one: same structure, same Dewey addresses, same distances, and
the full search stack must produce the same rankings over it.
"""

from __future__ import annotations

import pytest

from repro.core.knds import KNDSearch
from repro.datasets import example4_collection, figure3_ontology
from repro.exceptions import UnknownConceptError
from repro.ontology.dewey import DeweyIndex
from repro.ontology.distance import concept_distance
from repro.ontology.io.sqlitedb import SQLiteOntology, save_sqlite


@pytest.fixture()
def sqlite_figure3(figure3, tmp_path):
    path = tmp_path / "figure3.db"
    save_sqlite(figure3, path)
    with SQLiteOntology(path) as ontology:
        yield ontology


class TestStructuralEquivalence:
    def test_metadata(self, sqlite_figure3, figure3):
        assert sqlite_figure3.root == figure3.root
        assert sqlite_figure3.name == figure3.name
        assert len(sqlite_figure3) == len(figure3)
        assert sqlite_figure3.edge_count() == figure3.edge_count()

    def test_children_and_parents_with_order(self, sqlite_figure3, figure3):
        for concept in figure3.concepts():
            assert list(sqlite_figure3.children(concept)) == list(
                figure3.children(concept))
            assert sorted(sqlite_figure3.parents(concept)) == sorted(
                figure3.parents(concept))

    def test_labels_and_synonyms(self, sqlite_figure3, figure3):
        for concept in figure3.concepts():
            assert sqlite_figure3.label(concept) == figure3.label(concept)
            assert sqlite_figure3.synonyms(concept) == figure3.synonyms(
                concept)

    def test_child_component(self, sqlite_figure3, figure3):
        assert sqlite_figure3.child_component("G", "J") == 2
        assert sqlite_figure3.child_component("F", "J") == 1

    def test_contains_and_errors(self, sqlite_figure3):
        assert "J" in sqlite_figure3
        assert "nope" not in sqlite_figure3
        with pytest.raises(UnknownConceptError):
            sqlite_figure3.children("nope")
        with pytest.raises(UnknownConceptError):
            sqlite_figure3.label("nope")

    def test_derived_structure(self, sqlite_figure3, figure3):
        assert sqlite_figure3.ancestors("J") == figure3.ancestors("J")
        assert sqlite_figure3.descendants("J") == figure3.descendants("J")
        assert sqlite_figure3.depth("V") == figure3.depth("V")
        assert sqlite_figure3.resolve_dewey((3, 1, 1)) == "J"


class TestAlgorithmEquivalence:
    def test_dewey_addresses_identical(self, sqlite_figure3, figure3):
        disk = DeweyIndex(sqlite_figure3)
        memory = DeweyIndex(figure3)
        for concept in figure3.concepts():
            assert disk.addresses(concept) == memory.addresses(concept)

    def test_distances_identical(self, sqlite_figure3, figure3):
        pairs = [("G", "F"), ("I", "J"), ("U", "L"), ("A", "V")]
        for first, second in pairs:
            assert concept_distance(sqlite_figure3, first, second) == \
                concept_distance(figure3, first, second)

    def test_knds_over_disk_ontology(self, sqlite_figure3):
        searcher = KNDSearch(sqlite_figure3, example4_collection())
        results = searcher.rds(["F", "I"], k=2)
        assert sorted(results.doc_ids()) == ["d2", "d3"]
        assert results.distances() == [2.0, 2.0]

    def test_generated_ontology_roundtrip(self, small_ontology, tmp_path):
        path = tmp_path / "generated.db"
        save_sqlite(small_ontology, path)
        with SQLiteOntology(path) as disk:
            assert len(disk) == len(small_ontology)
            sample = list(small_ontology.concepts())[::40]
            for concept in sample:
                assert list(disk.children(concept)) == list(
                    small_ontology.children(concept))
