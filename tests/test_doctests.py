"""Run the doctest examples embedded in selected modules.

Only modules whose docstring examples are self-contained (no corpus or
ontology setup needed) are included; the API examples that need a world
are covered by regular tests instead.
"""

from __future__ import annotations

import doctest

import pytest

import repro.corpus.text.abbreviations
import repro.corpus.text.negation
import repro.corpus.text.tokenizer
import repro.serve.admission
import repro.serve.cache
import repro.types

MODULES = [
    repro.types,
    repro.corpus.text.tokenizer,
    repro.corpus.text.abbreviations,
    repro.corpus.text.negation,
    repro.serve.cache,
    repro.serve.admission,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda module: module.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "module lost its doctest examples"
