"""Unit tests for the benchmark harness (workloads, reporting, experiments).

Experiment functions are exercised end-to-end on a deliberately tiny
world, checking structure and internal consistency rather than absolute
timings (those belong to ``benchmarks/``).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    SCALES,
    BenchScale,
    build_world,
    fig7_error_threshold,
    table3_corpus_stats,
)
from repro.bench.reporting import Table, series_table
from repro.bench.workloads import (
    random_concept_queries,
    random_query_documents,
    sample_documents,
)
from repro.corpus.collection import DocumentCollection


@pytest.fixture(scope="module", autouse=True)
def tiny_scale():
    """Register a scale small enough for unit tests and clean it up."""
    SCALES["tiny"] = BenchScale("tiny", 400, 12, 12, 40, 6, 2, 4)
    yield
    del SCALES["tiny"]
    build_world.cache_clear()


class TestWorkloads:
    def collection(self):
        return build_world("tiny").corpus("RADIO")

    def test_random_concept_queries(self):
        queries = random_concept_queries(self.collection(), nq=3, count=5,
                                         seed=1)
        assert len(queries) == 5
        assert all(len(set(query)) == 3 for query in queries)

    def test_queries_deterministic(self):
        first = random_concept_queries(self.collection(), nq=3, count=5,
                                       seed=1)
        second = random_concept_queries(self.collection(), nq=3, count=5,
                                        seed=1)
        assert first == second

    def test_random_query_documents(self):
        documents = random_query_documents(self.collection(), nq=4, count=3,
                                           seed=2)
        assert len(documents) == 3
        assert all(len(document) == 4 for document in documents)

    def test_sample_documents_from_corpus(self):
        collection = self.collection()
        sampled = sample_documents(collection, count=5, seed=3)
        assert len(sampled) == 5
        assert all(document.doc_id in collection for document in sampled)

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            random_concept_queries(DocumentCollection(), nq=2, count=1)


class TestReporting:
    def test_table_render_alignment(self):
        table = Table("Demo", ["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("b", 0.000123)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[2] and "value" in lines[2]
        assert "1.230e-04" in rendered or "1.23e-04" in rendered

    def test_series_table(self):
        table = series_table("T", "x", [1, 2],
                             {"a": [0.1, 0.2], "b": [3, 4]},
                             notes=["shape note"])
        rendered = table.render()
        assert "shape note" in rendered
        assert len(table.rows) == 2


class TestExperiments:
    def test_world_cached_per_scale(self):
        assert build_world("tiny") is build_world("tiny")

    def test_table3_structure(self):
        table = table3_corpus_stats("tiny")
        assert [row[0] for row in table.rows] == [
            "Total Documents", "Total Concepts", "Avg. Tokens/Document",
            "Avg. Concepts/Document",
        ]

    def test_fig7_rows_cover_grid(self):
        table = fig7_error_threshold("RADIO", "rds", nq=2, k=3,
                                     scale="tiny",
                                     eps_values=(0.0, 1.0))
        assert len(table.rows) == 2
        assert table.headers[0] == "eps"
        # Breakdown columns never exceed the total by construction noise.
        for row in table.rows:
            assert float(row[1].replace(",", "")) >= 0

    def test_all_experiments_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "table3", "fig6", "fig7", "fig8", "fig9", "ablations",
            "significance", "scalability",
        }


class TestEveryExperimentRunsAtTinyScale:
    """Each experiment function must execute end to end on a tiny world.

    The benchmark suite runs these for real; the unit suite runs them
    structurally so a refactor cannot silently break an experiment that
    only executes in nightly benchmarks.
    """

    def test_fig6(self):
        from repro.bench.experiments import fig6_distance_calc
        table = fig6_distance_calc("RADIO", "tiny", nq_values=(3, 5, 8))
        assert len(table.rows) == 3
        assert table.headers == ["nq", "BL (s)", "DRC (s)"]

    def test_fig7_optimal(self):
        from repro.bench.experiments import fig7_optimal_threshold
        table = fig7_optimal_threshold("RADIO", "rds", scale="tiny",
                                       nq_values=(2, 3),
                                       eps_values=(0.0, 1.0))
        assert len(table.rows) == 2
        for row in table.rows:
            assert row[1] in ("0", "1.000")

    def test_fig8(self):
        from repro.bench.experiments import fig8_query_size
        table = fig8_query_size("RADIO", scale="tiny", nq_values=(1, 3))
        assert len(table.rows) == 2
        assert "kNDS (s)" in table.headers

    def test_fig9(self):
        from repro.bench.experiments import fig9_num_results
        table = fig9_num_results("RADIO", "rds", scale="tiny",
                                 k_values=(2, 5))
        assert len(table.rows) == 2

    def test_significance(self):
        from repro.bench.experiments import significance_fig9
        table = significance_fig9("RADIO", "rds", nq=2, k=3, samples=4,
                                  scale="tiny")
        cells = {row[0]: row[1] for row in table.rows}
        assert float(cells["p-value"]) <= 1.0

    def test_ablation_queue_limit(self):
        from repro.bench.experiments import ablation_queue_limit
        table = ablation_queue_limit("RADIO", "rds", nq=2, k=3,
                                     scale="tiny", limits=(5, None))
        assert len(table.rows) == 2

    def test_ablation_optimizations(self):
        from repro.bench.experiments import ablation_optimizations
        table = ablation_optimizations("RADIO", "rds", nq=2, k=3,
                                       scale="tiny")
        assert [row[0] for row in table.rows] == [
            "all on", "no pruning", "no covered shortcut",
            "no state dedupe",
        ]

    def test_ablation_index_backend(self):
        from repro.bench.experiments import ablation_index_backend
        table = ablation_index_backend("RADIO", nq=2, k=3, scale="tiny")
        assert [row[0] for row in table.rows] == ["memory", "sqlite"]

    def test_ablation_ta(self):
        from repro.bench.experiments import ablation_ta_comparison
        table = ablation_ta_comparison("RADIO", nq=2, k=3, scale="tiny")
        assert [row[0] for row in table.rows] == ["TA", "kNDS"]

    def test_scalability(self):
        from repro.bench.experiments import scalability_corpus_size
        table = scalability_corpus_size(nq=2, k=3, scale="tiny",
                                        sizes=(20, 40))
        assert len(table.rows) == 2
        assert table.headers[0] == "|D|"
