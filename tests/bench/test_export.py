"""Tests for the benchmark report compiler."""

from __future__ import annotations

from repro.bench.export import build_report, main


class TestBuildReport:
    def _populate(self, directory):
        (directory / "table3_corpus_stats.txt").write_text("T3 CONTENT\n")
        (directory / "fig9a_rds_patient.txt").write_text("FIG9A CONTENT\n")
        (directory / "custom_extra.txt").write_text("EXTRA CONTENT\n")

    def test_groups_ordered_and_content_included(self, tmp_path):
        self._populate(tmp_path)
        report = build_report(tmp_path)
        assert "## Tables" in report
        assert "## Figure 9 — number of results" in report
        assert "T3 CONTENT" in report
        assert "FIG9A CONTENT" in report
        assert report.index("T3 CONTENT") < report.index("FIG9A CONTENT")

    def test_unknown_files_land_in_other(self, tmp_path):
        self._populate(tmp_path)
        report = build_report(tmp_path)
        assert "## Other" in report
        assert "EXTRA CONTENT" in report

    def test_missing_artifacts_listed(self, tmp_path):
        self._populate(tmp_path)
        report = build_report(tmp_path)
        assert "expected artifacts not present" in report
        assert "fig6_distance_calc_patient" in report

    def test_empty_directory(self, tmp_path):
        report = build_report(tmp_path)
        assert "# Benchmark report" in report

    def test_cli_writes_file(self, tmp_path, capsys):
        self._populate(tmp_path)
        out = tmp_path / "REPORT.md"
        assert main([str(tmp_path), "--out", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert "T3 CONTENT" in out.read_text()

    def test_cli_stdout(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert main([str(tmp_path)]) == 0
        assert "T3 CONTENT" in capsys.readouterr().out
