"""Unit tests for the ASCII chart renderer."""

from __future__ import annotations

from repro.bench.plots import render_chart
from repro.bench.reporting import Table, series_table


class TestRenderChart:
    def chart_table(self) -> Table:
        return series_table(
            "Demo figure", "k", [3, 10],
            {"kNDS (s)": [0.005, 0.01], "baseline (s)": [1.5, 1.6]},
            notes=["flat baseline"],
        )

    def test_bars_reflect_magnitude(self):
        rendered = render_chart(self.chart_table())
        lines = [line for line in rendered.splitlines() if "|" in line]
        assert len(lines) == 4
        knds_bar = lines[0].count("#")
        baseline_bar = lines[1].count("#")
        assert baseline_bar > knds_bar

    def test_log_scale_header_and_notes(self):
        rendered = render_chart(self.chart_table())
        assert "(log scale:" in rendered
        assert "# flat baseline" in rendered

    def test_linear_scale(self):
        rendered = render_chart(self.chart_table(), log_scale=False)
        assert "(log scale:" not in rendered
        lines = [line for line in rendered.splitlines() if "|" in line]
        # On a linear scale the small series collapses to the minimum bar.
        assert lines[0].count("#") == 1

    def test_smallest_value_still_visible(self):
        rendered = render_chart(self.chart_table())
        lines = [line for line in rendered.splitlines() if "|" in line]
        assert all(line.count("#") >= 1 for line in lines)

    def test_non_numeric_cells_passed_through(self):
        table = Table("T", ["x", "value", "tag"])
        table.add_row(1, 0.5, "n/a")
        rendered = render_chart(table)
        assert "n/a" in rendered

    def test_table_without_numbers_falls_back(self):
        table = Table("T", ["x", "value"])
        table.add_row("a", "-")
        rendered = render_chart(table)
        assert rendered == table.render()

    def test_cli_chart_flag(self, capsys):
        from repro.bench.experiments import SCALES, BenchScale, build_world
        from repro.bench.experiments import main as experiments_main
        SCALES["tiny-chart"] = BenchScale("tiny-chart", 300, 8, 10, 30, 5,
                                          2, 4)
        try:
            code = experiments_main(["table3", "--scale", "tiny-chart",
                                     "--chart"])
            assert code == 0
            output = capsys.readouterr().out
            assert "|" in output and "#" in output
        finally:
            del SCALES["tiny-chart"]
            build_world.cache_clear()
