"""Tests for the perf-regression runner (:mod:`repro.bench.perf`).

Real scenarios run on a deliberately tiny world (structure, not absolute
timings); the gating logic is exercised with a deterministic sleep
scenario so the ``neutral`` / ``regressed`` verdicts don't depend on
machine speed.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.bench import perf
from repro.bench.experiments import SCALES, BenchScale, build_world
from repro.bench.perf import (
    EXIT_REGRESSED,
    PreparedScenario,
    Scenario,
    compare_runs,
    load_artifact,
    register_scenario,
    render_markdown,
    run_scenarios,
    select_scenarios,
    write_artifact,
)
from repro.exceptions import ReproError


@pytest.fixture(scope="module", autouse=True)
def tiny_scale():
    """Register a scale small enough for unit tests and clean it up."""
    SCALES["tiny"] = BenchScale("tiny", 400, 12, 12, 40, 6, 2, 4)
    yield
    del SCALES["tiny"]
    build_world.cache_clear()


@pytest.fixture()
def sleepy():
    """Install a deterministic scenario whose speed the test controls."""
    def install(duration: float) -> None:
        perf.unregister_scenario("sleepy")
        perf.SCENARIOS["sleepy"] = Scenario(
            "sleepy", "deterministic sleep", frozenset({"test-only"}),
            lambda world: PreparedScenario(
                run=lambda: time.sleep(duration)))
    yield install
    perf.unregister_scenario("sleepy")


class TestRegistry:
    def test_select_by_name(self):
        (scenario,) = select_scenarios("knds_rds_radio")
        assert scenario.name == "knds_rds_radio"

    def test_select_by_tag_and_dedupe(self):
        smoke = select_scenarios("smoke,knds_rds_radio")
        names = [scenario.name for scenario in smoke]
        assert "knds_rds_radio" in names
        assert len(names) == len(set(names))
        assert all("smoke" in s.tags or s.name == "knds_rds_radio"
                   for s in smoke)

    def test_select_all(self):
        assert {s.name for s in select_scenarios("all")} == set(
            perf.SCENARIOS)

    def test_unknown_token_raises_with_listing(self):
        with pytest.raises(ReproError, match="nonsense"):
            select_scenarios("nonsense")

    def test_empty_selection_raises(self):
        with pytest.raises(ReproError, match="no scenarios"):
            select_scenarios(",")

    def test_serve_traced_is_wired_into_perf_smoke(self):
        scenario = perf.SCENARIOS["serve_traced"]
        assert "smoke" in scenario.tags
        assert "trace" in scenario.tags
        assert scenario in select_scenarios("smoke")

    def test_tracing_work_counters_registered(self):
        assert "trace.spans" in perf.WORK_COUNTERS
        assert "recorder.requests" in perf.WORK_COUNTERS

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("knds_rds_radio", "dup")(lambda world: None)


class TestRunner:
    def test_artifact_schema(self):
        artifact = run_scenarios("knds_rds_radio", scale="tiny",
                                 repeat=2, warmup=0)
        assert artifact["schema_version"] == perf.SCHEMA_VERSION
        assert artifact["run"]["scale"] == "tiny"
        assert artifact["run"]["repeat"] == 2
        data = artifact["scenarios"]["knds_rds_radio"]
        seconds = data["seconds"]
        assert len(seconds["samples"]) == 2
        assert 0 < seconds["min"] <= seconds["median"] <= seconds["max"]
        assert seconds["p50"] <= seconds["p95"] <= seconds["p99"]
        assert data["peak_memory_bytes"] > 0
        assert data["metrics"]["drc.probes"] >= 0
        assert data["metrics"]["knds.nodes_visited"] > 0

    def test_engine_scenario_records_latency_quantiles(self):
        artifact = run_scenarios("engine_rds_radio", scale="tiny",
                                 repeat=1, warmup=0)
        quantiles = (artifact["scenarios"]["engine_rds_radio"]
                     ["latency_quantiles"])
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert 0 < quantiles["p50"] <= quantiles["p95"] <= quantiles["p99"]

    def test_overhead_scenarios_replace_standalone_benchmark(self):
        artifact = run_scenarios("overhead", scale="tiny", repeat=1,
                                 warmup=0)
        names = set(artifact["scenarios"])
        assert names == {"obs_overhead_disabled", "obs_overhead_metrics",
                         "obs_overhead_full"}
        # The runner's metrics pass overrides the scenario bundle, so
        # even the overhead scenarios carry deterministic work counters.
        # With the packed arena on, settles count as knds.arena_calls
        # and drc.probes stays pinned at zero in the artifact.
        for data in artifact["scenarios"].values():
            assert data["metrics"]["knds.arena_calls"] > 0
            assert data["metrics"]["drc.probes"] == 0
        report = render_markdown(artifact)
        assert "Instrumentation overhead" in report

    def test_serve_traced_pins_tracing_counters(self):
        artifact = run_scenarios("serve_traced", scale="tiny", repeat=1,
                                 warmup=0)
        metrics = artifact["scenarios"]["serve_traced"]["metrics"]
        # tiny scale -> 2 requests, every one captured (threshold 0);
        # spans collected for the client-sampled half of the workload.
        assert metrics["recorder.requests"] == 2
        assert metrics["trace.spans"] > 0
        again = run_scenarios("serve_traced", scale="tiny", repeat=1,
                              warmup=0)
        assert again["scenarios"]["serve_traced"]["metrics"] == metrics

    def test_artifact_roundtrip(self, tmp_path, sleepy):
        sleepy(0.001)
        artifact = run_scenarios("sleepy", scale="tiny", repeat=2,
                                 warmup=0)
        path = write_artifact(artifact, tmp_path / "BENCH_t.json")
        assert load_artifact(path) == json.loads(
            path.read_text(encoding="utf-8"))

    def test_load_artifact_rejects_garbage(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_artifact(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ReproError, match="invalid"):
            load_artifact(bad)
        not_bench = tmp_path / "other.json"
        not_bench.write_text("{}", encoding="utf-8")
        with pytest.raises(ReproError, match="schema_version"):
            load_artifact(not_bench)


def _fake_artifact(**medians: float) -> dict:
    """A minimal artifact: one scenario per kwarg, min == median."""
    return {
        "schema_version": perf.SCHEMA_VERSION,
        "run": {"timestamp": "t", "scale": "tiny", "repeat": 1,
                "warmup": 0, "scenarios": "x", "python": "3",
                "platform": "test"},
        "scenarios": {
            name: {"seconds": {"samples": [value], "min": value,
                               "median": value, "mean": value,
                               "max": value, "p50": value, "p95": value,
                               "p99": value},
                   "peak_memory_bytes": 1, "instrumented_seconds": value,
                   "metrics": {}, "latency_quantiles": {}}
            for name, value in medians.items()
        },
    }


class TestCompare:
    def test_identical_runs_are_neutral(self):
        artifact = _fake_artifact(a=0.1, b=0.002)
        verdicts = compare_runs(artifact, artifact)
        assert {v.status for v in verdicts} == {"neutral"}

    def test_regression_needs_both_thresholds(self):
        # +50% but only +0.5ms absolute: under the floor, stays neutral.
        small = compare_runs(_fake_artifact(a=0.0015),
                             _fake_artifact(a=0.001))
        assert small[0].status == "neutral"
        # +50% and +50ms: clearly regressed.
        big = compare_runs(_fake_artifact(a=0.15), _fake_artifact(a=0.1))
        assert big[0].status == "regressed"
        assert big[0].ratio == pytest.approx(1.5)

    def test_improvement_is_symmetric(self):
        verdicts = compare_runs(_fake_artifact(a=0.1),
                                _fake_artifact(a=0.2))
        assert verdicts[0].status == "improved"

    def test_min_of_n_vetoes_noisy_median(self):
        # Median doubled but the best sample held: scheduler noise.
        current = _fake_artifact(a=0.2)
        current["scenarios"]["a"]["seconds"]["min"] = 0.1
        verdicts = compare_runs(current, _fake_artifact(a=0.1))
        assert verdicts[0].status == "neutral"

    def test_work_counter_increase_regresses_despite_steady_time(self):
        current = _fake_artifact(a=0.1)
        baseline = _fake_artifact(a=0.1)
        baseline["scenarios"]["a"]["metrics"] = {"drc.probes": 100.0}
        current["scenarios"]["a"]["metrics"] = {"drc.probes": 150.0}
        (verdict,) = compare_runs(current, baseline)
        assert verdict.status == "regressed"
        assert "drc.probes 100->150" in verdict.note

    def test_work_counter_decrease_is_an_improvement(self):
        current = _fake_artifact(a=0.1)
        baseline = _fake_artifact(a=0.1)
        baseline["scenarios"]["a"]["metrics"] = {
            "knds.nodes_visited": 1000.0}
        current["scenarios"]["a"]["metrics"] = {
            "knds.nodes_visited": 500.0}
        (verdict,) = compare_runs(current, baseline)
        assert verdict.status == "improved"

    def test_steady_work_counters_veto_time_gate(self):
        # Wall time doubled but the deterministic work is identical:
        # host noise on a counter-bearing scenario stays neutral.
        current = _fake_artifact(a=0.2)
        baseline = _fake_artifact(a=0.1)
        for artifact in (current, baseline):
            artifact["scenarios"]["a"]["metrics"] = {"drc.probes": 100.0}
        (verdict,) = compare_runs(current, baseline)
        assert verdict.status == "neutral"
        assert "wall time informational" in verdict.note
        # --time-gate always restores unconditional time gating.
        (verdict,) = compare_runs(current, baseline, time_gate="always")
        assert verdict.status == "regressed"
        with pytest.raises(ReproError, match="time_gate"):
            compare_runs(current, baseline, time_gate="sometimes")

    def test_work_counters_trump_noisy_time(self):
        # Wall time doubled (host noise) but the deterministic work
        # shrank: the work signal takes precedence over the time gate.
        current = _fake_artifact(a=0.2)
        baseline = _fake_artifact(a=0.1)
        baseline["scenarios"]["a"]["metrics"] = {"drc.probes": 100.0}
        current["scenarios"]["a"]["metrics"] = {"drc.probes": 50.0}
        (verdict,) = compare_runs(current, baseline)
        assert verdict.status == "improved"

    def test_small_counter_jitter_stays_neutral(self):
        current = _fake_artifact(a=0.1)
        baseline = _fake_artifact(a=0.1)
        baseline["scenarios"]["a"]["metrics"] = {"drc.probes": 4.0}
        current["scenarios"]["a"]["metrics"] = {"drc.probes": 5.0}
        # +25% relative but only +1 probe: under the absolute floor.
        (verdict,) = compare_runs(current, baseline)
        assert verdict.status == "neutral"

    def test_new_and_missing_scenarios(self):
        verdicts = compare_runs(_fake_artifact(a=0.1, b=0.1),
                                _fake_artifact(a=0.1, c=0.1))
        statuses = {v.scenario: v.status for v in verdicts}
        assert statuses == {"a": "neutral", "b": "new", "c": "missing"}

    def test_schema_version_mismatch_raises(self):
        baseline = _fake_artifact(a=0.1)
        baseline["schema_version"] = perf.SCHEMA_VERSION + 1
        with pytest.raises(ReproError, match="schema"):
            compare_runs(_fake_artifact(a=0.1), baseline)


class TestMainGating:
    """End-to-end: the acceptance-criteria flows through ``perf.main``."""

    def _run(self, tmp_path, name: str, *extra: str) -> tuple[int, dict]:
        out = tmp_path / name
        code = perf.main(["--scenarios", "sleepy", "--scale", "tiny",
                          "--repeat", "3", "--warmup", "0",
                          "--json-out", str(out), *extra])
        return code, (json.loads(out.read_text(encoding="utf-8"))
                      if out.exists() else {})

    def test_unchanged_tree_is_neutral(self, tmp_path, sleepy, capsys):
        sleepy(0.003)
        code, _ = self._run(tmp_path, "base.json")
        assert code == 0
        code, _ = self._run(tmp_path, "again.json", "--baseline",
                            str(tmp_path / "base.json"),
                            "--fail-on-regress")
        assert code == 0
        assert "sleepy: neutral" in capsys.readouterr().out

    def test_injected_slowdown_regresses_with_nonzero_exit(
            self, tmp_path, sleepy, capsys):
        sleepy(0.003)
        code, _ = self._run(tmp_path, "base.json")
        assert code == 0
        sleepy(0.03)  # the artificial regression
        code, artifact = self._run(tmp_path, "slow.json", "--baseline",
                                   str(tmp_path / "base.json"),
                                   "--fail-on-regress")
        assert code == EXIT_REGRESSED
        assert artifact["scenarios"]["sleepy"]["seconds"]["median"] > 0.02
        captured = capsys.readouterr()
        assert "sleepy: regressed" in captured.out
        assert "REGRESSED" in captured.err
        report = (tmp_path / "slow.md").read_text(encoding="utf-8")
        assert "**regressed**" in report

    def test_without_fail_flag_regression_is_nonblocking(
            self, tmp_path, sleepy):
        sleepy(0.003)
        assert self._run(tmp_path, "base.json")[0] == 0
        sleepy(0.03)
        code, _ = self._run(tmp_path, "slow.json", "--baseline",
                            str(tmp_path / "base.json"))
        assert code == 0

    def test_list_prints_registry(self, capsys):
        assert perf.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "knds_rds_radio" in out
        assert "obs_overhead_full" in out

    def test_unknown_scenario_is_an_error(self, tmp_path, capsys):
        code = perf.main(["--scenarios", "no_such_scenario",
                          "--scale", "tiny",
                          "--json-out", str(tmp_path / "x.json")])
        assert code == 1
        assert "unknown scenario" in capsys.readouterr().err
