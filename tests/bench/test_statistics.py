"""Tests for the t-test and complexity-fitting machinery.

The incomplete beta / Student-t implementation is cross-checked against
scipy (available in the test environment) on a grid of inputs, then the
higher-level helpers are validated behaviourally.
"""

from __future__ import annotations

import math
import random

import pytest
from scipy import stats as scipy_stats

from repro.bench.statistics import (
    GrowthFit,
    best_growth_model,
    fit_growth_model,
    regularized_incomplete_beta,
    student_t_two_tailed_p,
    welch_t_test,
)


class TestIncompleteBeta:
    @pytest.mark.parametrize("a", [0.5, 1.0, 2.5, 10.0])
    @pytest.mark.parametrize("b", [0.5, 1.0, 3.0])
    @pytest.mark.parametrize("x", [0.0, 0.1, 0.5, 0.9, 1.0])
    def test_against_scipy(self, a, b, x):
        assert regularized_incomplete_beta(a, b, x) == pytest.approx(
            scipy_stats.beta.cdf(x, a, b), abs=1e-9)

    def test_domain_check(self):
        with pytest.raises(ValueError):
            regularized_incomplete_beta(1.0, 1.0, 1.5)


class TestStudentT:
    @pytest.mark.parametrize("t", [0.0, 0.5, 1.96, 3.3, 10.0])
    @pytest.mark.parametrize("dof", [1.0, 4.5, 30.0, 200.0])
    def test_against_scipy(self, t, dof):
        expected = 2 * scipy_stats.t.sf(abs(t), dof)
        assert student_t_two_tailed_p(t, dof) == pytest.approx(
            expected, abs=1e-9)

    def test_invalid_dof(self):
        with pytest.raises(ValueError):
            student_t_two_tailed_p(1.0, 0.0)


class TestWelch:
    def test_against_scipy_random_samples(self):
        rng = random.Random(0)
        first = [rng.gauss(10, 2) for _ in range(25)]
        second = [rng.gauss(11, 3) for _ in range(18)]
        mine = welch_t_test(first, second)
        reference = scipy_stats.ttest_ind(first, second, equal_var=False)
        assert mine.t_statistic == pytest.approx(reference.statistic)
        assert mine.p_value == pytest.approx(reference.pvalue, abs=1e-9)

    def test_clearly_different_samples_significant(self):
        rng = random.Random(1)
        fast = [rng.gauss(0.01, 0.002) for _ in range(30)]
        slow = [rng.gauss(1.0, 0.1) for _ in range(30)]
        result = welch_t_test(fast, slow)
        assert result.significant(alpha=0.001)
        assert result.mean_difference < 0

    def test_identical_samples_not_significant(self):
        result = welch_t_test([1.0, 1.0, 1.0], [1.0, 1.0, 1.0])
        assert result.p_value == 1.0
        assert not result.significant()

    def test_small_samples_rejected(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [1.0, 2.0])


class TestGrowthFitting:
    def test_quadratic_series_identified(self):
        sizes = [5, 10, 20, 40, 80, 160]
        timings = [1e-6 * n * n for n in sizes]
        assert best_growth_model(sizes, timings) == "n^2"

    def test_nlogn_series_identified(self):
        sizes = [5, 10, 20, 40, 80, 160]
        timings = [1e-6 * n * math.log(n) for n in sizes]
        assert best_growth_model(sizes, timings) == "n log n"

    def test_linear_series_identified(self):
        sizes = [5, 10, 20, 40, 80, 160]
        timings = [2e-5 * n for n in sizes]
        assert best_growth_model(sizes, timings) == "n"

    def test_fits_sorted_by_r_squared(self):
        sizes = [5, 10, 20, 40, 80]
        timings = [1e-6 * n * n for n in sizes]
        fits = fit_growth_model(sizes, timings)
        assert all(isinstance(fit, GrowthFit) for fit in fits)
        r_values = [fit.r_squared for fit in fits]
        assert r_values == sorted(r_values, reverse=True)
        assert fits[0].r_squared == pytest.approx(1.0)

    def test_noisy_quadratic_still_identified(self):
        rng = random.Random(2)
        sizes = [5, 10, 20, 40, 80, 160, 240]
        timings = [1e-6 * n * n * rng.uniform(0.8, 1.2) for n in sizes]
        assert best_growth_model(sizes, timings) == "n^2"

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_growth_model([1, 2], [1.0, 2.0])
