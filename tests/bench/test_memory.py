"""Tests for memory footprint measurement."""

from __future__ import annotations

from repro.bench.memory import deep_sizeof, index_footprint, space_comparison


class TestDeepSizeof:
    def test_containers_counted(self):
        assert deep_sizeof([1, 2, 3]) > deep_sizeof([])
        assert deep_sizeof({"a": [1, 2]}) > deep_sizeof({})

    def test_shared_objects_counted_once(self):
        shared = list(range(1000))
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof([shared])

    def test_cycles_terminate(self):
        loop: list = []
        loop.append(loop)
        assert deep_sizeof(loop) > 0

    def test_slotted_objects(self):
        from repro.core.radix import RadixNode
        node = RadixNode("C1")
        assert deep_sizeof(node) > 0

    def test_dict_backed_objects(self):
        class Bag:
            def __init__(self):
                self.payload = list(range(200))

        assert deep_sizeof(Bag()) > deep_sizeof(list(range(200)))


class TestFootprint:
    def test_footprint_keys_and_ordering(self, small_ontology,
                                         small_corpus):
        footprint = index_footprint(small_ontology, small_corpus)
        assert set(footprint) == {
            "inverted+forward", "ta_postings_full_estimate",
            "matrix_full_estimate",
        }
        assert footprint["inverted+forward"] > 0
        assert footprint["ta_postings_full_estimate"] > \
            footprint["inverted+forward"]

    def test_space_comparison_table(self, small_ontology, small_corpus):
        table = space_comparison(small_ontology, small_corpus)
        assert len(table.rows) == 3
        assert table.rows[0][0] == "kNDS inverted+forward"
