"""CLI tests for engine persistence and explanation commands."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.corpus.io import load_jsonl


@pytest.fixture()
def world(tmp_path):
    prefix = str(tmp_path / "onto")
    assert main(["generate-ontology", "--concepts", "250", "--seed", "5",
                 "--out", prefix]) == 0
    corpus = str(tmp_path / "corpus.jsonl")
    assert main(["generate-corpus", "--ontology", prefix,
                 "--profile", "radio", "--docs", "25",
                 "--out", corpus]) == 0
    return prefix, corpus


class TestBuildEngine:
    def test_build_and_query_via_engine_dir(self, world, tmp_path, capsys):
        prefix, corpus = world
        engine_dir = str(tmp_path / "deploy")
        assert main(["build-engine", "--ontology", prefix,
                     "--corpus", corpus, "--out", engine_dir]) == 0
        assert "saved engine" in capsys.readouterr().out

        collection = load_jsonl(corpus)
        document = next(iter(collection))
        query = ",".join(document.concepts[:2])
        assert main(["search", "--engine", engine_dir, "-k", "3",
                     "rds", "--query", query]) == 0
        output = capsys.readouterr().out
        assert "distance=" in output

    def test_search_requires_world_or_engine(self, capsys):
        code = main(["search", "rds", "--query", "C1"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestExplain:
    def test_explain_from_csv_world(self, world, capsys):
        prefix, corpus = world
        collection = load_jsonl(corpus)
        document = next(iter(collection))
        query = ",".join(document.concepts[:2])
        assert main(["explain", "--ontology", prefix, "--corpus", corpus,
                     "--doc-id", document.doc_id,
                     "--query", query]) == 0
        output = capsys.readouterr().out
        assert "total distance: 0" in output  # doc contains the query

    def test_explain_from_engine_dir(self, world, tmp_path, capsys):
        prefix, corpus = world
        engine_dir = str(tmp_path / "deploy")
        assert main(["build-engine", "--ontology", prefix,
                     "--corpus", corpus, "--out", engine_dir]) == 0
        collection = load_jsonl(corpus)
        document = next(iter(collection))
        assert main(["explain", "--engine", engine_dir,
                     "--doc-id", document.doc_id,
                     "--query", document.concepts[0]]) == 0
        output = capsys.readouterr().out
        assert "nearest is" in output
