"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    CorpusError,
    CycleError,
    DeweyError,
    DuplicateConceptError,
    EmptyDocumentError,
    OntologyError,
    ParseError,
    QueryError,
    ReproError,
    RootError,
    UnknownConceptError,
    UnknownDocumentError,
)


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for exc_type in (OntologyError, UnknownConceptError,
                         DuplicateConceptError, CycleError, RootError,
                         DeweyError, ParseError, CorpusError,
                         UnknownDocumentError, EmptyDocumentError,
                         QueryError):
            assert issubclass(exc_type, ReproError)

    def test_lookup_errors_are_key_errors(self):
        # So dict-style code can catch them generically.
        assert issubclass(UnknownConceptError, KeyError)
        assert issubclass(UnknownDocumentError, KeyError)

    def test_ontology_errors_group(self):
        for exc_type in (UnknownConceptError, CycleError, RootError,
                         DeweyError):
            assert issubclass(exc_type, OntologyError)


class TestMessages:
    def test_unknown_concept_carries_id(self):
        error = UnknownConceptError("C42")
        assert error.concept_id == "C42"
        assert "C42" in str(error)

    def test_cycle_error_renders_cycle(self):
        error = CycleError(["a", "b", "a"])
        assert error.cycle == ["a", "b", "a"]
        assert "a -> b -> a" in str(error)

    def test_parse_error_location(self):
        error = ParseError("bad row", path="file.csv", line=7)
        assert "file.csv:7" in str(error)
        assert error.path == "file.csv"
        assert error.line == 7

    def test_parse_error_without_location(self):
        assert str(ParseError("oops")) == "oops"

    def test_empty_document_carries_id(self):
        error = EmptyDocumentError("d9")
        assert error.doc_id == "d9"
        assert "d9" in str(error)

    def test_catching_base_class_works(self):
        with pytest.raises(ReproError):
            raise UnknownDocumentError("d1")
