"""Executable documentation: the README's code snippets must run.

Extracts fenced Python blocks from README.md and executes the
self-contained ones, so the front-page examples can never drift from the
actual API.  Blocks that reference licensed data files or placeholder
variables are recognized and skipped explicitly.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

README = Path(__file__).parent.parent / "README.md"

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)

# Markers of blocks that illustrate APIs over data we cannot ship (or
# that continue such a block and reference its variables).
_SKIP_MARKERS = (
    "load_rf2(", "load_umls(", "load_obo(",  # licensed sources
    "for_ontology(snomed)",                  # continues the RF2 block
)


def _python_blocks() -> list[str]:
    text = README.read_text()
    return _BLOCK_RE.findall(text)


BLOCKS = _python_blocks()


def test_readme_has_python_blocks():
    assert len(BLOCKS) >= 3


@pytest.mark.parametrize("index", range(len(BLOCKS)))
def test_readme_block_runs(index, capsys):
    block = BLOCKS[index]
    if any(marker in block for marker in _SKIP_MARKERS):
        pytest.skip("illustrates licensed-data APIs")
    namespace: dict = {}
    exec(compile(block, f"README.md[block {index}]", "exec"), namespace)
    capsys.readouterr()  # swallow the snippet's prints


def test_quickstart_block_output_is_the_documented_one():
    quickstart = next(block for block in BLOCKS
                      if "SearchEngine" in block and "rds" in block)
    namespace: dict = {}
    exec(compile(quickstart, "README.md[quickstart]", "exec"), namespace)
    results = namespace["results"]
    assert results.doc_ids() == ["d2", "d3"]      # documented output
    assert results.distances() == [2.0, 2.0]      # documented output
