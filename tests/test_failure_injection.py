"""Failure-injection tests: misbehaving backends and corrupted state.

The search algorithms sit on pluggable storage; these tests check that
failures surface as the library's own exceptions at sensible boundaries
instead of corrupting results silently.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.core.knds import KNDSearch
from repro.core.persistence import load_engine, save_engine
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.datasets import example4_collection, figure3_ontology
from repro.exceptions import ParseError, ReproError, UnknownDocumentError
from repro.index.base import ForwardIndexBase, InvertedIndexBase
from repro.index.memory import MemoryForwardIndex, MemoryInvertedIndex


class _GhostInvertedIndex(InvertedIndexBase):
    """Inverted index that advertises a document the forward side lacks."""

    def __init__(self, inner: InvertedIndexBase, ghost_doc: str,
                 at_concept: str) -> None:
        self._inner = inner
        self._ghost = ghost_doc
        self._at = at_concept

    def postings(self, concept_id):
        postings = tuple(self._inner.postings(concept_id))
        if concept_id == self._at:
            postings = postings + (self._ghost,)
        return postings

    def indexed_concepts(self):
        return self._inner.indexed_concepts()

    def document_frequency(self, concept_id):
        return len(self.postings(concept_id))


class _FlakyForwardIndex(ForwardIndexBase):
    """Forward index that fails after N lookups (disk dying mid-query)."""

    def __init__(self, inner: ForwardIndexBase, budget: int) -> None:
        self._inner = inner
        self._budget = budget

    def _spend(self) -> None:
        if self._budget <= 0:
            raise OSError("simulated storage failure")
        self._budget -= 1

    def concepts(self, doc_id):
        self._spend()
        return self._inner.concepts(doc_id)

    def concept_count(self, doc_id):
        self._spend()
        return self._inner.concept_count(doc_id)

    def doc_ids(self):
        return self._inner.doc_ids()

    def __len__(self):
        return len(self._inner)


class TestInconsistentIndexes:
    def test_ghost_document_surfaces_as_unknown_document(self, figure3):
        collection = example4_collection()
        inverted = _GhostInvertedIndex(
            MemoryInvertedIndex.from_collection(collection),
            ghost_doc="phantom", at_concept="F")
        forward = MemoryForwardIndex.from_collection(collection)
        searcher = KNDSearch(figure3, inverted=inverted, forward=forward)
        with pytest.raises(UnknownDocumentError):
            # The phantom document is touched via F's postings and its
            # exact distance eventually requires a forward lookup.
            searcher.rds(["F", "I"], k=6, error_threshold=1.0)

    def test_ghost_in_sds_fails_at_size_lookup(self, figure3):
        collection = example4_collection()
        inverted = _GhostInvertedIndex(
            MemoryInvertedIndex.from_collection(collection),
            ghost_doc="phantom", at_concept="F")
        forward = MemoryForwardIndex.from_collection(collection)
        searcher = KNDSearch(figure3, inverted=inverted, forward=forward)
        with pytest.raises(UnknownDocumentError):
            searcher.sds(["F"], k=6)


class TestStorageFailureMidQuery:
    def test_io_error_propagates_not_swallowed(self, figure3):
        collection = example4_collection()
        forward = _FlakyForwardIndex(
            MemoryForwardIndex.from_collection(collection), budget=1)
        searcher = KNDSearch(
            figure3,
            inverted=MemoryInvertedIndex.from_collection(collection),
            forward=forward)
        with pytest.raises(OSError):
            searcher.rds(["F", "I"], k=6, error_threshold=1.0)


class TestCorruptedPersistence:
    def test_truncated_manifest(self, tmp_path):
        from repro.core.engine import SearchEngine

        engine = SearchEngine(figure3_ontology(), example4_collection())
        save_engine(engine, tmp_path / "deploy")
        (tmp_path / "deploy" / "engine.json").write_text("{not json")
        with pytest.raises(Exception):
            load_engine(tmp_path / "deploy")

    def test_missing_corpus_file(self, tmp_path):
        from repro.core.engine import SearchEngine

        engine = SearchEngine(figure3_ontology(), example4_collection())
        save_engine(engine, tmp_path / "deploy")
        (tmp_path / "deploy" / "corpus.jsonl").unlink()
        with pytest.raises(FileNotFoundError):
            load_engine(tmp_path / "deploy")

    def test_corrupted_corpus_line_reports_location(self, tmp_path):
        from repro.core.engine import SearchEngine

        engine = SearchEngine(figure3_ontology(), example4_collection())
        save_engine(engine, tmp_path / "deploy")
        corpus_path = tmp_path / "deploy" / "corpus.jsonl"
        corpus_path.write_text(
            corpus_path.read_text() + "garbage line\n")
        with pytest.raises(ParseError) as excinfo:
            load_engine(tmp_path / "deploy")
        assert excinfo.value.line == 7

    def test_sqlite_ontology_without_metadata(self, tmp_path):
        path = tmp_path / "broken.db"
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE meta (key TEXT, value TEXT)")
        connection.commit()
        connection.close()
        from repro.ontology.io.sqlitedb import SQLiteOntology
        with pytest.raises(ReproError):
            SQLiteOntology(path)


class TestEmptyWorlds:
    def test_engine_over_empty_collection(self, figure3):
        from repro.core.engine import SearchEngine

        engine = SearchEngine(figure3, DocumentCollection(name="empty"))
        results = engine.rds(["F"], k=5)
        assert results.results == []

    def test_knds_over_empty_collection_terminates(self, figure3):
        searcher = KNDSearch(figure3, DocumentCollection(name="empty"))
        assert searcher.rds(["F", "I"], k=3).results == []
        assert searcher.sds(["F"], k=3).results == []

    def test_document_with_concepts_outside_corpus_vocabulary(self,
                                                              figure3):
        # Query concepts exist in the ontology but in no document.
        collection = DocumentCollection([Document("d1", ["V"])])
        searcher = KNDSearch(figure3, collection)
        results = searcher.rds(["C"], k=1)
        assert results.doc_ids() == ["d1"]
