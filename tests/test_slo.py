"""SLO tracker: availability, latency objectives, burn rate, windows."""

from __future__ import annotations

import pytest

from repro.obs.slo import SLOTracker


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def make_tracker(**overrides):
    defaults = {"availability_target": 0.9,
                "latency_objective_seconds": 0.5,
                "clock": FakeClock()}
    defaults.update(overrides)
    return SLOTracker(**defaults)


class TestAccounting:
    def test_success_within_objective_is_good(self):
        tracker = make_tracker()
        tracker.observe("/search/rds", 200, 0.1)
        snapshot = tracker.snapshot()
        endpoint = snapshot["endpoints"]["/search/rds"]
        assert endpoint["requests"] == 1
        assert endpoint["unavailable"] == 0
        assert endpoint["latency_misses"] == 0
        assert endpoint["availability"] == 1.0

    def test_5xx_counts_unavailable(self):
        tracker = make_tracker()
        tracker.observe("/search/rds", 500, 0.1)
        tracker.observe("/search/rds", 200, 0.1)
        endpoint = tracker.snapshot()["endpoints"]["/search/rds"]
        assert endpoint["unavailable"] == 1
        assert endpoint["availability"] == 0.5

    def test_4xx_is_available(self):
        tracker = make_tracker()
        tracker.observe("/search/rds", 429, 0.01)
        endpoint = tracker.snapshot()["endpoints"]["/search/rds"]
        assert endpoint["unavailable"] == 0

    def test_slow_success_is_a_latency_miss_not_unavailable(self):
        tracker = make_tracker()
        tracker.observe("/search/rds", 200, 0.9)
        endpoint = tracker.snapshot()["endpoints"]["/search/rds"]
        assert endpoint["latency_misses"] == 1
        assert endpoint["unavailable"] == 0

    def test_slow_5xx_counted_once_as_unavailable(self):
        tracker = make_tracker()
        tracker.observe("/search/rds", 500, 2.0)
        endpoint = tracker.snapshot()["endpoints"]["/search/rds"]
        assert endpoint["unavailable"] == 1
        assert endpoint["latency_misses"] == 0

    def test_endpoints_tracked_separately(self):
        tracker = make_tracker()
        tracker.observe("/search/rds", 200, 0.1)
        tracker.observe("/search/sds", 500, 0.1)
        endpoints = tracker.snapshot()["endpoints"]
        assert endpoints["/search/rds"]["unavailable"] == 0
        assert endpoints["/search/sds"]["unavailable"] == 1

    def test_latency_quantiles_in_snapshot(self):
        tracker = make_tracker()
        for _ in range(20):
            tracker.observe("/search/rds", 200, 0.01)
        endpoint = tracker.snapshot()["endpoints"]["/search/rds"]
        assert 0.0 < endpoint["latency_p50_seconds"] <= 0.1
        assert endpoint["latency_p99_seconds"] \
            >= endpoint["latency_p50_seconds"]


class TestBurnRate:
    def test_no_traffic_has_no_burn_rate(self):
        assert make_tracker().burn_rate(300.0) is None

    def test_all_good_burns_zero(self):
        tracker = make_tracker()
        for _ in range(10):
            tracker.observe("/search/rds", 200, 0.1)
        assert tracker.burn_rate(300.0) == 0.0

    def test_burn_rate_is_bad_fraction_over_error_budget(self):
        tracker = make_tracker(availability_target=0.9)
        for _ in range(8):
            tracker.observe("/search/rds", 200, 0.1)
        for _ in range(2):
            tracker.observe("/search/rds", 500, 0.1)
        # bad fraction 0.2 over a 0.1 error budget -> burning 2x.
        assert tracker.burn_rate(300.0) == pytest.approx(2.0)

    def test_latency_misses_burn_budget_too(self):
        tracker = make_tracker(availability_target=0.9)
        tracker.observe("/search/rds", 200, 5.0)
        assert tracker.burn_rate(300.0) == pytest.approx(10.0)

    def test_old_buckets_age_out_of_the_window(self):
        clock = FakeClock(1000.0)
        tracker = make_tracker(clock=clock)
        tracker.observe("/search/rds", 500, 0.1)
        clock.now += 400.0  # past the 300s window
        tracker.observe("/search/rds", 200, 0.1)
        windows = tracker.snapshot()["windows"]
        assert windows["300s"]["requests"] == 1
        assert windows["300s"]["bad"] == 0
        assert windows["3600s"]["requests"] == 2
        assert windows["3600s"]["bad"] == 1

    def test_snapshot_reports_both_windows(self):
        tracker = make_tracker()
        tracker.observe("/search/rds", 200, 0.1)
        snapshot = tracker.snapshot()
        assert snapshot["availability_target"] == 0.9
        assert snapshot["latency_objective_seconds"] == 0.5
        assert set(snapshot["windows"]) == {"300s", "3600s"}


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"availability_target": 0.0},
        {"availability_target": 1.0},
        {"latency_objective_seconds": 0.0},
        {"bucket_seconds": 0.0},
    ])
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_tracker(**kwargs)
