"""Request-scoped trace context: W3C propagation, sampling, threads.

The tentpole guarantees three things the older stack-based tracer could
not: (1) every span carries a 128-bit trace id and W3C ``traceparent``
round-trips losslessly, (2) the active span follows the request across
thread-pool hops via :mod:`contextvars` — concurrent requests never
steal each other's parents, and (3) head sampling is a pure function of
the trace id, so clients and servers agree on what gets collected.
"""

from __future__ import annotations

import contextvars
import io
import json
import logging
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.logging import StructuredFormatter, log_context, setup_logging
from repro.obs.tracing import (SpanContext, Tracer, attach, current_context,
                               current_span, format_traceparent, head_sample,
                               parse_traceparent)


class TestTraceparent:
    def test_valid_header_parses(self):
        header = ("00-0af7651916cd43dd8448eb211c80319c-"
                  "b7ad6b7169203331-01")
        context = parse_traceparent(header)
        assert context is not None
        assert context.trace_id == 0x0AF7651916CD43DD8448EB211C80319C
        assert context.span_id == 0xB7AD6B7169203331
        assert context.sampled

    def test_unsampled_flag_respected(self):
        header = ("00-0af7651916cd43dd8448eb211c80319c-"
                  "b7ad6b7169203331-00")
        context = parse_traceparent(header)
        assert context is not None
        assert not context.sampled

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-abc-def-01",                                       # short ids
        "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
        "00-00000000000000000000000000000000-b7ad6b7169203331-01",
        "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
        "00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01",
        "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
    ])
    def test_malformed_headers_return_none(self, header):
        assert parse_traceparent(header) is None

    def test_format_parse_roundtrip(self):
        context = SpanContext(trace_id=0xABCDEF, span_id=0x1234,
                              sampled=False)
        assert parse_traceparent(format_traceparent(context)) == context

    def test_span_context_hex_forms(self):
        context = SpanContext(trace_id=1, span_id=2)
        assert context.trace_id_hex == "0" * 31 + "1"
        assert context.span_id_hex == "0" * 15 + "2"
        assert context.traceparent == (
            f"00-{context.trace_id_hex}-{context.span_id_hex}-01")


class TestHeadSampling:
    def test_rate_one_samples_everything(self):
        assert all(head_sample(trace_id, 1.0)
                   for trace_id in (1, 2**64, 2**127))

    def test_rate_zero_samples_nothing(self):
        assert not any(head_sample(trace_id, 0.0)
                       for trace_id in (1, 2**64, 2**127))

    def test_deterministic_in_trace_id(self):
        # Spread ids across the sampling domain (low bits decide; small
        # sequential ints would all land under any non-zero rate).
        ids = [(index * 0x9E3779B97F4A7C15) % 2**128
               for index in range(200)]
        verdicts = [head_sample(trace_id, 0.5) for trace_id in ids]
        assert verdicts == [head_sample(trace_id, 0.5)
                            for trace_id in ids]
        assert any(verdicts) and not all(verdicts)

    def test_sampled_tracer_collects_only_sampled_traces(self):
        tracer = Tracer(sample_rate=0.0, seed=7)
        with tracer.span("engine.query"):
            with tracer.span("knds.rds"):
                pass
        assert tracer.spans_started == 2
        assert tracer.spans_collected == 0
        assert tracer.to_dicts() == []

    def test_remote_parent_decides_sampling(self):
        tracer = Tracer(sample_rate=0.0, seed=7)  # locally: never sample
        remote = SpanContext(trace_id=99, span_id=1, sampled=True)
        with tracer.span("http.request", parent=remote):
            pass
        (span,) = tracer.to_dicts()
        assert span["trace_id"] == f"{99:032x}"


class TestContextPropagation:
    def test_trace_id_shared_down_the_tree(self):
        tracer = Tracer(seed=3)
        with tracer.span("http.request") as root:
            with tracer.span("serve.request") as child:
                assert child.trace_id == root.trace_id
                assert current_span() is child
        assert current_span() is None

    def test_attach_makes_remote_context_the_parent(self):
        tracer = Tracer(seed=3)
        remote = SpanContext(trace_id=42, span_id=7, sampled=True)
        with attach(remote):
            assert current_context() == remote
            with tracer.span("serve.execute"):
                pass
        (span,) = tracer.to_dicts()
        assert span["trace_id"] == f"{42:032x}"
        assert span["parent_id"] == 7

    def test_executor_hop_preserves_parentage_with_copy_context(self):
        tracer = Tracer(seed=3)
        with ThreadPoolExecutor(max_workers=1) as pool:
            with tracer.span("serve.request") as parent:
                context = contextvars.copy_context()
                future = pool.submit(
                    context.run, lambda: tracer.span("serve.execute")
                    .__enter__().__exit__(None, None, None))
                future.result()
        spans = {span["name"]: span for span in tracer.to_dicts()}
        execute = spans["serve.execute"]
        assert execute["parent_id"] == parent.span_id
        assert execute["trace_id"] == spans["serve.request"]["trace_id"]

    def test_concurrent_requests_do_not_cross_parent(self):
        """Satellite 1: two requests on two threads, interleaved.

        The old shared-stack tracer would parent one request's child
        under the *other* request's root whenever their lifetimes
        interleaved; the contextvars tracer keeps each thread's tree
        private.
        """
        tracer = Tracer(seed=5)
        barrier = threading.Barrier(2, timeout=10.0)
        failures: list[str] = []

        def one_request(name: str) -> None:
            with tracer.span(f"http.{name}") as root:
                barrier.wait()  # both roots open before any child starts
                with tracer.span(f"serve.{name}") as child:
                    barrier.wait()  # both children open concurrently
                    if child.parent_id != root.span_id:
                        failures.append(
                            f"{name}: parent {child.parent_id} != root "
                            f"{root.span_id}")
                    if child.trace_id != root.trace_id:
                        failures.append(f"{name}: trace id mismatch")

        threads = [threading.Thread(target=one_request, args=(name,))
                   for name in ("alpha", "beta")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert failures == []
        spans = {span["name"]: span for span in tracer.to_dicts()}
        assert len(spans) == 4
        for name in ("alpha", "beta"):
            assert spans[f"serve.{name}"]["parent_id"] \
                == spans[f"http.{name}"]["span_id"]
            assert spans[f"http.{name}"]["trace_id"] \
                != spans[f"http.alpha" if name == "beta"
                         else "http.beta"]["trace_id"]

    def test_take_trace_removes_matching_spans(self):
        tracer = Tracer(seed=9)
        with tracer.span("engine.query") as span:
            trace_id = span.trace_id
        with tracer.span("engine.other"):
            pass
        taken = tracer.take_trace(trace_id)
        assert [span["name"] for span in taken] == ["engine.query"]
        assert [span["name"] for span in tracer.to_dicts()] \
            == ["engine.other"]
        assert tracer.take_trace(trace_id) == []

    def test_seeded_tracers_mint_identical_trace_ids(self):
        def mint() -> list[str]:
            tracer = Tracer(seed=11)
            ids = []
            for _ in range(5):
                with tracer.span("engine.query") as span:
                    ids.append(span.trace_id)
            return ids

        assert mint() == mint()


class TestLogContext:
    def test_bound_fields_appear_and_unwind(self):
        stream = io.StringIO()
        logger = setup_logging("info", stream=stream)
        with log_context(request_id="req-1", trace_id="t1"):
            logger.info("inside")
        logger.info("outside")
        inside, outside = stream.getvalue().splitlines()
        assert "request_id=req-1" in inside and "trace_id=t1" in inside
        assert "request_id" not in outside

    def test_nested_bindings_inner_wins(self):
        with log_context(request_id="outer", extra_field="kept"):
            with log_context(request_id="inner"):
                from repro.obs.logging import current_log_context
                bound = current_log_context()
        assert bound == {"request_id": "inner", "extra_field": "kept"}

    def test_json_lines_escapes_quotes_and_newlines(self):
        """Satellite 2: hostile field values stay one parseable line."""
        formatter = StructuredFormatter(json_lines=True)
        record = logging.LogRecord(
            "repro.serve.access", logging.INFO, __file__, 1,
            'evil "quoted"\nmessage', (), None)
        record.path = '/search/rds?q="x"\ny'
        rendered = formatter.format(record)
        assert "\n" not in rendered
        parsed = json.loads(rendered)
        assert parsed["msg"] == 'evil "quoted"\nmessage'
        assert parsed["path"] == '/search/rds?q="x"\ny'

    def test_kv_mode_quotes_hostile_values(self):
        formatter = StructuredFormatter(json_lines=False)
        record = logging.LogRecord(
            "repro.serve.access", logging.INFO, __file__, 1, "ok", (),
            None)
        record.path = 'a "b"\nc'
        rendered = formatter.format(record)
        assert "\n" not in rendered
        assert 'path="a \\"b\\"\\nc"' in rendered
