"""Unit tests for the bundled fixtures and the public package surface."""

from __future__ import annotations

import repro
from repro.datasets import (
    EXAMPLE_DOCUMENT,
    EXAMPLE_QUERY,
    example4_collection,
    example_collection_with_example_doc,
    figure3_ontology,
)


class TestFigure3:
    def test_has_all_22_concepts(self):
        ontology = figure3_ontology()
        assert len(ontology) == 22
        assert set(ontology.concepts()) == set("ABCDEFGHIJKLMNOPQRSTUV")

    def test_j_is_the_multi_parent_node(self):
        ontology = figure3_ontology()
        assert set(ontology.parents("J")) == {"G", "F"}

    def test_labels_for_named_concepts(self):
        ontology = figure3_ontology()
        assert ontology.label("G") == "heart valve finding"
        assert ontology.label("C") == "C"


class TestExampleCollection:
    def test_six_documents(self):
        collection = example4_collection()
        assert collection.doc_ids() == ["d1", "d2", "d3", "d4", "d5", "d6"]

    def test_augmented_collection_adds_d0(self):
        collection = example_collection_with_example_doc()
        assert collection.get("d0").concepts == tuple(sorted(
            EXAMPLE_DOCUMENT))
        assert len(collection) == 7

    def test_fixture_constants(self):
        assert EXAMPLE_DOCUMENT == ("F", "R", "T", "V")
        assert EXAMPLE_QUERY == ("I", "L", "U")


class TestPublicAPI:
    def test_quickstart_from_docstring(self):
        engine = repro.SearchEngine(repro.figure3_ontology(),
                                    repro.example4_collection())
        assert [r.doc_id for r in engine.rds(["F", "I"], k=2).results] == [
            "d2", "d3",
        ]

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__ == "1.0.0"
