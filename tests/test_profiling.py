"""Sampling profiler and resource gauges (:mod:`repro.obs.profiling`)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import (ProfileSnapshot, ResourceSampler,
                                 StatisticalProfiler)


def _busy_until(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(200))


class TestStatisticalProfiler:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            StatisticalProfiler(interval_seconds=0.0)
        with pytest.raises(ValueError):
            StatisticalProfiler(max_frames=0)

    def test_start_stop_idempotent(self):
        profiler = StatisticalProfiler(interval_seconds=0.001)
        assert not profiler.running
        profiler.start()
        profiler.start()
        assert profiler.running
        profiler.stop()
        profiler.stop()
        assert not profiler.running

    def test_samples_a_busy_thread(self):
        profiler = StatisticalProfiler(interval_seconds=0.001)
        stop = threading.Event()
        worker = threading.Thread(target=_busy_until, args=(stop,),
                                  daemon=True)
        worker.start()
        profiler.start()
        time.sleep(0.15)
        profiler.stop()
        stop.set()
        worker.join()
        snapshot = profiler.snapshot()
        assert snapshot.samples > 0
        assert snapshot.overhead_seconds > 0
        assert snapshot.stacks
        # The busy worker's stack must appear, collapsed leaf-last.
        assert any("_busy_until" in stack for stack in snapshot.stacks)
        # The profiler never samples its own thread.
        assert not any("profiling:_loop" in stack.split(";")[-1]
                       for stack in snapshot.stacks
                       if "_loop" in stack and "wait" not in stack)

    def test_snapshot_publishes_counters(self):
        registry = MetricsRegistry()
        profiler = StatisticalProfiler(interval_seconds=0.001)
        profiler.bind(registry)
        profiler.start()
        time.sleep(0.05)
        profiler.stop()
        snapshot = profiler.snapshot()
        values = registry.snapshot()
        assert values["profiler.samples"]["value"] == snapshot.samples
        assert values["profiler.overhead_seconds"]["value"] \
            == pytest.approx(snapshot.overhead_seconds)

    def test_rebind_does_not_double_count(self):
        profiler = StatisticalProfiler(interval_seconds=0.001)
        first = MetricsRegistry()
        profiler.bind(first)
        profiler.start()
        time.sleep(0.03)
        profiler.stop()
        profiler.snapshot()
        published = first.snapshot()["profiler.samples"]["value"]
        second = MetricsRegistry()
        profiler.bind(second)
        profiler.snapshot()
        # Everything already published to `first` stays there; the
        # fresh registry only sees deltas accumulated after the bind.
        assert "profiler.samples" not in second.snapshot()
        assert first.snapshot()["profiler.samples"]["value"] == published

    def test_reset_clears_aggregates(self):
        profiler = StatisticalProfiler(interval_seconds=0.001)
        profiler.start()
        time.sleep(0.02)
        profiler.stop()
        assert profiler.snapshot().samples > 0
        profiler.reset()
        snapshot = profiler.snapshot()
        assert snapshot.samples == 0
        assert snapshot.stacks == {}


class TestProfileSnapshot:
    def _snapshot(self):
        return ProfileSnapshot(
            samples=5, overhead_seconds=0.001, interval_seconds=0.01,
            running=False,
            stacks={"a;b;c": 3, "a;b": 1, "x;y": 4})

    def test_collapsed_lines(self):
        lines = self._snapshot().collapsed()
        assert lines == ["a;b 1", "a;b;c 3", "x;y 4"]

    def test_top_orders_hottest_first(self):
        assert self._snapshot().top(2) == [("x;y", 4), ("a;b;c", 3)]

    def test_to_dict_round_trips_stacks(self):
        row = self._snapshot().to_dict()
        assert row["samples"] == 5
        assert row["stacks"] == {"a;b": 1, "a;b;c": 3, "x;y": 4}


class TestResourceSampler:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            ResourceSampler(interval_seconds=0.0)

    def test_sample_once_publishes_gauges(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry=registry)
        sampler.add_source("resource.answer", lambda: 42.0, "the answer")
        values = sampler.sample_once()
        assert values == {"resource.answer": 42.0}
        assert registry.snapshot()["resource.answer"]["value"] == 42.0

    def test_failing_supplier_is_skipped(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry=registry)
        sampler.add_source("resource.bad", lambda: 1 / 0, "dies")
        sampler.add_source("resource.good", lambda: 7.0, "lives")
        values = sampler.sample_once()
        assert values == {"resource.good": 7.0}
        assert "resource.bad" not in registry.snapshot()

    def test_gc_sources(self):
        sampler = ResourceSampler()
        sampler.add_gc_sources()
        values = sampler.sample_once()
        for generation in range(3):
            assert f"resource.gc_gen{generation}_collections" in values
        assert values["resource.gc_tracked_objects"] >= 0

    def test_background_thread_lifecycle(self):
        sampler = ResourceSampler(interval_seconds=0.01)
        seen = []
        sampler.add_source("resource.tick",
                           lambda: seen.append(1) or float(len(seen)),
                           "tick counter")
        sampler.start()
        sampler.start()  # idempotent
        time.sleep(0.05)
        sampler.stop()
        sampler.stop()  # idempotent
        assert seen  # sampled at least once (immediately on start)
        assert not sampler.running
