"""Property-based tests for radix invariants, weighting, measures, IO.

Companion to ``test_properties.py``: that module cross-validates the
paper's core algorithms; this one covers the structural invariants of the
radix machinery and the extension modules (weighted distances,
information-content measures, query expansion, corpus serialization).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.drc import DRC
from repro.core.expansion import QueryExpander
from repro.core.radix import RadixDAG
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.corpus.io import load_jsonl, save_jsonl
from repro.ontology.dewey import DeweyIndex
from repro.ontology.measures import InformationContent
from repro.ontology.weighting import (
    weighted_distance_from_dradix,
    weighted_document_document_distance,
    weighted_document_query_distance,
)
from tests.test_properties import small_dags, worlds


def _walk(dag, address):
    node = dag.root
    remaining = tuple(address)
    while remaining:
        position = node.index.get(remaining[0])
        if position is None:
            return None
        label, child = node.children[position]
        if remaining[:len(label)] != label:
            return None
        remaining = remaining[len(label):]
        node = child
    return node


class TestRadixInvariants:
    @given(small_dags(min_concepts=3), st.data())
    @settings(max_examples=60, deadline=None)
    def test_structure_after_random_insertions(self, ontology, data):
        concepts = list(ontology.concepts())
        count = data.draw(st.integers(1, min(8, len(concepts))))
        subset = data.draw(st.lists(st.sampled_from(concepts),
                                    min_size=count, max_size=count,
                                    unique=True))
        dewey = DeweyIndex(ontology)
        pairs = dewey.sorted_address_list(subset)
        dag = RadixDAG.from_addresses(ontology, pairs)

        # Every inserted address resolves through the radix structure to
        # its concept's node, marked as a target.
        for address, concept in pairs:
            node = _walk(dag, address)
            assert node is not None
            assert node.concept_id == concept
            assert node.is_target

        # One node per concept (the registry deduplicates).
        ids = [node.concept_id for node in dag.nodes()]
        assert len(ids) == len(set(ids))

        # First-component invariant and index consistency.
        for node in dag.nodes():
            firsts = [label[0] for label, _child in node.children]
            assert len(firsts) == len(set(firsts))
            assert node.index == {
                label[0]: position
                for position, (label, _child) in enumerate(node.children)
            }

        # Compression bound: at most ~2 nodes per inserted path.
        assert len(dag) <= 2 * len(pairs) + 1

    @given(small_dags(min_concepts=3), st.data())
    @settings(max_examples=30, deadline=None)
    def test_radix_path_labels_reconstruct_addresses(self, ontology, data):
        concepts = list(ontology.concepts())
        subset = data.draw(st.lists(st.sampled_from(concepts), min_size=1,
                                    max_size=5, unique=True))
        dewey = DeweyIndex(ontology)
        pairs = dewey.sorted_address_list(subset)
        dag = RadixDAG.from_addresses(ontology, pairs)
        # Every root-to-target path through the radix concatenates to a
        # genuine Dewey address of the target concept.
        found: set = set()

        def explore(node, prefix):
            if node.is_target and prefix:
                found.add((prefix, node.concept_id))
            for label, child in node.children:
                explore(child, prefix + label)

        explore(dag.root, ())
        assert found <= set(pairs)


class TestWeightedProperties:
    @given(worlds(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_uniform_weights_equal_unweighted(self, world, data):
        ontology, collection, query = world
        document = data.draw(st.sampled_from(list(collection)))
        drc = DRC(ontology)
        unweighted = drc.document_query_distance(document.concepts, query)
        weighted = weighted_document_query_distance(
            ontology, document.concepts, query,
            weights={concept: 1.0 for concept in query})
        assert weighted == unweighted

    @given(worlds(), st.data(),
           st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_weight_scaling_is_linear(self, world, data, factor):
        ontology, collection, query = world
        document = data.draw(st.sampled_from(list(collection)))
        base = weighted_document_query_distance(
            ontology, document.concepts, query)
        scaled = weighted_document_query_distance(
            ontology, document.concepts, query,
            weights={concept: factor for concept in query})
        assert scaled == pytest.approx(factor * base)

    @given(worlds(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_weighted_ddd_symmetric_and_matches_dradix(self, world, data):
        ontology, collection, query = world
        document = data.draw(st.sampled_from(list(collection)))
        weights = {
            concept: 1.0 + (index % 3)
            for index, concept in enumerate(
                sorted(set(document.concepts) | set(query)))
        }
        forward = weighted_document_document_distance(
            ontology, document.concepts, query, weights=weights)
        backward = weighted_document_document_distance(
            ontology, query, document.concepts, weights=weights)
        assert forward == pytest.approx(backward)
        dradix = DRC(ontology).build(document.concepts, query)
        assert weighted_distance_from_dradix(
            dradix, weights=weights, kind="ddd") == pytest.approx(forward)


class TestInformationContentProperties:
    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_ic_monotone_down_the_hierarchy(self, world):
        ontology, collection, _query = world
        ic = InformationContent.from_collection(ontology, collection)
        for concept in ontology.concepts():
            for child in ontology.children(concept):
                assert ic[child] >= ic[concept] - 1e-9

    @given(worlds())
    @settings(max_examples=40, deadline=None)
    def test_root_ic_zero(self, world):
        ontology, collection, _query = world
        ic = InformationContent.from_collection(ontology, collection)
        assert ic[ontology.root] == pytest.approx(0.0)

    @given(worlds(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_lin_bounds_and_symmetry(self, world, data):
        ontology, collection, _query = world
        ic = InformationContent.from_collection(ontology, collection)
        concepts = list(ontology.concepts())
        first = data.draw(st.sampled_from(concepts))
        second = data.draw(st.sampled_from(concepts))
        value = ic.lin_similarity(first, second)
        assert -1e-9 <= value <= 1.0 + 1e-9
        assert value == pytest.approx(ic.lin_similarity(second, first))

    @given(worlds(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_jiang_conrath_pseudo_metric(self, world, data):
        ontology, collection, _query = world
        ic = InformationContent.from_collection(ontology, collection)
        concepts = list(ontology.concepts())
        first = data.draw(st.sampled_from(concepts))
        second = data.draw(st.sampled_from(concepts))
        distance = ic.jiang_conrath_distance(first, second)
        assert distance >= -1e-9
        assert ic.jiang_conrath_distance(first, first) == pytest.approx(0.0)
        assert distance == pytest.approx(
            ic.jiang_conrath_distance(second, first))


class TestExpansionProperties:
    @given(small_dags(min_concepts=3), st.data(),
           st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_expansion_weights_and_monotonicity(self, ontology, data,
                                                radius):
        concepts = list(ontology.concepts())
        seeds = data.draw(st.lists(st.sampled_from(concepts), min_size=1,
                                   max_size=3, unique=True))
        expander = QueryExpander(ontology, radius=radius, decay=0.5)
        weights = expander.expand(seeds)
        for seed in seeds:
            assert weights[seed] == 1.0
        for weight in weights.values():
            assert 0.0 < weight <= 1.0
        if radius > 0:
            smaller = QueryExpander(ontology, radius=radius - 1, decay=0.5)
            assert set(smaller.expand(seeds)) <= set(weights)

    @given(small_dags(min_concepts=3), st.data())
    @settings(max_examples=30, deadline=None)
    def test_expansion_weight_reflects_distance(self, ontology, data):
        from repro.ontology.distance import concept_distance
        concepts = list(ontology.concepts())
        seed = data.draw(st.sampled_from(concepts))
        expander = QueryExpander(ontology, radius=2, decay=0.5)
        for concept, weight in expander.expand([seed]).items():
            distance = concept_distance(ontology, seed, concept)
            assert weight == pytest.approx(0.5 ** distance)


class TestMapReduceEquivalence:
    @given(worlds(), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_mapreduce_rds_matches_serial_on_random_worlds(self, world, k):
        from repro.core.knds import KNDSearch
        from repro.core.mapreduce import MapReduceKNDS

        ontology, collection, query = world
        serial = KNDSearch(ontology, collection)
        parallel = MapReduceKNDS(ontology, collection)
        assert parallel.rds(query, k).distances() == \
            serial.rds(query, k).distances()

    @given(worlds(), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_mapreduce_sds_matches_serial_on_random_worlds(self, world, k):
        from repro.core.knds import KNDSearch
        from repro.core.mapreduce import MapReduceKNDS

        ontology, collection, query = world
        serial = KNDSearch(ontology, collection)
        parallel = MapReduceKNDS(ontology, collection)
        assert parallel.sds(query, k).distances() == pytest.approx(
            serial.sds(query, k).distances())


_doc_ids = st.text(alphabet="abcdefgh0123456789-", min_size=1, max_size=12)


class TestCorpusIOProperties:
    @given(st.lists(
        st.tuples(
            _doc_ids,
            st.lists(st.text(alphabet="CX0123456789", min_size=1,
                             max_size=8), min_size=1, max_size=5),
            st.one_of(st.none(), st.text(max_size=30)),
        ),
        min_size=0, max_size=8,
        unique_by=lambda entry: entry[0],
    ))
    @settings(max_examples=40, deadline=None)
    def test_jsonl_roundtrip(self, entries):
        import tempfile
        from pathlib import Path

        collection = DocumentCollection(
            (Document(doc_id, concepts, text=text)
             for doc_id, concepts, text in entries),
            name="prop",
        )
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "corpus.jsonl"
            save_jsonl(collection, path)
            reloaded = load_jsonl(path)
        assert reloaded.doc_ids() == collection.doc_ids()
        for document in collection:
            copy = reloaded.get(document.doc_id)
            assert copy.concepts == document.concepts
            assert copy.text == document.text


class TestExtractionProperties:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_spans_are_disjoint_and_in_bounds(self, data):
        from repro.corpus.text.mapper import ConceptMapper
        vocabulary = ["fever", "chest pain", "acute chest pain", "cough",
                      "renal failure", "acute renal failure"]
        terms = {
            term: f"C{index}" for index, term in enumerate(vocabulary)
        }
        mapper = ConceptMapper(terms)
        tokens = data.draw(st.lists(
            st.sampled_from("fever chest pain acute renal failure cough "
                            "and with stable".split()),
            max_size=20))
        spans = mapper.spans(tokens)
        previous_end = 0
        for start, end, concept in spans:
            assert 0 <= start < end <= len(tokens)
            assert start >= previous_end  # non-overlapping, ordered
            previous_end = end
            assert " ".join(tokens[start:end]) in terms
            assert terms[" ".join(tokens[start:end])] == concept


class TestNoteGenerationRoundTrip:
    @given(small_dags(min_concepts=6), st.data(), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_generated_notes_reextract_exactly(self, ontology, data, seed):
        from repro.corpus.text.notegen import generate_note
        from repro.corpus.text.pipeline import ConceptExtractor

        concepts = [c for c in ontology.concepts() if c != ontology.root]
        if len(concepts) < 3:
            return
        positive = data.draw(st.lists(st.sampled_from(concepts),
                                      min_size=1, max_size=3, unique=True))
        decoys = [c for c in concepts if c not in set(positive)][:2]
        text = generate_note(ontology, positive, decoys, seed=seed)
        extractor = ConceptExtractor.for_ontology(ontology)
        assert extractor.extract_concepts(text) == set(positive)


class TestMeasureRankingBranches:
    @given(worlds(), st.data())
    @settings(max_examples=20, deadline=None)
    def test_resnik_ranking_runs_and_orders(self, world, data):
        from repro.ontology.measures import (
            InformationContent,
            rank_concepts_by_similarity,
        )

        ontology, collection, _query = world
        ic = InformationContent.from_collection(ontology, collection)
        concepts = list(ontology.concepts())
        anchor = data.draw(st.sampled_from(concepts))
        candidates = concepts[:5]
        ranked = rank_concepts_by_similarity(
            ontology, anchor, candidates, measure="resnik",
            information_content=ic)
        scores = [score for _concept, score in ranked]
        assert scores == sorted(scores, reverse=True)
        assert {concept for concept, _ in ranked} == set(candidates)
