"""API-surface quality gates.

Keeps the public surface honest as the library grows: every module
imports cleanly, every ``__all__`` entry resolves, and every public
callable carries a docstring (deliverable-grade documentation is a
feature here, not a nicety).
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield "repro"
    for module_info in pkgutil.walk_packages(repro.__path__,
                                             prefix="repro."):
        yield module_info.name


ALL_MODULES = sorted(set(_walk_modules()))


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name",
                         [name for name in ALL_MODULES
                          if not name.endswith("__main__")])
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__: {name}"


def _public_members():
    for module_name in ALL_MODULES:
        module = importlib.import_module(module_name)
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isfunction(member) or inspect.isclass(member)):
                continue
            if getattr(member, "__module__", None) != module_name:
                continue  # re-export; documented at its home
            yield f"{module_name}.{name}", member


PUBLIC_MEMBERS = sorted(_public_members(), key=lambda pair: pair[0])


def test_every_public_callable_is_documented():
    undocumented = [
        qualified for qualified, member in PUBLIC_MEMBERS
        if not inspect.getdoc(member)
    ]
    assert undocumented == [], undocumented


def test_public_classes_document_their_public_methods():
    undocumented = []
    for qualified, member in PUBLIC_MEMBERS:
        if not inspect.isclass(member):
            continue
        for name, method in vars(member).items():
            if name.startswith("_") or not inspect.isfunction(method):
                continue
            if not inspect.getdoc(method):
                undocumented.append(f"{qualified}.{name}")
    assert undocumented == [], undocumented


def test_top_level_all_is_sorted_enough_to_review():
    # Not alphabetical by policy, but every entry unique and resolvable.
    assert len(repro.__all__) == len(set(repro.__all__))
    for name in repro.__all__:
        assert getattr(repro, name) is not None
