"""Unit tests for the baseline strategies."""

from __future__ import annotations

import pytest

from repro.baselines.fullscan import FullScanSearch
from repro.baselines.matrix import ConceptDistanceMatrix
from repro.baselines.pairwise import PairwiseDistanceBaseline
from repro.baselines.ta import ThresholdAlgorithm
from repro.datasets import example4_collection
from repro.exceptions import (
    EmptyDocumentError,
    QueryError,
    UnknownConceptError,
)


class TestPairwise:
    def test_counts_pair_evaluations(self, figure3):
        baseline = PairwiseDistanceBaseline(figure3)
        baseline.document_query_distance(("F", "R"), ("I", "L", "U"))
        assert baseline.pair_evaluations == 6
        baseline.reset_counters()
        assert baseline.pair_evaluations == 0

    def test_ddd_quadratic_pair_count(self, figure3):
        baseline = PairwiseDistanceBaseline(figure3)
        baseline.document_document_distance(
            ("F", "R", "T"), ("I", "L", "U", "V"))
        assert baseline.pair_evaluations == 12

    def test_paper_values(self, figure3):
        baseline = PairwiseDistanceBaseline(figure3)
        assert baseline.document_query_distance(
            ("F", "R", "T", "V"), ("I", "L", "U")) == 7
        assert baseline.concept_distance("G", "F") == 5

    def test_empty_rejected(self, figure3):
        baseline = PairwiseDistanceBaseline(figure3)
        with pytest.raises(EmptyDocumentError):
            baseline.document_query_distance((), ("I",))


class TestFullScan:
    def test_returns_global_minimum(self, figure3):
        scan = FullScanSearch(figure3, example4_collection())
        results = scan.rds(("F", "I"), k=6)
        assert results.doc_ids()[0:2] == ["d2", "d3"]
        assert len(results) == 6
        assert results.stats.drc_calls == 6

    def test_k_caps_output_not_work(self, figure3):
        scan = FullScanSearch(figure3, example4_collection())
        results = scan.rds(("F",), k=1)
        assert len(results) == 1
        assert results.stats.docs_examined == 6  # scanned everything

    def test_sds(self, figure3):
        scan = FullScanSearch(figure3, example4_collection())
        results = scan.sds(("F", "R"), k=2)
        assert results.results[0].doc_id == "d1"
        assert results.results[0].distance == 0.0

    def test_validation(self, figure3):
        scan = FullScanSearch(figure3, example4_collection())
        with pytest.raises(QueryError):
            scan.rds((), k=2)
        with pytest.raises(QueryError):
            scan.rds(("F",), k=0)
        with pytest.raises(UnknownConceptError):
            scan.rds(("nope",), k=2)


class TestThresholdAlgorithm:
    def test_postings_sorted_by_distance(self, figure3):
        ta = ThresholdAlgorithm.build(
            figure3, example4_collection(), concepts=("F",))
        postings = ta._sorted["F"]
        distances = [distance for distance, _doc in postings]
        assert distances == sorted(distances)
        assert len(postings) == 6

    def test_rds_matches_expected(self, figure3):
        ta = ThresholdAlgorithm.build(
            figure3, example4_collection(), concepts=("F", "I"))
        results = ta.rds(("F", "I"), k=2)
        assert sorted(results.doc_ids()) == ["d2", "d3"]
        assert results.distances() == [2.0, 2.0]

    def test_early_termination_skips_tail(self, figure3):
        ta = ThresholdAlgorithm.build(
            figure3, example4_collection(), concepts=("F", "I"))
        ta.rds(("F", "I"), k=1)
        # TA must stop before exhausting both postings lists.
        assert ta.sorted_accesses < 12

    def test_missing_postings_raise(self, figure3):
        ta = ThresholdAlgorithm(figure3)
        with pytest.raises(QueryError):
            ta.rds(("F",), k=1)

    def test_index_size(self, figure3):
        collection = example4_collection()
        ta = ThresholdAlgorithm.build(figure3, collection,
                                      concepts=("F", "I", "U"))
        assert ta.index_size() == 3 * len(collection)


class TestMatrix:
    def test_restricted_build_and_lookup(self, figure3):
        matrix = ConceptDistanceMatrix.build(
            figure3, concepts=("F", "I", "G"))
        assert matrix.distance("G", "F") == 5
        assert matrix.distance("F", "F") == 0
        assert matrix.entries() == 9

    def test_unknown_concept(self, figure3):
        matrix = ConceptDistanceMatrix.build(figure3, concepts=("F",))
        with pytest.raises(UnknownConceptError):
            matrix.distance("F", "Z9")

    def test_document_distances(self, figure3):
        matrix = ConceptDistanceMatrix.build(figure3)
        assert matrix.document_query_distance(
            ("F", "R", "T", "V"), ("I", "L", "U")) == 7

    def test_memory_report_quantifies_blowup(self):
        report = ConceptDistanceMatrix.memory_report(2_900_000)
        assert "2,900,000" in report
        assert "GiB" in report
        assert ConceptDistanceMatrix.estimated_entries(1000) == 1_000_000
