"""Flight recorder: capture triggers, lookup, and trace rendering."""

from __future__ import annotations

import pytest

from repro.obs.recorder import FlightRecorder, RequestRecord, render_trace


def _record(request_id="req-1", status=200, seconds=0.01, **overrides):
    fields = {"request_id": request_id, "method": "POST",
              "path": "/search/rds", "status": status, "seconds": seconds}
    fields.update(overrides)
    return RequestRecord(**fields)


def _span(name, span_id, parent_id, start, duration):
    return {"name": name, "span_id": span_id, "parent_id": parent_id,
            "trace_id": "t" * 32, "start": start, "end": start + duration,
            "duration": duration, "attributes": {}}


class TestCaptureTriggers:
    def test_fast_success_is_recent_only(self):
        recorder = FlightRecorder(slow_threshold_seconds=1.0)
        assert recorder.observe(_record(seconds=0.01)) is None
        assert recorder.captured() == []
        assert len(recorder.recent()) == 1

    def test_slow_request_is_captured_with_reason(self):
        recorder = FlightRecorder(slow_threshold_seconds=0.5)
        captured = recorder.observe(_record(seconds=0.6))
        assert captured is not None
        assert captured.reasons == ("slow",)

    def test_error_request_is_captured_even_when_fast(self):
        recorder = FlightRecorder(slow_threshold_seconds=1.0)
        captured = recorder.observe(_record(status=500, seconds=0.01))
        assert captured is not None
        assert captured.reasons == ("error",)

    def test_slow_error_carries_both_reasons(self):
        recorder = FlightRecorder(slow_threshold_seconds=0.5)
        captured = recorder.observe(_record(status=503, seconds=0.9))
        assert captured.reasons == ("error", "slow")

    def test_threshold_zero_captures_everything(self):
        recorder = FlightRecorder(slow_threshold_seconds=0.0)
        assert recorder.observe(_record(seconds=0.0)) is not None

    def test_spans_pulled_lazily_only_on_capture(self):
        recorder = FlightRecorder(slow_threshold_seconds=0.5)
        calls = []

        def spans():
            calls.append(True)
            return [_span("http.request", 1, None, 0.0, 0.6)]

        recorder.observe(_record(seconds=0.01), spans)
        assert calls == []  # fast request: span tree never materialised
        captured = recorder.observe(_record("req-2", seconds=0.9), spans)
        assert calls == [True]
        assert captured.spans[0]["name"] == "http.request"

    def test_capacity_zero_disables_capture(self):
        recorder = FlightRecorder(capacity=0, slow_threshold_seconds=0.0)
        assert recorder.observe(_record(status=500)) is None
        assert recorder.captured() == []
        assert len(recorder.recent()) == 1

    def test_rings_are_bounded(self):
        recorder = FlightRecorder(capacity=2, recent=3,
                                  slow_threshold_seconds=0.0)
        for index in range(5):
            recorder.observe(_record(f"req-{index}"))
        assert [r.request_id for r in recorder.captured()] \
            == ["req-3", "req-4"]
        assert len(recorder.recent()) == 3

    def test_wall_time_from_injected_clock(self):
        recorder = FlightRecorder(slow_threshold_seconds=0.0,
                                  clock=lambda: 1234.5)
        captured = recorder.observe(_record())
        assert captured.wall_time == 1234.5

    @pytest.mark.parametrize("kwargs", [
        {"capacity": -1}, {"recent": 0}, {"slow_threshold_seconds": -0.1},
    ])
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FlightRecorder(**kwargs)


class TestLookup:
    def test_get_by_request_id_and_trace_id(self):
        recorder = FlightRecorder(slow_threshold_seconds=0.0)
        recorder.observe(_record("req-1", trace_id="a" * 32))
        recorder.observe(_record("req-2", trace_id="b" * 32))
        assert recorder.get("req-1").trace_id == "a" * 32
        assert recorder.get("b" * 32).request_id == "req-2"
        assert recorder.get("req-404") is None

    def test_get_prefers_newest_match(self):
        recorder = FlightRecorder(slow_threshold_seconds=0.0)
        recorder.observe(_record("req-1", seconds=0.1))
        recorder.observe(_record("req-1", seconds=0.2))
        assert recorder.get("req-1").seconds == 0.2

    def test_snapshot_counters(self):
        recorder = FlightRecorder(slow_threshold_seconds=0.5)
        recorder.observe(_record(seconds=0.1))
        recorder.observe(_record("req-2", seconds=0.9))
        snapshot = recorder.snapshot()
        assert snapshot["requests_seen"] == 2
        assert snapshot["requests_recorded"] == 1
        assert snapshot["captured"] == 1
        assert snapshot["recent"] == 2


class TestRenderTrace:
    def _captured(self):
        # http.request (100ms) -> serve.request (90ms) -> two children:
        # engine.query (60ms, a leaf here) and knds.rds (20ms); self
        # times are 10, 10, 60, 20 ms for http/serve/engine/knds.
        spans = [
            _span("http.request", 1, None, 0.0, 0.100),
            _span("serve.request", 2, 1, 0.005, 0.090),
            _span("engine.query", 3, 2, 0.010, 0.060),
            _span("knds.rds", 4, 2, 0.072, 0.020),
        ]
        spans[2]["attributes"] = {"k": 10}
        return _record(seconds=0.1, trace_id="t" * 32, sampled=True,
                       reasons=("slow",), spans=spans)

    def test_tree_indentation_and_order(self):
        text = render_trace(self._captured())
        lines = text.splitlines()
        http_line = next(l for l in lines if "http.request" in l)
        serve_line = next(l for l in lines if "serve.request" in l)
        engine_line = next(l for l in lines if "engine.query" in l)
        assert http_line.startswith("http.request")
        assert serve_line.startswith("  serve.request")
        assert engine_line.startswith("    engine.query")
        # Siblings render in start order: engine.query before knds.rds.
        assert lines.index(engine_line) \
            < lines.index(next(l for l in lines if "knds.rds" in l))
        assert "[k=10]" in engine_line

    def test_self_time_subtracts_direct_children(self):
        text = render_trace(self._captured())
        http_line = next(l for l in text.splitlines()
                         if l.startswith("http.request"))
        # 100ms total minus the 90ms serve child -> 10ms self.
        assert "self   10.000 ms" in http_line

    def test_per_layer_rollup_sorted_by_self_time(self):
        text = render_trace(self._captured())
        tail = text[text.index("per-layer self time"):]
        layers = [line.split()[0] for line in tail.splitlines()[1:]]
        assert layers == ["engine", "knds", "http", "serve"]
        assert "60.000 ms" in tail  # engine self time dominates

    def test_unsampled_record_renders_placeholder(self):
        text = render_trace(_record(trace_id="c" * 32, reasons=("slow",)))
        assert "no spans captured" in text

    def test_orphan_spans_render_as_roots(self):
        record = _record(spans=[_span("serve.execute", 9, 404, 0.0, 0.01)],
                         reasons=("slow",))
        text = render_trace(record)
        assert "serve.execute" in text
