"""Per-rule fixture tests for :mod:`repro.analysis`.

Each checker gets at least one snippet that MUST flag and one that MUST
pass, so rule regressions fail loudly in both directions (a silently
dead rule is as bad as a false positive).
"""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source


def _lint(source: str, path: str = "src/repro/core/sample.py",
          select: tuple[str, ...] | None = None):
    findings = lint_source(textwrap.dedent(source), path=path)
    if select is not None:
        findings = [f for f in findings if f.rule in select]
    return findings


def _rules(findings) -> set[str]:
    return {finding.rule for finding in findings}


# ----------------------------------------------------------------------
# RPR000 — parse errors
# ----------------------------------------------------------------------
class TestParseError:
    def test_flags_syntax_error(self):
        findings = _lint("def broken(:\n")
        assert _rules(findings) == {"RPR000"}

    def test_clean_module_has_no_findings(self):
        assert _lint("x = 1\n") == []


# ----------------------------------------------------------------------
# RPR001 — Dewey immutability
# ----------------------------------------------------------------------
class TestDeweyImmutable:
    def test_flags_list_typed_address(self):
        findings = _lint(
            """
            def f() -> None:
                address: DeweyAddress = [1, 2, 3]
            """,
            select=("RPR001",))
        assert len(findings) == 1

    def test_flags_inplace_mutation_of_annotated_address(self):
        findings = _lint(
            """
            def f(address: DeweyAddress) -> None:
                address.append(4)
            """,
            select=("RPR001",))
        assert len(findings) == 1
        assert "append" in findings[0].message

    def test_flags_item_assignment(self):
        findings = _lint(
            """
            def f(address: DeweyAddress) -> None:
                address[0] = 9
            """,
            select=("RPR001",))
        assert len(findings) == 1

    def test_tuple_address_passes(self):
        findings = _lint(
            """
            def f() -> None:
                address: DeweyAddress = (1, 2, 3)
                other = list(address)
                other.append(4)
            """,
            select=("RPR001",))
        assert findings == []


# ----------------------------------------------------------------------
# RPR002 — float distance equality
# ----------------------------------------------------------------------
class TestFloatDistanceEq:
    def test_flags_distance_equality(self):
        findings = _lint(
            """
            def f(distance: float, other_distance: float) -> bool:
                return distance == other_distance
            """,
            select=("RPR002",))
        assert len(findings) == 1

    def test_infinity_sentinel_passes(self):
        findings = _lint(
            """
            def f(distance: float) -> bool:
                return distance == INFINITY
            """,
            select=("RPR002",))
        assert findings == []

    def test_non_distance_names_pass(self):
        findings = _lint(
            """
            def f(count: int, total: int) -> bool:
                return count == total
            """,
            select=("RPR002",))
        assert findings == []


# ----------------------------------------------------------------------
# RPR003 — exception taxonomy
# ----------------------------------------------------------------------
class TestExceptionTaxonomy:
    def test_flags_raise_bare_exception(self):
        findings = _lint(
            """
            def f() -> None:
                raise Exception("boom")
            """,
            select=("RPR003",))
        assert len(findings) == 1

    def test_flags_bare_except(self):
        findings = _lint(
            """
            def f() -> None:
                try:
                    g()
                except:
                    pass
            """,
            select=("RPR003",))
        assert len(findings) == 1

    def test_typed_repro_error_passes(self):
        findings = _lint(
            """
            from repro.exceptions import QueryError

            def f(k: int) -> None:
                if k <= 0:
                    raise QueryError("k must be positive")
            """,
            select=("RPR003",))
        assert findings == []

    def test_builtin_programming_errors_pass(self):
        findings = _lint(
            """
            def f(kind: str) -> None:
                raise TypeError(f"bad kind {kind!r}")
            """,
            select=("RPR003",))
        assert findings == []


# ----------------------------------------------------------------------
# RPR004 — determinism in core/, ontology/, bench
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_flags_unseeded_random_in_core(self):
        findings = _lint(
            """
            import random

            def f() -> float:
                return random.random()
            """,
            path="src/repro/core/sample.py", select=("RPR004",))
        assert len(findings) == 1

    def test_flags_wall_clock_in_ontology(self):
        findings = _lint(
            """
            import time

            def f() -> float:
                return time.time()
            """,
            path="src/repro/ontology/sample.py", select=("RPR004",))
        assert len(findings) == 1

    def test_seeded_random_passes(self):
        findings = _lint(
            """
            import random

            def f(seed: int) -> float:
                rng = random.Random(seed)
                return rng.random()
            """,
            path="src/repro/core/sample.py", select=("RPR004",))
        assert findings == []

    def test_out_of_scope_package_passes(self):
        findings = _lint(
            """
            import time

            def f() -> float:
                return time.time()
            """,
            path="src/repro/obs/sample.py", select=("RPR004",))
        assert findings == []

    def test_perf_counter_outside_telemetry_flags(self):
        findings = _lint(
            """
            import time

            def busy_wait() -> float:
                return time.perf_counter()
            """,
            path="src/repro/core/sample.py", select=("RPR004",))
        assert len(findings) == 1

    def test_perf_counter_in_telemetry_context_passes(self):
        findings = _lint(
            """
            import time

            def timed(telemetry) -> None:
                start = time.perf_counter()
                telemetry.io_seconds += time.perf_counter() - start
            """,
            path="src/repro/core/sample.py", select=("RPR004",))
        assert findings == []


# ----------------------------------------------------------------------
# RPR005 — no assert for control flow
# ----------------------------------------------------------------------
class TestNoAssert:
    def test_flags_assert(self):
        findings = _lint(
            """
            def f(x: int) -> int:
                assert x > 0
                return x
            """,
            select=("RPR005",))
        assert len(findings) == 1
        assert "InvariantError" in findings[0].message

    def test_raise_passes(self):
        findings = _lint(
            """
            from repro.exceptions import InvariantError

            def f(x: int) -> int:
                if x <= 0:
                    raise InvariantError("x must be positive here")
                return x
            """,
            select=("RPR005",))
        assert findings == []


# ----------------------------------------------------------------------
# RPR006 — obs naming convention
# ----------------------------------------------------------------------
class TestObsNaming:
    def test_flags_bad_metric_name(self):
        findings = _lint(
            """
            def f(registry) -> None:
                registry.counter("KNDS-NodesVisited", "help")
            """,
            select=("RPR006",))
        assert len(findings) == 1

    def test_dotted_lower_snake_passes(self):
        findings = _lint(
            """
            def f(registry, tracer) -> None:
                registry.counter("knds.nodes_visited", "help")
                with tracer.span("engine.query", k=10):
                    pass
            """,
            select=("RPR006",))
        assert findings == []

    def test_regex_match_span_does_not_fire(self):
        findings = _lint(
            """
            import re

            def f(text: str):
                match = re.search("x", text)
                return match.span(0)
            """,
            select=("RPR006",))
        assert findings == []


# ----------------------------------------------------------------------
# RPR010 — obs layer.operation structure
# ----------------------------------------------------------------------
class TestObsLayerNaming:
    def test_flags_single_segment_name(self):
        findings = _lint(
            """
            def f(tracer) -> None:
                with tracer.span("query", k=10):
                    pass
            """,
            select=("RPR010",))
        assert len(findings) == 1
        assert "layer" in findings[0].message

    def test_flags_single_segment_counter(self):
        findings = _lint(
            """
            def f(registry) -> None:
                registry.counter("probes", "help")
            """,
            select=("RPR010",))
        assert len(findings) == 1

    def test_layered_name_passes(self):
        findings = _lint(
            """
            def f(tracer, registry) -> None:
                registry.counter("drc.probes", "help")
                with tracer.span("engine.query"):
                    pass
            """,
            select=("RPR010",))
        assert findings == []

    def test_malformed_name_is_rpr006_territory_not_double_fired(self):
        findings = _lint(
            """
            def f(registry) -> None:
                registry.counter("KNDS-NodesVisited", "help")
            """,
            select=("RPR006", "RPR010"))
        assert _rules(findings) == {"RPR006"}

    def test_fstring_names_are_trusted(self):
        findings = _lint(
            """
            def f(tracer, mode) -> None:
                with tracer.span(f"knds.{mode}"):
                    pass
            """,
            select=("RPR010",))
        assert findings == []

    def test_flags_unregistered_layer(self):
        # A typo'd layer prefix mints a phantom metric family that no
        # rollup or dashboard reads — must be flagged.
        findings = _lint(
            """
            def f(registry) -> None:
                registry.counter("profilr.samples", "help")
            """,
            select=("RPR010",))
        assert len(findings) == 1
        assert "unregistered" in findings[0].message
        assert "profilr" in findings[0].message

    def test_profiler_and_resource_layers_pass(self):
        findings = _lint(
            """
            def f(registry) -> None:
                registry.counter("profiler.samples", "help")
                registry.counter("profiler.overhead_seconds", "help")
                registry.gauge("resource.arena_bytes", "help")
                registry.gauge("resource.gc_tracked_objects", "help")
            """,
            select=("RPR010",))
        assert findings == []

    def test_all_registered_layers_pass(self):
        from repro.analysis.checkers.obsnames import _KNOWN_LAYERS
        calls = "\n".join(
            f'    registry.counter("{layer}.op", "help")'
            for layer in sorted(_KNOWN_LAYERS))
        findings = _lint(
            "def f(registry) -> None:\n" + calls + "\n",
            select=("RPR010",))
        assert findings == []

    def test_regex_match_span_does_not_fire(self):
        findings = _lint(
            """
            import re

            def f(text: str):
                match = re.search("x", text)
                return match.span(0)
            """,
            select=("RPR010",))
        assert findings == []


# ----------------------------------------------------------------------
# RPR007 — mutable defaults
# ----------------------------------------------------------------------
class TestMutableDefault:
    def test_flags_list_default(self):
        findings = _lint(
            """
            def f(items=[]):
                return items
            """,
            select=("RPR007",))
        assert len(findings) == 1

    def test_flags_dict_factory_default(self):
        findings = _lint(
            """
            def f(cache=dict()):
                return cache
            """,
            select=("RPR007",))
        assert len(findings) == 1

    def test_none_default_passes(self):
        findings = _lint(
            """
            def f(items=None):
                return items or []
            """,
            select=("RPR007",))
        assert findings == []


# ----------------------------------------------------------------------
# RPR008 — __all__ consistency
# ----------------------------------------------------------------------
class TestAllConsistency:
    def test_flags_unbound_export(self):
        findings = _lint(
            """
            __all__ = ["exists", "ghost"]

            def exists() -> None:
                pass
            """,
            select=("RPR008",))
        assert len(findings) == 1
        assert "ghost" in findings[0].message

    def test_flags_duplicate_entry(self):
        findings = _lint(
            """
            __all__ = ["exists", "exists"]

            def exists() -> None:
                pass
            """,
            select=("RPR008",))
        assert len(findings) == 1

    def test_consistent_all_passes(self):
        findings = _lint(
            """
            from collections import OrderedDict as OD

            __all__ = ["OD", "CONST", "Klass", "func", "maybe"]

            CONST = 1

            class Klass:
                pass

            def func() -> None:
                pass

            if CONST:
                def maybe() -> None:
                    pass
            """,
            select=("RPR008",))
        assert findings == []

    def test_star_import_module_is_skipped(self):
        findings = _lint(
            """
            from os.path import *

            __all__ = ["ghost"]
            """,
            select=("RPR008",))
        assert findings == []


# ----------------------------------------------------------------------
# RPR009 — hot-path tuple-Dewey distance computation
# ----------------------------------------------------------------------
class TestHotPathDistance:
    def test_flags_inline_identity_in_core(self):
        findings = _lint(
            """
            from repro.types import common_prefix_length

            def pair(p1, p2):
                return len(p1) + len(p2) - 2 * common_prefix_length(p1, p2)
            """,
            select=("RPR009",))
        assert len(findings) == 1

    def test_flags_reference_kernel_call_in_core(self):
        findings = _lint(
            """
            from repro.ontology.distance import concept_distance_dewey

            def settle(dewey, first, second):
                return concept_distance_dewey(dewey, first, second)
            """,
            select=("RPR009",))
        assert len(findings) == 1

    def test_arena_module_is_allowed(self):
        findings = _lint(
            """
            def kernel(p1, p2, lcp):
                return len(p1) + len(p2) - 2 * common_prefix_length(p1, p2)
            """,
            path="src/repro/core/arena.py",
            select=("RPR009",))
        assert findings == []

    def test_outside_hot_packages_is_ignored(self):
        findings = _lint(
            """
            def identity(p1, p2):
                return len(p1) + len(p2) - 2 * common_prefix_length(p1, p2)
            """,
            path="src/repro/ontology/distance.py",
            select=("RPR009",))
        assert findings == []

    def test_structural_lcp_use_passes(self):
        findings = _lint(
            """
            from repro.types import common_prefix_length

            def split_at(label, address):
                return common_prefix_length(label, address)
            """,
            select=("RPR009",))
        assert findings == []


# ----------------------------------------------------------------------
# Ordering and finding shape
# ----------------------------------------------------------------------
def test_findings_are_sorted_and_carry_position():
    findings = _lint(
        """
        def f(items=[]):
            assert items
        """)
    assert findings == sorted(findings)
    assert all(f.line > 0 and f.col >= 0 for f in findings)
    assert {"RPR005", "RPR007"} <= _rules(findings)
