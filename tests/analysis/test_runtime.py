"""Unit tests for the runtime lock sanitizer
(:class:`repro.analysis.runtime.LockMonitor`).

Every violation is provoked deterministically from a single thread: an
ordering violation needs both orders *observed*, not an actual
deadlock, and an unguarded write just needs the audited attribute
assigned without the lock held.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.concurrency import build_graph_from_source
from repro.analysis.runtime import LockMonitor
from repro.exceptions import InvariantError
from repro.index.sqlite import _ReadWriteLock
from repro.obs.metrics import MetricsRegistry


class Box:
    """Two plain locks — the ordering-violation workhorse."""

    def __init__(self):
        self._lock_a = threading.Lock()
        self._lock_b = threading.Lock()


class Guarded:
    """One lock and one guarded attribute for the write audit."""

    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def put_locked(self, key, value):
        with self._lock:
            self._entries = {**self._entries, key: value}

    def put_racy(self, key, value):
        self._entries = {**self._entries, key: value}


@pytest.fixture()
def monitor():
    m = LockMonitor()
    yield m
    m.close()


class TestOrderTracking:
    def test_consistent_order_is_clean(self, monitor):
        box = monitor.attach(Box())
        with box._lock_a:
            with box._lock_b:
                pass
        with box._lock_a:
            with box._lock_b:
                pass
        assert monitor.order_violations == ()
        assert monitor.edges() == {("Box._lock_a", "Box._lock_b"): 2}
        monitor.assert_clean()

    def test_opposite_orders_violate(self, monitor):
        box = monitor.attach(Box())
        with box._lock_a:
            with box._lock_b:
                pass
        with box._lock_b:
            with box._lock_a:
                pass
        violations = monitor.order_violations
        assert len(violations) == 1
        assert {violations[0].first, violations[0].second} == {
            "Box._lock_a", "Box._lock_b"}
        assert "both orders" in violations[0].describe()
        with pytest.raises(InvariantError):
            monitor.assert_clean()

    def test_violation_reported_once_per_pair(self, monitor):
        box = monitor.attach(Box())
        for _ in range(3):
            with box._lock_a:
                with box._lock_b:
                    pass
            with box._lock_b:
                with box._lock_a:
                    pass
        assert len(monitor.order_violations) == 1

    def test_acquisition_counter(self, monitor):
        box = monitor.attach(Box())
        with box._lock_a:
            pass
        with box._lock_b:
            pass
        assert monitor.acquisitions == 2


class TestWriteAudit:
    def test_unguarded_write_is_flagged(self, monitor):
        guarded = monitor.attach(Guarded())
        monitor.audit(guarded, {"_entries": "_lock"})
        guarded.put_racy("k", 1)
        writes = monitor.unguarded_writes
        assert len(writes) == 1
        assert writes[0].attr == "_entries"
        assert writes[0].lock == "_lock"
        assert "_lock" in writes[0].describe()
        with pytest.raises(InvariantError):
            monitor.assert_clean()

    def test_locked_write_passes(self, monitor):
        guarded = monitor.attach(Guarded())
        monitor.audit(guarded, {"_entries": "_lock"})
        guarded.put_locked("k", 1)
        assert monitor.unguarded_writes == ()
        monitor.assert_clean()

    def test_unaudited_instances_are_untouched(self, monitor):
        audited = monitor.attach(Guarded())
        monitor.audit(audited, {"_entries": "_lock"})
        bystander = Guarded()
        bystander.put_racy("k", 1)
        assert monitor.unguarded_writes == ()


class TestReadWriteLock:
    def test_shared_hold_does_not_count_as_exclusive(self, monitor):
        class Store:
            def __init__(self):
                self._lock = _ReadWriteLock()
                self._rows = {}

        store = monitor.attach(Store())
        monitor.audit(store, {"_rows": "_lock"})
        with store._lock.read():
            store._rows = {"k": 1}
        assert len(monitor.unguarded_writes) == 1
        with store._lock.write():
            store._rows = {"k": 2}
        assert len(monitor.unguarded_writes) == 1

    def test_read_then_write_elsewhere_is_ordered(self, monitor):
        class Store:
            def __init__(self):
                self._lock = _ReadWriteLock()
                self._metrics_lock = threading.Lock()

        store = monitor.attach(Store())
        with store._lock.write():
            with store._metrics_lock:
                pass
        assert ("Store._lock", "Store._metrics_lock") in monitor.edges()
        monitor.assert_clean()


class TestConditionProxy:
    def test_wait_for_keeps_held_entry(self, monitor):
        class Pool:
            def __init__(self):
                self._condition = threading.Condition()
                self._inflight = 0

        pool = monitor.attach(Pool())
        with pool._condition:
            pool._condition.wait_for(lambda: True)
            pool._condition.notify_all()
        assert monitor.acquisitions == 1
        monitor.assert_clean()


class TestMetricsAndDiff:
    def test_bind_publishes_sanitizer_counters(self, monitor):
        registry = MetricsRegistry()
        monitor.bind(registry)
        box = monitor.attach(Box())
        with box._lock_a:
            with box._lock_b:
                pass
        with box._lock_b:
            with box._lock_a:
                pass
        assert registry.counter("sanitizer.acquisitions").value == 4
        assert registry.counter("sanitizer.order_edges").value == 2
        assert registry.counter("sanitizer.order_violations").value == 1
        assert registry.counter("sanitizer.unguarded_writes").value == 0

    def test_diff_static_reports_dynamic_only_edges(self, monitor):
        static = build_graph_from_source(
            "class Box:\n"
            "    def f(self):\n"
            "        with self._lock_a:\n"
            "            with self._lock_b:\n"
            "                pass\n",
            path="box.py")
        box = monitor.attach(Box())
        with box._lock_a:
            with box._lock_b:
                pass
        assert monitor.diff_static(static.edge_labels()) == []
        with box._lock_b:
            with box._lock_a:
                pass
        assert monitor.diff_static(static.edge_labels()) == [
            ("Box._lock_b", "Box._lock_a")]


class TestClose:
    def test_close_restores_locks_and_setattr(self):
        monitor = LockMonitor()
        guarded = monitor.attach(Guarded())
        monitor.audit(guarded, {"_entries": "_lock"})
        assert type(guarded._lock).__name__ == "_MonitoredLock"
        monitor.close()
        assert isinstance(guarded._lock, type(threading.Lock()))
        guarded.put_racy("k", 1)  # no longer audited
        assert monitor.unguarded_writes == ()
        monitor.close()  # idempotent

    def test_results_survive_close(self):
        monitor = LockMonitor()
        box = monitor.attach(Box())
        with box._lock_a:
            with box._lock_b:
                pass
        with box._lock_b:
            with box._lock_a:
                pass
        monitor.close()
        assert len(monitor.order_violations) == 1
        with pytest.raises(InvariantError):
            monitor.assert_clean()
