"""The repository lints itself: ``repro lint src`` must stay clean.

This is the satellite guarantee of the static-analysis PR — every rule
in the catalogue holds over the committed tree, so a new violation fails
CI locally and in the ``static-analysis`` job.
"""

from __future__ import annotations

import io
from pathlib import Path

import pytest

import repro
from repro.analysis import lint_paths
from repro.analysis.cli import EXIT_CLEAN, main

_SRC = Path(repro.__file__).resolve().parents[1]


@pytest.mark.skipif(not (_SRC / "repro").is_dir(),
                    reason="package not running from a source tree")
def test_source_tree_lints_clean():
    findings = lint_paths([_SRC / "repro"])
    assert findings == [], "\n".join(f.format() for f in findings)


@pytest.mark.skipif(not (_SRC / "repro").is_dir(),
                    reason="package not running from a source tree")
def test_cli_selfcheck_exits_zero():
    stdout = io.StringIO()
    code = main([str(_SRC / "repro")], stdout=stdout, stderr=io.StringIO())
    assert code == EXIT_CLEAN, stdout.getvalue()
