"""Packaging checks for the strict-typing gate.

PEP 561 only takes effect if the ``py.typed`` marker actually ships:
downstream type checkers silently treat the package as untyped when the
marker is missing from the distribution.  The sdist test builds a real
source distribution and inspects the tarball.
"""

from __future__ import annotations

import subprocess
import sys
import tarfile
from pathlib import Path

import pytest

import repro

_PACKAGE_DIR = Path(repro.__file__).resolve().parent
_PROJECT_ROOT = _PACKAGE_DIR.parents[1]


def test_py_typed_marker_present_in_package():
    marker = _PACKAGE_DIR / "py.typed"
    assert marker.is_file()
    assert marker.read_text(encoding="utf-8") == ""


def test_package_data_declared_in_pyproject():
    pyproject = _PROJECT_ROOT / "pyproject.toml"
    if not pyproject.is_file():
        pytest.skip("not running from a source tree")
    text = pyproject.read_text(encoding="utf-8")
    assert "[tool.setuptools.package-data]" in text
    assert "py.typed" in text


def test_py_typed_ships_in_sdist(tmp_path):
    if not (_PROJECT_ROOT / "pyproject.toml").is_file():
        pytest.skip("not running from a source tree")
    result = subprocess.run(
        [sys.executable, "setup.py", "--quiet", "sdist",
         "--dist-dir", str(tmp_path)],
        cwd=_PROJECT_ROOT, capture_output=True, text=True, timeout=300,
    )
    if result.returncode != 0:
        pytest.skip(f"sdist build unavailable here: {result.stderr[-200:]}")
    archives = list(tmp_path.glob("*.tar.gz"))
    assert len(archives) == 1, archives
    with tarfile.open(archives[0]) as archive:
        members = archive.getnames()
    assert any(name.endswith("src/repro/py.typed") for name in members), \
        members
