"""Per-rule fixtures for the concurrency family (RPR011/RPR012/RPR013)
and the acquisition-graph model behind them.

Each rule gets at least one snippet that MUST flag and one that MUST
pass; the reader-writer tests pin the before-or-after model the static
checker assumes (shared reads pass, writes under only the shared side
flag — the runtime counterpart lives in
``tests/index/test_sqlite_threading.py``).
"""

from __future__ import annotations

import io
import json
import textwrap

from repro.analysis import lint_source
from repro.analysis.concurrency import (
    EXCLUSIVE,
    SHARED,
    AcquisitionGraph,
    LockNode,
    Site,
    build_graph_from_source,
    extract_class_models,
    merge_mode,
)
from repro.analysis.context import ModuleContext
from repro.analysis.locks_cli import (
    EXIT_CLEAN,
    EXIT_CYCLES,
    JSON_SCHEMA_VERSION,
    main as locks_main,
)


def _lint(source: str, path: str = "src/repro/core/sample.py",
          select: tuple[str, ...] | None = None):
    findings = lint_source(textwrap.dedent(source), path=path)
    if select is not None:
        findings = [f for f in findings if f.rule in select]
    return findings


# ----------------------------------------------------------------------
# Annotation extraction
# ----------------------------------------------------------------------
class TestExtraction:
    def test_guards_from_init_and_class_body(self):
        source = textwrap.dedent(
            """
            class Cache:
                _stats: int = 0  # guarded by: _lock

                def __init__(self):
                    self._lock = Lock()
                    self._entries = {}  # guarded by: _lock
                    self._epoch = 0  # guarded by: _lock (writes)
            """)
        context = ModuleContext.from_source(source, "sample.py")
        model = extract_class_models(context)["Cache"]
        assert model.guards["_entries"].lock == "_lock"
        assert not model.guards["_entries"].writes_only
        assert model.guards["_epoch"].writes_only
        assert model.guards["_stats"].lock == "_lock"

    def test_holds_contract_on_def_line(self):
        source = textwrap.dedent(
            """
            class Cache:
                def _locked_get(self, key):  # holds: _lock, _other
                    return key
            """)
        context = ModuleContext.from_source(source, "sample.py")
        model = extract_class_models(context)["Cache"]
        assert model.holds["_locked_get"] == frozenset({"_lock", "_other"})

    def test_merge_mode_keeps_strongest(self):
        assert merge_mode(None, SHARED) == SHARED
        assert merge_mode(SHARED, SHARED) == SHARED
        assert merge_mode(EXCLUSIVE, SHARED) == EXCLUSIVE
        assert merge_mode(SHARED, EXCLUSIVE) == EXCLUSIVE


# ----------------------------------------------------------------------
# RPR011 — guarded-by discipline
# ----------------------------------------------------------------------
class TestGuardedBy:
    def test_flags_unguarded_read(self):
        findings = _lint(
            """
            class Cache:
                def __init__(self):
                    self._lock = Lock()
                    self._entries = {}  # guarded by: _lock

                def peek(self, key):
                    return self._entries.get(key)
            """,
            select=("RPR011",))
        assert len(findings) == 1
        assert "read without it" in findings[0].message

    def test_flags_unguarded_write(self):
        findings = _lint(
            """
            class Cache:
                def __init__(self):
                    self._lock = Lock()
                    self._entries = {}  # guarded by: _lock

                def put(self, key, value):
                    self._entries[key] = value
            """,
            select=("RPR011",))
        assert len(findings) == 1
        assert "written without it" in findings[0].message

    def test_flags_mutator_call_as_write(self):
        findings = _lint(
            """
            class Cache:
                def __init__(self):
                    self._lock = Lock()
                    self._items = []  # guarded by: _lock (writes)

                def push(self, value):
                    self._items.append(value)
            """,
            select=("RPR011",))
        assert len(findings) == 1
        assert "written without it" in findings[0].message

    def test_access_under_with_passes(self):
        findings = _lint(
            """
            class Cache:
                def __init__(self):
                    self._lock = Lock()
                    self._entries = {}  # guarded by: _lock

                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value
                        return len(self._entries)
            """,
            select=("RPR011",))
        assert findings == []

    def test_writes_only_guard_sanctions_lockfree_reads(self):
        findings = _lint(
            """
            class Arena:
                def __init__(self):
                    self._lock = Lock()
                    self._epoch = 0  # guarded by: _lock (writes)

                def snapshot(self):
                    return self._epoch

                def bump(self):
                    with self._lock:
                        self._epoch += 1
            """,
            select=("RPR011",))
        assert findings == []

    def test_init_is_exempt(self):
        findings = _lint(
            """
            class Cache:
                def __init__(self):
                    self._lock = Lock()
                    self._entries = {}  # guarded by: _lock
                    self._entries["warm"] = 1
            """,
            select=("RPR011",))
        assert findings == []

    def test_holds_contract_covers_body(self):
        findings = _lint(
            """
            class Cache:
                def __init__(self):
                    self._lock = Lock()
                    self._entries = {}  # guarded by: _lock

                def _locked_get(self, key):  # holds: _lock
                    return self._entries.get(key)

                def get(self, key):
                    with self._lock:
                        return self._locked_get(key)
            """,
            select=("RPR011",))
        assert findings == []

    def test_flags_contract_call_without_lock(self):
        findings = _lint(
            """
            class Cache:
                def __init__(self):
                    self._lock = Lock()
                    self._entries = {}  # guarded by: _lock

                def _locked_get(self, key):  # holds: _lock
                    return self._entries.get(key)

                def get(self, key):
                    return self._locked_get(key)
            """,
            select=("RPR011",))
        assert len(findings) == 1
        assert "'_locked_get'" in findings[0].message
        assert "without '_lock' held" in findings[0].message

    def test_nested_lambda_inherits_held_set(self):
        findings = _lint(
            """
            class Pool:
                def __init__(self):
                    self._condition = Condition()
                    self._inflight = 0  # guarded by: _condition

                def drain(self):
                    with self._condition:
                        self._condition.wait_for(
                            lambda: self._inflight == 0)
            """,
            select=("RPR011",))
        assert findings == []

    def test_suppression_comment_on_access_line(self):
        findings = _lint(
            """
            class Cache:
                def __init__(self):
                    self._lock = Lock()
                    self._entries = {}  # guarded by: _lock

                def peek(self, key):
                    return self._entries.get(key)  # repro: ignore[RPR011]
            """,
            select=("RPR011",))
        assert findings == []


class TestReadWriteModel:
    """Pin the before-or-after reader-writer model the checker assumes
    (mirrors :class:`repro.index.sqlite._ReadWriteLock` semantics)."""

    _STORE = """
        class Store:
            def __init__(self):
                self._lock = RWLock()
                self._rows = {}  # guarded by: _lock

            def lookup(self, key):
                with self._lock.read():
                    return self._rows.get(key)

            def mutate(self, key, value):
                with self._lock.%s():
                    self._rows[key] = value
        """

    def test_read_under_shared_side_passes(self):
        findings = _lint(self._STORE % "write", select=("RPR011",))
        assert findings == []

    def test_write_under_shared_side_flags(self):
        findings = _lint(self._STORE % "read", select=("RPR011",))
        assert len(findings) == 1
        assert "shared (read) side" in findings[0].message
        assert ".write()" in findings[0].message


# ----------------------------------------------------------------------
# RPR012 — lock-order cycles
# ----------------------------------------------------------------------
_CYCLE = """
    class Engine:
        def __init__(self):
            self._lock_a = Lock()
            self._lock_b = Lock()

        def forward(self):
            with self._lock_a:
                with self._lock_b:
                    pass

        def backward(self):
            with self._lock_b:
                with self._lock_a:
                    pass
    """


class TestLockOrder:
    def test_flags_opposite_nesting(self):
        findings = _lint(_CYCLE, select=("RPR012",))
        assert len(findings) == 1
        assert "lock-order cycle" in findings[0].message
        assert "Engine._lock_a" in findings[0].message
        assert "Engine._lock_b" in findings[0].message

    def test_consistent_order_passes(self):
        findings = _lint(
            """
            class Engine:
                def __init__(self):
                    self._lock_a = Lock()
                    self._lock_b = Lock()

                def forward(self):
                    with self._lock_a:
                        with self._lock_b:
                            pass

                def also_forward(self):
                    with self._lock_a:
                        with self._lock_b:
                            pass
            """,
            select=("RPR012",))
        assert findings == []

    def test_flags_self_edge(self):
        findings = _lint(
            """
            class Cache:
                def __init__(self):
                    self._lock = Lock()

                def reenter(self):
                    with self._lock:
                        with self._lock:
                            pass
            """,
            select=("RPR012",))
        assert len(findings) == 1
        assert "self-deadlock" in findings[0].message

    def test_nested_def_resets_held_set(self):
        # The closure runs later on an unknown stack: acquiring _lock_b
        # inside it is NOT a nesting under _lock_a.
        findings = _lint(
            """
            class Engine:
                def __init__(self):
                    self._lock_a = Lock()
                    self._lock_b = Lock()

                def schedule(self):
                    with self._lock_a:
                        def job():
                            with self._lock_b:
                                pass
                        return job

                def backward(self):
                    with self._lock_b:
                        with self._lock_a:
                            pass
            """,
            select=("RPR012",))
        assert findings == []

    def test_non_lockish_with_is_ignored(self):
        findings = _lint(
            """
            class Engine:
                def __init__(self):
                    self._lock = Lock()

                def traced(self, tracer):
                    with self._span:
                        with self._lock:
                            pass
                    with self._lock:
                        with self._span:
                            pass
            """,
            select=("RPR012",))
        assert findings == []

    def test_suppression_on_witness_line(self):
        findings = _lint(
            """
            class Cache:
                def __init__(self):
                    self._lock = Lock()

                def reenter(self):
                    with self._lock:
                        with self._lock:  # repro: ignore[RPR012]
                            pass
            """,
            select=("RPR012",))
        assert findings == []


# ----------------------------------------------------------------------
# RPR013 — unsynchronized shared mutables
# ----------------------------------------------------------------------
class TestSharedMutable:
    def test_flags_module_level_dict(self):
        findings = _lint("REGISTRY = {}\n", select=("RPR013",))
        assert len(findings) == 1
        assert "'REGISTRY'" in findings[0].message

    def test_final_annotation_passes(self):
        findings = _lint(
            "from typing import Final\n\nREGISTRY: Final[dict] = {}\n",
            select=("RPR013",))
        assert findings == []

    def test_guard_comment_passes(self):
        findings = _lint(
            "REGISTRY = {}  # guarded by: _registry_lock\n",
            select=("RPR013",))
        assert findings == []

    def test_dunder_all_and_immutables_pass(self):
        findings = _lint(
            '__all__ = ["x"]\n\nx = (1, 2)\n\ny = frozenset()\n',
            select=("RPR013",))
        assert findings == []

    def test_out_of_scope_package_passes(self):
        findings = _lint("REGISTRY = {}\n",
                         path="src/repro/corpus/sample.py",
                         select=("RPR013",))
        assert findings == []

    def test_flags_executor_module_init_attr(self):
        findings = _lint(
            """
            from concurrent.futures import ThreadPoolExecutor

            class Service:
                def __init__(self):
                    self._results = []
            """,
            select=("RPR013",))
        assert len(findings) == 1
        assert "'_results'" in findings[0].message

    def test_guarded_executor_attr_passes(self):
        findings = _lint(
            """
            from concurrent.futures import ThreadPoolExecutor

            class Service:
                def __init__(self):
                    self._lock = Lock()
                    self._results = []  # guarded by: _lock
            """,
            select=("RPR013",))
        assert findings == []

    def test_init_attr_without_executor_passes(self):
        findings = _lint(
            """
            class Service:
                def __init__(self):
                    self._results = []
            """,
            select=("RPR013",))
        assert findings == []


# ----------------------------------------------------------------------
# Acquisition graph model
# ----------------------------------------------------------------------
class TestAcquisitionGraph:
    def test_build_graph_records_modes_and_edges(self):
        graph = build_graph_from_source(textwrap.dedent(
            """
            class Store:
                def __init__(self):
                    self._lock = RWLock()
                    self._metrics_lock = Lock()

                def flush(self):
                    with self._lock.write():
                        with self._metrics_lock:
                            pass

                def lookup(self):
                    with self._lock.read():
                        pass
            """), path="sample.py")
        store_lock = LockNode(module="sample", cls="Store", attr="_lock")
        metrics = LockNode(module="sample", cls="Store",
                           attr="_metrics_lock")
        assert set(graph.nodes) == {store_lock, metrics}
        modes = {mode for _site, mode in graph.sites(store_lock)}
        assert modes == {SHARED, EXCLUSIVE}
        assert (store_lock, metrics) in graph.edges
        assert graph.cycles() == []
        assert graph.edge_labels() == {
            ("Store._lock", "Store._metrics_lock")}

    def test_cycle_detection_and_witnesses(self):
        graph = build_graph_from_source(textwrap.dedent(_CYCLE),
                                        path="sample.py")
        cycles = graph.cycles()
        assert len(cycles) == 1
        assert [node.attr for node in cycles[0]] == ["_lock_a", "_lock_b"]
        witnesses = graph.cycle_edges(cycles[0])
        assert len(witnesses) == 2
        assert all(site.path == "sample.py" for _, _, site in witnesses)

    def test_self_edge_kept_apart_from_cycles(self):
        graph = AcquisitionGraph()
        node = LockNode(module="m", cls="C", attr="_lock")
        graph.add_edge(node, node, Site(path="m.py", line=3))
        assert graph.cycles() == []
        assert node in graph.self_edges

    def test_to_dict_schema(self):
        graph = build_graph_from_source(textwrap.dedent(_CYCLE),
                                        path="sample.py")
        document = graph.to_dict()
        assert set(document) == {"nodes", "edges", "self_edges", "cycles"}
        assert document["cycles"] == [
            ["sample:Engine._lock_a", "sample:Engine._lock_b"]]
        node = document["nodes"][0]
        assert set(node) == {"id", "module", "class", "attr",
                             "acquisitions"}
        assert node["acquisitions"][0]["mode"] == EXCLUSIVE


# ----------------------------------------------------------------------
# repro locks CLI
# ----------------------------------------------------------------------
class TestLocksCli:
    def _run(self, argv):
        stdout, stderr = io.StringIO(), io.StringIO()
        code = locks_main(argv, stdout=stdout, stderr=stderr)
        return code, stdout.getvalue(), stderr.getvalue()

    def test_clean_tree_exits_zero(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text(textwrap.dedent(
            """
            class Cache:
                def __init__(self):
                    self._lock = Lock()

                def get(self):
                    with self._lock:
                        pass
            """), encoding="utf-8")
        code, out, _ = self._run([str(path)])
        assert code == EXIT_CLEAN
        assert "no ordering cycles" in out
        assert "Cache._lock" in out

    def test_cycle_exits_two(self, tmp_path):
        path = tmp_path / "cycle.py"
        path.write_text(textwrap.dedent(_CYCLE), encoding="utf-8")
        code, out, _ = self._run([str(path)])
        assert code == EXIT_CYCLES
        assert "CYCLE:" in out

    def test_json_format(self, tmp_path):
        path = tmp_path / "cycle.py"
        path.write_text(textwrap.dedent(_CYCLE), encoding="utf-8")
        code, out, _ = self._run([str(path), "--format", "json"])
        assert code == EXIT_CYCLES
        document = json.loads(out)
        assert document["version"] == JSON_SCHEMA_VERSION
        assert set(document) == {"version", "nodes", "edges",
                                 "self_edges", "cycles"}
        assert len(document["cycles"]) == 1
