"""CLI contract of ``repro lint``: exit codes, JSON schema, selection,
suppression comments, and dispatch through the umbrella ``repro`` CLI."""

from __future__ import annotations

import io
import json
import textwrap

import pytest

from repro.analysis import lint_source, rule_ids
from repro.analysis.cli import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    JSON_SCHEMA_VERSION,
    main,
)

_VIOLATION = textwrap.dedent(
    """
    def f(items=[]):
        assert items
        return items
    """
)

_CLEAN = 'GREETING = "hello"\n\n__all__ = ["GREETING"]\n'


def _run(argv):
    stdout, stderr = io.StringIO(), io.StringIO()
    code = main(argv, stdout=stdout, stderr=stderr)
    return code, stdout.getvalue(), stderr.getvalue()


@pytest.fixture()
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(_VIOLATION, encoding="utf-8")
    return path


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(_CLEAN, encoding="utf-8")
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_file):
        code, out, _ = _run([str(clean_file)])
        assert code == EXIT_CLEAN
        assert "no problems" in out

    def test_findings_exit_two(self, bad_file):
        code, out, _ = _run([str(bad_file)])
        assert code == EXIT_FINDINGS
        assert "RPR005" in out and "RPR007" in out

    def test_missing_path_is_usage_error(self, tmp_path):
        code, _, err = _run([str(tmp_path / "nope")])
        assert code == EXIT_USAGE
        assert err

    def test_unknown_rule_is_usage_error(self, clean_file):
        code, _, err = _run(["--select", "RPR999", str(clean_file)])
        assert code == EXIT_USAGE
        assert "RPR999" in err


class TestSelection:
    def test_select_restricts_rules(self, bad_file):
        code, out, _ = _run(["--select", "RPR007", str(bad_file)])
        assert code == EXIT_FINDINGS
        assert "RPR007" in out and "RPR005" not in out

    def test_ignore_drops_rules(self, bad_file):
        code, out, _ = _run(
            ["--ignore", "RPR005,RPR007", str(bad_file)])
        assert code == EXIT_CLEAN

    def test_select_accepts_checker_names(self, bad_file):
        code, out, _ = _run(["--select", "no-assert", str(bad_file)])
        assert code == EXIT_FINDINGS
        assert "RPR005" in out

    def test_list_rules_covers_catalogue(self):
        code, out, _ = _run(["--list-rules"])
        assert code == EXIT_CLEAN
        for rule in rule_ids():
            assert rule in out


class TestJsonOutput:
    def test_schema(self, bad_file):
        code, out, _ = _run(["--format", "json", str(bad_file)])
        assert code == EXIT_FINDINGS
        payload = json.loads(out)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["count"] == len(payload["findings"]) > 0
        for finding in payload["findings"]:
            assert set(finding) == {"path", "line", "col", "rule", "message"}
            assert finding["rule"].startswith("RPR")
            assert isinstance(finding["line"], int)
            assert isinstance(finding["col"], int)

    def test_clean_json(self, clean_file):
        code, out, _ = _run(["--format", "json", str(clean_file)])
        assert code == EXIT_CLEAN
        payload = json.loads(out)
        assert payload == {"version": JSON_SCHEMA_VERSION, "count": 0,
                           "findings": []}


class TestSuppression:
    def test_bare_ignore_suppresses_every_rule_on_the_line(self):
        source = "def f(items=[]):  # repro: ignore\n    return items\n"
        assert lint_source(source) == []

    def test_scoped_ignore_suppresses_only_named_rules(self):
        source = ("def f(items=[]):  # repro: ignore[RPR007]\n"
                  "    assert items\n")
        findings = lint_source(source)
        assert {f.rule for f in findings} == {"RPR005"}

    def test_scoped_ignore_for_other_rule_does_not_suppress(self):
        source = "def f(items=[]):  # repro: ignore[RPR001]\n    pass\n"
        findings = lint_source(source)
        assert {f.rule for f in findings} == {"RPR007"}

    def test_suppressed_findings_do_not_affect_cli_exit(self, tmp_path):
        path = tmp_path / "suppressed.py"
        path.write_text("def f(items=[]):  # repro: ignore\n    return 1\n",
                        encoding="utf-8")
        code, _, _ = _run([str(path)])
        assert code == EXIT_CLEAN


class TestUmbrellaDispatch:
    def test_repro_cli_routes_lint(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        path = tmp_path / "bad.py"
        path.write_text(_VIOLATION, encoding="utf-8")
        code = repro_main(["lint", str(path)])
        assert code == EXIT_FINDINGS
        assert "RPR005" in capsys.readouterr().out
