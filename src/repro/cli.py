"""Command-line interface: ``python -m repro <command>``.

Ties the library's pieces into shell-scriptable steps:

* ``generate-ontology`` — write a synthetic SNOMED-like DAG to CSV;
* ``generate-corpus``  — write a PATIENT-like or RADIO-like corpus to
  JSONL over a CSV ontology;
* ``stats``            — ontology shape and/or Table 3 corpus statistics;
* ``search``           — run an RDS or SDS query against a corpus;
* ``extract``          — run the concept-extraction pipeline over text;
* ``serve``            — run the concurrent HTTP/JSON query service
  (delegates to :mod:`repro.serve`; see ``docs/SERVING.md``);
* ``debug``            — fetch captured request traces from a running
  server's ``/debug/traces`` endpoint and pretty-print the span tree
  with per-layer self-times (see ``docs/OBSERVABILITY.md``);
* ``profile``          — fetch collapsed-stack samples from a running
  server's ``/debug/profile`` endpoint (hottest stacks, or raw
  flamegraph lines with ``--raw``);
* ``experiments``      — regenerate the paper's tables and figures
  (delegates to :mod:`repro.bench.experiments`);
* ``bench``            — run registered perf scenarios, write a
  schema-versioned ``BENCH_*.json`` artifact, and gate against a
  baseline (delegates to :mod:`repro.bench.perf`);
* ``lint``             — run the domain-aware static-analysis pass
  (delegates to :mod:`repro.analysis.cli`; exit 2 on findings);
* ``locks``            — render the static lock-acquisition graph the
  RPR012 concurrency rule checks (delegates to
  :mod:`repro.analysis.locks_cli`; exit 2 on ordering cycles).

A full round trip::

    python -m repro generate-ontology --concepts 2000 --out onto
    python -m repro generate-corpus --ontology onto --profile radio \
        --docs 500 --out reports.jsonl
    python -m repro search --ontology onto --corpus reports.jsonl \
        rds --query C0000123,C0000456 -k 5
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from typing import Any, TYPE_CHECKING

from repro.bench.experiments import main as experiments_main
from repro.core.engine import SearchEngine
from repro.corpus.generators import patient_like, radio_like
from repro.corpus.io import load_jsonl, save_jsonl
from repro.corpus.text.pipeline import ConceptExtractor
from repro.exceptions import ReproError
from repro.ontology.generators import snomed_like
from repro.ontology.graph import Ontology
from repro.ontology.io.csvio import load_csv, save_csv
from repro.ontology.stats import compute_stats

if TYPE_CHECKING:
    from repro.obs import Observability


def _ontology_paths(prefix: str) -> tuple[str, str]:
    return f"{prefix}.concepts.csv", f"{prefix}.edges.csv"


def _load_ontology(prefix: str) -> Ontology:
    concepts_path, edges_path = _ontology_paths(prefix)
    return load_csv(concepts_path, edges_path, name=prefix)


def _cmd_generate_ontology(args: argparse.Namespace) -> int:
    ontology = snomed_like(args.concepts, seed=args.seed)
    concepts_path, edges_path = _ontology_paths(args.out)
    save_csv(ontology, concepts_path, edges_path)
    print(f"wrote {len(ontology)} concepts to {concepts_path} and "
          f"{ontology.edge_count()} edges to {edges_path}")
    return 0


def _cmd_generate_corpus(args: argparse.Namespace) -> int:
    ontology = _load_ontology(args.ontology)
    maker = patient_like if args.profile == "patient" else radio_like
    kwargs = {"num_docs": args.docs, "seed": args.seed}
    if args.mean_concepts is not None:
        kwargs["mean_concepts"] = args.mean_concepts
    collection = maker(ontology, **kwargs)
    save_jsonl(collection, args.out)
    stats = collection.stats()
    print(f"wrote {stats.total_documents} documents "
          f"({stats.avg_concepts_per_document:.1f} concepts/doc) "
          f"to {args.out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    ontology = _load_ontology(args.ontology)
    stats = compute_stats(ontology, path_sample=args.path_sample)
    print(f"ontology {ontology.name!r}")
    for key, value in stats.as_rows():
        print(f"  {key:<24} {value}")
    if args.corpus:
        collection = load_jsonl(args.corpus)
        print(f"corpus {collection.name!r}")
        for key, value in collection.stats().as_rows():
            print(f"  {key:<24} {value}")
    return 0


def _make_engine(args: argparse.Namespace) -> SearchEngine:
    kernel_tier = getattr(args, "kernel_tier", "auto")
    if getattr(args, "engine", None):
        from repro.core.persistence import load_engine
        return load_engine(args.engine)
    if not (args.ontology and args.corpus):
        raise ReproError(
            "provide either --engine DIR or both --ontology and --corpus")
    ontology = _load_ontology(args.ontology)
    collection = load_jsonl(args.corpus)
    return SearchEngine(ontology, collection, kernel_tier=kernel_tier)


def _cmd_build_engine(args: argparse.Namespace) -> int:
    from repro.core.persistence import save_engine

    ontology = _load_ontology(args.ontology)
    collection = load_jsonl(args.corpus)
    engine = SearchEngine(ontology, collection)
    save_engine(engine, args.out)
    print(f"saved engine ({len(collection)} documents over "
          f"{len(ontology)} concepts) to {args.out}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    engine = _make_engine(args)
    query = [part for part in args.query.split(",") if part]
    print(engine.explain(args.doc_id, query))
    if args.analyze:
        from repro.core.explain import render_cost_profile
        results = engine.rds(query, k=args.k, analyze=True)
        profile = results.cost_profile
        if profile is None:  # non-kNDS algorithms carry no profile
            print("# no cost profile available")
        else:
            print()
            print(render_cost_profile(profile))
    return 0


def _make_observability(
        args: argparse.Namespace) -> "Observability | None":
    """Build an Observability bundle from ``--trace``/``--metrics`` flags.

    Returns ``None`` when neither flag was given, keeping the default
    search path completely uninstrumented.  ``--log-level`` is honoured
    either way.
    """
    if getattr(args, "log_level", None):
        from repro.obs.logging import setup_logging
        setup_logging(args.log_level)
    if not (getattr(args, "trace", None) or getattr(args, "metrics", None)):
        return None
    from repro.obs import Observability
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import NULL_TRACER, Tracer
    tracer = Tracer() if args.trace else NULL_TRACER
    return Observability(tracer=tracer, metrics=MetricsRegistry())


def _export_observability(args: argparse.Namespace,
                          obs: "Observability | None") -> None:
    """Write the trace and metrics files requested on the command line."""
    if obs is None:
        return
    if getattr(args, "trace", None):
        if args.trace_format == "chrome":
            obs.tracer.export_chrome(args.trace)
        else:
            obs.tracer.export_jsonl(args.trace)
        print(f"# trace ({args.trace_format}) written to {args.trace}")
    if getattr(args, "metrics", None):
        obs.metrics.write(args.metrics, fmt=args.metrics_format)
        print(f"# metrics ({args.metrics_format or 'auto'}) written to "
              f"{args.metrics}")


def _cmd_search(args: argparse.Namespace) -> int:
    engine = _make_engine(args)
    obs = _make_observability(args)
    if obs is not None:
        engine.instrument(obs)
    if args.query_kind == "rds":
        query = [part for part in args.query.split(",") if part]
        results = engine.rds(query, k=args.k, algorithm=args.algorithm,
                             **_config_overrides(args))
    else:
        results = engine.sds(args.doc_id, k=args.k,
                             algorithm=args.algorithm,
                             **_config_overrides(args))
    for rank, item in enumerate(results, start=1):
        print(f"{rank:>3}. {item.doc_id}  distance={item.distance:g}")
    stats = results.stats
    print(f"# {stats.docs_examined} docs examined, {stats.drc_calls} DRC "
          f"probes, {stats.total_seconds * 1000:.1f} ms")
    _export_observability(args, obs)
    return 0


def _config_overrides(args: argparse.Namespace) -> dict[str, Any]:
    overrides: dict[str, Any] = {}
    if args.algorithm == "knds" and args.error_threshold is not None:
        overrides["error_threshold"] = args.error_threshold
    return overrides


def _cmd_extract(args: argparse.Namespace) -> int:
    ontology = _load_ontology(args.ontology)
    extractor = ConceptExtractor.for_ontology(ontology)
    if args.file:
        with open(args.file, encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = args.text or sys.stdin.read()
    if args.sections:
        from repro.corpus.text.sections import extract_with_sections
        concepts, annotated = extract_with_sections(extractor, text)
        for item in annotated:
            polarity = "NEG" if item.mention.negated else "POS"
            scope = item.section or "(preamble)"
            drop = "" if item.admitted else "  [section excluded]"
            print(f"[{polarity}] {item.mention.concept_id}  "
                  f"{item.mention.text!r}  in {scope}{drop}")
    else:
        for mention in extractor.mentions(text):
            polarity = "NEG" if mention.negated else "POS"
            print(f"[{polarity}] {mention.concept_id}  {mention.text!r}  "
                  f"({ontology.label(mention.concept_id)})")
        concepts = extractor.extract_concepts(text)
    print(f"# positive concept set: {','.join(sorted(concepts)) or '-'}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the HTTP query service and block until SIGTERM/SIGINT."""
    from repro.serve import QueryService, ServeConfig
    from repro.serve.http import run_server

    if args.log_level:
        from repro.obs.logging import setup_logging
        setup_logging(args.log_level)
    engine = _make_engine(args)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        deadline_seconds=args.deadline,
        cache_size=args.cache_size,
        cache_ttl_seconds=args.cache_ttl,
        retry_after_seconds=args.retry_after,
        drain_seconds=args.drain_seconds,
        trace_sample_rate=args.trace_sample_rate,
        trace_seed=args.trace_seed,
        recorder_capacity=args.recorder_capacity,
        slow_threshold_seconds=args.slow_threshold,
        slo_latency_objective_seconds=args.latency_objective,
        profiler_enabled=args.profiler,
        profiler_interval_seconds=args.profiler_interval,
        resource_interval_seconds=args.resource_interval,
        shards=args.shards,
        shard_policy=args.shard_policy,
        shard_timeout_seconds=args.shard_timeout,
        shared_arena=args.shared_arena,
        kernel_tier=args.kernel_tier,
    )
    if config.shards > 0:
        from repro.shard import ShardedEngine

        # The single-process engine only donated its parsed ontology and
        # corpus; the shard workers build their own indexes per partition.
        base, engine = engine, ShardedEngine(
            engine.ontology, engine.collection,
            shards=config.shards, policy=config.shard_policy,
            timeout_seconds=config.shard_timeout_seconds,
            shared_arena=config.shared_arena,
            kernel_tier=config.kernel_tier)
        base.close()
        print(f"# sharded: {config.shards} worker processes "
              f"({config.shard_policy} partitioning"
              + (", shared arena" if config.shared_arena else "") + ")")
    service = QueryService(engine, config)
    print(f"# engine ready: {len(engine.collection)} documents over "
          f"{len(engine.ontology)} concepts")
    try:
        run_server(service, host=config.host, port=config.port,
                   drain_seconds=config.drain_seconds)
    finally:
        service.close()
    return 0


def _cmd_debug(args: argparse.Namespace) -> int:
    """Fetch flight-recorder traces from a running server and render."""
    import http.client
    import json

    from repro.obs.recorder import RequestRecord, render_trace

    path = "/debug/traces"
    if args.id:
        path += f"?id={args.id}"
    connection = http.client.HTTPConnection(args.host, args.port,
                                            timeout=args.timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        body = response.read().decode("utf-8")
    except OSError as error:
        raise ReproError(
            f"cannot reach {args.host}:{args.port}: {error}") from error
    finally:
        connection.close()
    if response.status == 404:
        raise ReproError(f"no captured request matches {args.id!r}")
    if response.status != 200:
        raise ReproError(f"GET {path} returned {response.status}: {body}")
    payload = json.loads(body)
    if args.id:
        record = RequestRecord(
            request_id=payload.get("request_id", "?"),
            method=payload.get("method", "?"),
            path=payload.get("path", "?"),
            status=int(payload.get("status", 0)),
            seconds=float(payload.get("seconds", 0.0)),
            trace_id=payload.get("trace_id"),
            sampled=bool(payload.get("sampled", False)),
            cached=payload.get("cached"),
            wall_time=float(payload.get("wall_time", 0.0)),
            reasons=tuple(payload.get("reasons", ())),
            spans=list(payload.get("spans", [])),
        )
        print(render_trace(record))
        return 0
    traces = payload.get("traces", [])
    if not traces:
        print("no captured requests (nothing slow or failing yet)")
        return 0
    for row in traces:
        reasons = ",".join(row.get("reasons", ())) or "-"
        print(f"{row.get('request_id', '?'):<14} "
              f"{row.get('method', '?'):<5} {row.get('path', '?'):<24} "
              f"{row.get('status', 0):>3}  "
              f"{row.get('seconds', 0.0) * 1000:9.3f} ms  "
              f"[{reasons}]  trace={row.get('trace_id') or '-'}")
    print(f"# {len(traces)} captured; rerun with --id REQUEST_OR_TRACE_ID "
          f"for the span tree")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Fetch sampling-profiler stacks from a running server and render."""
    import http.client
    import json

    path = "/debug/profile"
    if args.seconds is not None:
        path += f"?seconds={args.seconds:g}"
    connection = http.client.HTTPConnection(args.host, args.port,
                                            timeout=args.timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        body = response.read().decode("utf-8")
    except OSError as error:
        raise ReproError(
            f"cannot reach {args.host}:{args.port}: {error}") from error
    finally:
        connection.close()
    if response.status != 200:
        raise ReproError(f"GET {path} returned {response.status}: {body}")
    payload = json.loads(body)
    stacks: dict[str, int] = payload.get("stacks", {})
    if args.raw:
        # Flamegraph collapsed-stack format: one "stack count" per line,
        # ready for flamegraph.pl / speedscope / inferno.
        for stack in sorted(stacks):
            print(f"{stack} {stacks[stack]}")
        return 0
    samples = payload.get("samples", 0)
    overhead = payload.get("overhead_seconds", 0.0)
    print(f"# {samples} samples at {payload.get('interval_seconds', 0):g}s "
          f"interval, sampler overhead {overhead * 1000:.1f} ms, "
          f"running={payload.get('running')}")
    if not stacks:
        print("no stacks sampled (idle server or zero-length window)")
        return 0
    total = sum(stacks.values())
    ranked = sorted(stacks.items(), key=lambda item: (-item[1], item[0]))
    for stack, count in ranked[:args.top]:
        leaf = stack.rsplit(";", 1)[-1]
        print(f"{count:>6}  {100.0 * count / total:5.1f}%  {leaf}")
        print(f"        {stack}")
    if len(ranked) > args.top:
        print(f"# {len(ranked) - args.top} more stacks; "
              f"--raw dumps them all in flamegraph format")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Efficient concept-based document ranking (EDBT 2014 "
                    "reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate_ontology = commands.add_parser(
        "generate-ontology", help="write a synthetic SNOMED-like DAG")
    generate_ontology.add_argument("--concepts", type=int, default=5000)
    generate_ontology.add_argument("--seed", type=int, default=0)
    generate_ontology.add_argument("--out", required=True,
                                   help="path prefix for the CSV pair")
    generate_ontology.set_defaults(handler=_cmd_generate_ontology)

    generate_corpus = commands.add_parser(
        "generate-corpus", help="write a synthetic corpus as JSONL")
    generate_corpus.add_argument("--ontology", required=True,
                                 help="ontology CSV path prefix")
    generate_corpus.add_argument("--profile",
                                 choices=["patient", "radio"],
                                 default="radio")
    generate_corpus.add_argument("--docs", type=int, default=500)
    generate_corpus.add_argument("--mean-concepts", type=float)
    generate_corpus.add_argument("--seed", type=int, default=0)
    generate_corpus.add_argument("--out", required=True)
    generate_corpus.set_defaults(handler=_cmd_generate_corpus)

    stats = commands.add_parser("stats",
                                help="ontology and corpus statistics")
    stats.add_argument("--ontology", required=True)
    stats.add_argument("--corpus")
    stats.add_argument("--path-sample", type=int, default=500)
    stats.set_defaults(handler=_cmd_stats)

    build_engine = commands.add_parser(
        "build-engine", help="persist a ready-to-serve engine directory")
    build_engine.add_argument("--ontology", required=True)
    build_engine.add_argument("--corpus", required=True)
    build_engine.add_argument("--out", required=True)
    build_engine.set_defaults(handler=_cmd_build_engine)

    explain = commands.add_parser(
        "explain", help="explain a document's distance from a query")
    explain.add_argument("--ontology")
    explain.add_argument("--corpus")
    explain.add_argument("--engine", help="saved engine directory")
    explain.add_argument("--doc-id", required=True)
    explain.add_argument("--query", required=True,
                         help="comma-separated concept ids")
    explain.add_argument("--analyze", action="store_true",
                         help="also run the query with EXPLAIN ANALYZE "
                              "and print the cost profile")
    explain.add_argument("-k", type=int, default=10,
                         help="top-k for the --analyze run")
    explain.set_defaults(handler=_cmd_explain)

    search = commands.add_parser("search", help="run a top-k query")
    search.add_argument("--ontology")
    search.add_argument("--corpus")
    search.add_argument("--engine", help="saved engine directory")
    search.add_argument("-k", type=int, default=10)
    search.add_argument("--algorithm", default="knds",
                        choices=["knds", "fullscan", "ta"])
    search.add_argument("--error-threshold", type=float)
    search.add_argument("--trace", metavar="FILE",
                        help="write a span trace of the query to FILE")
    search.add_argument("--trace-format", choices=["jsonl", "chrome"],
                        default="jsonl",
                        help="trace file format (chrome loads in "
                             "chrome://tracing)")
    search.add_argument("--metrics", metavar="FILE",
                        help="write a metrics snapshot to FILE")
    search.add_argument("--metrics-format",
                        choices=["json", "prometheus"],
                        help="metrics file format (default: inferred from "
                             "the file suffix, else json)")
    search.add_argument("--log-level",
                        choices=["debug", "info", "warning", "error"],
                        help="enable structured logging at this level")
    kinds = search.add_subparsers(dest="query_kind", required=True)
    rds = kinds.add_parser("rds", help="relevant document search")
    rds.add_argument("--query", required=True,
                     help="comma-separated concept ids")
    sds = kinds.add_parser("sds", help="similar document search")
    sds.add_argument("--doc-id", required=True)
    search.set_defaults(handler=_cmd_search)

    extract = commands.add_parser(
        "extract", help="extract concepts from clinical text")
    extract.add_argument("--ontology", required=True)
    extract.add_argument("--text")
    extract.add_argument("--file")
    extract.add_argument("--sections", action="store_true",
                         help="section-aware extraction (drops FAMILY "
                              "HISTORY etc.)")
    extract.set_defaults(handler=_cmd_extract)

    serve = commands.add_parser(
        "serve", help="run the concurrent HTTP/JSON query service")
    serve.add_argument("--ontology")
    serve.add_argument("--corpus")
    serve.add_argument("--engine", help="saved engine directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 picks a free one)")
    serve.add_argument("--workers", type=int, default=4,
                       help="query worker threads")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="admitted requests allowed beyond --workers "
                            "before shedding with 429")
    serve.add_argument("--deadline", type=float, default=10.0,
                       help="per-request deadline in seconds (504 past it)")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="result-cache entries (0 disables caching)")
    serve.add_argument("--cache-ttl", type=float, default=None,
                       help="result-cache TTL in seconds (default: none)")
    serve.add_argument("--retry-after", type=float, default=1.0,
                       help="Retry-After hint on 429/503 responses")
    serve.add_argument("--drain-seconds", type=float, default=5.0,
                       help="graceful-shutdown drain budget")
    serve.add_argument("--log-level",
                       choices=["debug", "info", "warning", "error"],
                       help="enable structured logging at this level")
    serve.add_argument("--trace-sample-rate", type=float, default=1.0,
                       help="fraction of traces whose spans are collected "
                            "(deterministic head sampling on trace id)")
    serve.add_argument("--trace-seed", type=int, default=None,
                       help="seed for server-minted trace ids "
                            "(reproducible traces)")
    serve.add_argument("--recorder-capacity", type=int, default=64,
                       help="slow/error requests retained with full span "
                            "trees (0 disables capture)")
    serve.add_argument("--slow-threshold", type=float, default=1.0,
                       help="seconds past which a request is captured by "
                            "the flight recorder (0 captures all)")
    serve.add_argument("--latency-objective", type=float, default=0.5,
                       help="per-request latency objective in seconds for "
                            "SLO burn-rate accounting")
    serve.add_argument("--profiler", action="store_true",
                       help="run the continuous sampling profiler "
                            "(snapshot it via /debug/profile)")
    serve.add_argument("--profiler-interval", type=float, default=0.01,
                       help="sampling period of the continuous profiler")
    serve.add_argument("--resource-interval", type=float, default=5.0,
                       help="resource.* gauge sampling period "
                            "(0 disables the background thread)")
    serve.add_argument("--shards", type=int, default=0,
                       help="partition the corpus across N worker "
                            "processes (0 serves in-process)")
    serve.add_argument("--shard-policy", default="hash",
                       choices=("hash", "round_robin"),
                       help="corpus partitioning policy for --shards")
    serve.add_argument("--shard-timeout", type=float, default=30.0,
                       help="per-shard request timeout in seconds; a "
                            "worker missing it is respawned")
    serve.add_argument("--shared-arena", action="store_true",
                       help="publish one shared-memory arena snapshot "
                            "that every shard worker attaches read-only "
                            "instead of re-packing (requires --shards)")
    serve.add_argument("--kernel-tier", default="auto",
                       choices=("auto", "packed", "numpy"),
                       help="arena LCP kernel: auto picks numpy when the "
                            "[perf] extra is installed, else the packed "
                            "scalar kernel; results are identical")
    serve.set_defaults(handler=_cmd_serve)

    debug = commands.add_parser(
        "debug", help="inspect a running server's flight recorder")
    debug.add_argument("--host", default="127.0.0.1")
    debug.add_argument("--port", type=int, default=8080)
    debug.add_argument("--id", help="request id (req-...) or trace id; "
                                    "renders the full span tree")
    debug.add_argument("--timeout", type=float, default=10.0)
    debug.set_defaults(handler=_cmd_debug)

    profile = commands.add_parser(
        "profile", help="fetch sampling-profiler stacks from a running "
                        "server")
    profile.add_argument("--host", default="127.0.0.1")
    profile.add_argument("--port", type=int, default=8080)
    profile.add_argument("--seconds", type=float, default=None,
                         help="sample for N seconds first (one-shot when "
                              "the continuous profiler is off)")
    profile.add_argument("--top", type=int, default=10,
                         help="hottest stacks to print")
    profile.add_argument("--raw", action="store_true",
                         help="dump collapsed-stack lines for "
                              "flamegraph.pl / speedscope")
    profile.add_argument("--timeout", type=float, default=60.0)
    profile.set_defaults(handler=_cmd_profile)

    experiments = commands.add_parser(
        "experiments", help="regenerate the paper's tables and figures",
        add_help=False)
    experiments.add_argument("rest", nargs=argparse.REMAINDER)
    experiments.set_defaults(handler=None)

    bench = commands.add_parser(
        "bench", help="run perf scenarios, write a BENCH_*.json artifact, "
                      "and gate against a baseline",
        add_help=False)
    bench.add_argument("rest", nargs=argparse.REMAINDER)
    bench.set_defaults(handler=None)

    lint = commands.add_parser(
        "lint", help="run the domain-aware static-analysis pass "
                     "(exit 2 on findings)",
        add_help=False)
    lint.add_argument("rest", nargs=argparse.REMAINDER)
    lint.set_defaults(handler=None)

    locks = commands.add_parser(
        "locks", help="render the static lock-acquisition graph "
                      "(exit 2 on ordering cycles)",
        add_help=False)
    locks.add_argument("rest", nargs=argparse.REMAINDER)
    locks.set_defaults(handler=None)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "experiments":
        # Hand everything through verbatim (argparse's REMAINDER would
        # otherwise intercept option-like tokens such as --help).
        return experiments_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.bench.perf import main as bench_main
        return bench_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main
        return lint_main(argv[1:])
    if argv and argv[0] == "locks":
        from repro.analysis.locks_cli import main as locks_main
        return locks_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    raise SystemExit(main())
