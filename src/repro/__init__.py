"""repro — Efficient Concept-based Document Ranking (EDBT 2014).

A from-scratch reproduction of Arvanitis, Wiley & Hristidis, *Efficient
Concept-based Document Ranking*, EDBT 2014: documents are sets of ontology
concepts, and the library answers relevance (RDS) and similarity (SDS)
top-k queries using the paper's DRC distance algorithm (D-Radix DAG) and
the kNDS early-termination search, together with every baseline the paper
compares against.

Quickstart
----------
>>> from repro import SearchEngine, figure3_ontology, example4_collection
>>> engine = SearchEngine(figure3_ontology(), example4_collection())
>>> [r.doc_id for r in engine.rds(["F", "I"], k=2).results]
['d2', 'd3']
"""

from repro.core.drc import DRC
from repro.core.engine import SearchEngine
from repro.core.knds import KNDSConfig, KNDSearch
from repro.core.mapreduce import MapReduceKNDS
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.datasets import example4_collection, figure3_ontology
from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import Tracer
from repro.ontology.builder import OntologyBuilder
from repro.ontology.generators import snomed_like
from repro.ontology.graph import Ontology

__version__ = "1.0.0"

__all__ = [
    "Ontology",
    "OntologyBuilder",
    "Document",
    "DocumentCollection",
    "DRC",
    "KNDSearch",
    "KNDSConfig",
    "MapReduceKNDS",
    "MetricsRegistry",
    "Observability",
    "SearchEngine",
    "Tracer",
    "get_registry",
    "snomed_like",
    "figure3_ontology",
    "example4_collection",
    "__version__",
]
