"""Fagin's Threshold Algorithm over distance-sorted postings (Section 4.1).

The paper's "index everything offline" strawman for RDS: precompute
``Ddc(d, c)`` for every document and (relevant) concept, store per-concept
postings lists sorted by ascending distance, and run TA [Fagin et al.,
PODS'01] with one list per query concept — sorted access in lock step,
random access to complete partially seen documents, and the classic
threshold ``Σ_i current-position-distance(i)`` as the stopping rule.

The paper dismisses this design for two reasons that the implementation
makes tangible:

* the offline index costs ``O(|D| · |C|)`` space and must be rebuilt when
  a document is added (``build`` walks the whole corpus per concept);
* it has no practical analogue for SDS, where the symmetric distance would
  require postings for every concept of the query *document* and the TA
  lower bound degenerates (Section 4.1) — hence :meth:`rds` only.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.core.results import QueryStats, RankedResults, ResultItem
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.exceptions import QueryError, UnknownConceptError
from repro.obs.tracing import NULL_TRACER
from repro.ontology.graph import Ontology
from repro.ontology.traversal import valid_path_distances
from repro.types import ConceptId, DocId

if TYPE_CHECKING:
    from repro.obs import Observability


class ThresholdAlgorithm:
    """TA over precomputed distance-sorted postings lists."""

    def __init__(self, ontology: Ontology, *,
                 obs: "Observability | None" = None) -> None:
        self.ontology = ontology
        # concept -> postings sorted by (distance, doc); and the random
        # access side table concept -> {doc: distance}.
        self._sorted: dict[ConceptId, list[tuple[float, DocId]]] = {}
        self._random: dict[ConceptId, dict[DocId, float]] = {}
        self.sorted_accesses = 0
        self.random_accesses = 0
        self._obs = obs

    def instrument(self, obs: "Observability | None") -> None:
        """Attach an :class:`repro.obs.Observability` bundle (or ``None``).

        Queries then run under a ``ta.query`` span and publish the
        ``ta.sorted_accesses`` / ``ta.random_accesses`` counters.
        """
        self._obs = obs

    @classmethod
    def build(cls, ontology: Ontology, collection: DocumentCollection, *,
              concepts: Iterable[ConceptId] | None = None,
              obs: "Observability | None" = None) -> "ThresholdAlgorithm":
        """Precompute postings for ``concepts`` (default: every concept
        occurring in the corpus — the paper's full offline index)."""
        ta = cls(ontology, obs=obs)
        tracer = obs.tracer if obs is not None else NULL_TRACER
        if concepts is None:
            concepts = sorted(collection.distinct_concepts())
        else:
            concepts = list(concepts)
        with tracer.span("ta.build", concepts=len(concepts)):
            for concept_id in concepts:
                ta.add_concept(concept_id, collection)
        return ta

    def add_concept(self, concept_id: ConceptId,
                    collection: DocumentCollection) -> None:
        """Build the postings list of one concept.

        One full valid-path BFS over the ontology plus one pass over the
        corpus — the per-concept build cost that makes the offline index
        expensive to maintain.
        """
        if concept_id not in self.ontology:
            raise UnknownConceptError(concept_id)
        distance_map = valid_path_distances(self.ontology, concept_id)
        random_access: dict[DocId, float] = {}
        for document in collection:
            best = min(
                distance_map[doc_concept]
                for doc_concept in document.require_concepts()
            )
            random_access[document.doc_id] = float(best)
        postings = sorted(
            (distance, doc_id) for doc_id, distance in random_access.items()
        )
        self._sorted[concept_id] = postings
        self._random[concept_id] = random_access

    def add_document(self, document: "Document") -> None:
        """Fold a new document into *every* built postings list.

        This is the maintenance cost the paper holds against TA: "TA
        would have to update every concept inverted index with the
        distance from the newly added EMR."  One valid-path BFS per
        document concept yields the distance maps, then every indexed
        concept's postings list is re-sorted with the new entry.  Compare
        with the O(#concepts) inserts of the kNDS indexes — measured in
        ``benchmarks/bench_ablation_updates.py``.
        """
        maps = [
            valid_path_distances(self.ontology, concept)
            for concept in document.require_concepts()
        ]
        for concept_id, postings in self._sorted.items():
            best = float(min(
                distance_map[concept_id] for distance_map in maps
            ))
            self._random[concept_id][document.doc_id] = best
            postings.append((best, document.doc_id))
            postings.sort()

    # ------------------------------------------------------------------
    def rds(self, query_concepts: Sequence[ConceptId],
            k: int) -> RankedResults:
        """Top-k RDS via TA (Definition 1 scores, Eq. 2)."""
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        query = tuple(dict.fromkeys(query_concepts))
        if not query:
            raise QueryError("query must contain at least one concept")
        for concept_id in query:
            if concept_id not in self._sorted:
                raise QueryError(
                    f"no postings for {concept_id!r}: build() it first"
                )
        stats = QueryStats()
        obs = self._obs
        tracer = obs.tracer if obs is not None else NULL_TRACER
        sorted_before = self.sorted_accesses
        random_before = self.random_accesses
        start = time.perf_counter()

        lists = [self._sorted[concept_id] for concept_id in query]
        positions = [0] * len(query)
        scores: dict[DocId, float] = {}
        with tracer.span("ta.query", k=k, num_query=len(query)):
            while True:
                progressed = False
                for list_index, postings in enumerate(lists):
                    position = positions[list_index]
                    if position >= len(postings):
                        continue
                    progressed = True
                    positions[list_index] = position + 1
                    self.sorted_accesses += 1
                    _distance, doc_id = postings[position]
                    if doc_id in scores:
                        continue
                    # Random access to every other list completes the score.
                    total = 0.0
                    for concept_id in query:
                        total += self._random[concept_id][doc_id]
                        self.random_accesses += 1
                    scores[doc_id] = total
                if not progressed:
                    break
                threshold = sum(
                    lists[i][positions[i] - 1][0] if positions[i] > 0 else 0.0
                    for i in range(len(query))
                )
                if len(scores) >= k:
                    best_k = sorted(scores.values())[:k]
                    if best_k[-1] <= threshold:
                        break

        ranked = sorted(
            (ResultItem(doc_id, distance)
             for doc_id, distance in scores.items()),
            key=lambda item: (item.distance, item.doc_id),
        )
        stats.docs_examined = len(scores)
        stats.docs_touched = len(scores)
        stats.total_seconds = time.perf_counter() - start
        if obs is not None:
            obs.metrics.counter("ta.sorted_accesses").inc(
                self.sorted_accesses - sorted_before)
            obs.metrics.counter("ta.random_accesses").inc(
                self.random_accesses - random_before)
            obs.metrics.counter("ta.docs_examined").inc(len(scores))
        return RankedResults(ranked[:k], stats, algorithm="ta",
                             query_kind="rds", k=k)

    def index_size(self) -> int:
        """Total postings entries — the ``O(|D|·|C|)`` footprint."""
        return sum(len(postings) for postings in self._sorted.values())
