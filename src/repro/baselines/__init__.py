"""Baseline strategies the paper compares against (Sections 4.1, 5.1, 6.2).

* :mod:`repro.baselines.pairwise` — "BL" of Figure 6: compute a document
  distance by evaluating all ``nq × nd`` concept-pair distances.
* :mod:`repro.baselines.fullscan` — the ranking baseline of Figures 8-9:
  no pruning, exact (DRC) distance for every document in the corpus.
* :mod:`repro.baselines.ta` — Fagin's Threshold Algorithm over offline
  distance-sorted postings lists, practical for RDS only (Section 4.1
  explains why it breaks down for SDS).
* :mod:`repro.baselines.matrix` — the precomputed all-pairs
  concept-distance matrix, the O(|C|²)-space strawman of Section 4.1.
"""

from repro.baselines.fullscan import FullScanSearch
from repro.baselines.matrix import ConceptDistanceMatrix
from repro.baselines.pairwise import PairwiseDistanceBaseline
from repro.baselines.ta import ThresholdAlgorithm

__all__ = [
    "PairwiseDistanceBaseline",
    "FullScanSearch",
    "ThresholdAlgorithm",
    "ConceptDistanceMatrix",
]
