"""The pairwise distance baseline ("BL" in Figure 6).

Computes ``Ddq`` and ``Ddd`` the straightforward way: evaluate the
concept-concept distance for every (query concept, document concept) pair
and take row/column minima — ``O(nq · nd)`` distance evaluations per
document pair, against DRC's ``O(n log n)``.  This is the method the paper
plots DRC against in Figure 6, chosen because, like DRC, it needs no
offline precomputation.

Each concept-pair distance is the Dewey-pair minimum; per-concept ancestor
maps are cached across calls so the baseline is not handicapped by
recomputing BFS cones (the quadratic pair loop is the point of the
comparison, not repeated graph walks).
"""

from __future__ import annotations

from collections.abc import Collection
from typing import TYPE_CHECKING

from repro.exceptions import EmptyDocumentError, InvariantError
from repro.ontology.distance import ancestor_distances
from repro.ontology.graph import Ontology
from repro.types import ConceptId

if TYPE_CHECKING:
    from repro.core.arena import PackedDeweyArena


class PairwiseDistanceBaseline:
    """Quadratic document-distance calculator with cached ancestor cones.

    When constructed with a :class:`repro.core.arena.PackedDeweyArena`,
    each concept-pair evaluation is served by the arena's packed LCP
    kernel (and its shared distance cache) instead of the ancestor-cone
    intersection — same integers, same quadratic pair loop, so the
    Figure 6 comparison still measures the pair-matrix cost.
    """

    def __init__(self, ontology: Ontology, *,
                 arena: "PackedDeweyArena | None" = None) -> None:
        self.ontology = ontology
        self.arena = arena
        self._cones: dict[ConceptId, dict[ConceptId, int]] = {}
        self.pair_evaluations = 0
        """Concept-pair distance evaluations performed (for assertions)."""

    def _cone(self, concept_id: ConceptId) -> dict[ConceptId, int]:
        cone = self._cones.get(concept_id)
        if cone is None:
            cone = ancestor_distances(self.ontology, concept_id)
            self._cones[concept_id] = cone
        return cone

    def concept_distance(self, first: ConceptId, second: ConceptId) -> int:
        """Valid-path distance via the two cached ancestor cones."""
        self.pair_evaluations += 1
        if self.arena is not None:
            return self.arena.concept_pair_distance(first, second)
        cone_first = self._cone(first)
        cone_second = self._cone(second)
        if len(cone_first) > len(cone_second):
            cone_first, cone_second = cone_second, cone_first
        best: int | None = None
        for ancestor, up_first in cone_first.items():
            up_second = cone_second.get(ancestor)
            if up_second is None:
                continue
            total = up_first + up_second
            if best is None or total < best:
                best = total
        if best is None:
            raise InvariantError(
                "no common ancestor found; validated ontologies share "
                "the root")
        return best

    def _batch_distances(self, pairs: list[tuple[ConceptId, ConceptId]]
                         ) -> list[int]:
        """Arena-batched pair distances for a full matrix, in order.

        One :meth:`repro.core.arena.PackedDeweyArena.batch_pair_distances`
        call instead of a Python call per pair — on the numpy tier the
        whole matrix is one vectorized kernel invocation.  The baseline
        evaluates full matrices with no early exit, so batching the
        same pairs in the same order leaves every counter (here
        ``pair_evaluations``, in the arena ``pair_lookups`` /
        ``pair_kernels`` / cache stats) exactly where the scalar loop
        would put it.
        """
        arena = self.arena
        if arena is None:  # pragma: no cover - callers gate on arena
            raise InvariantError("_batch_distances requires an arena")
        self.pair_evaluations += len(pairs)
        ids = [(arena.concept_id(first), arena.concept_id(second))
               for first, second in pairs]
        return arena.batch_pair_distances(ids)

    def document_query_distance(self, doc_concepts: Collection[ConceptId],
                                query_concepts: Collection[ConceptId]
                                ) -> float:
        """``Ddq`` (Eq. 2) via the full pair matrix."""
        if not doc_concepts or not query_concepts:
            raise EmptyDocumentError("<pairwise>")
        if self.arena is not None:
            pairs = [(doc_concept, query_concept)
                     for query_concept in query_concepts
                     for doc_concept in doc_concepts]
            distances = self._batch_distances(pairs)
            width = len(doc_concepts)
            return float(sum(
                min(distances[row:row + width])
                for row in range(0, len(distances), width)))
        total = 0
        for query_concept in query_concepts:
            total += min(
                self.concept_distance(doc_concept, query_concept)
                for doc_concept in doc_concepts
            )
        return float(total)

    def document_document_distance(self, first: Collection[ConceptId],
                                   second: Collection[ConceptId]) -> float:
        """``Ddd`` (Eq. 3) via the full pair matrix, reusing each pair for
        both direction minima."""
        if not first or not second:
            raise EmptyDocumentError("<pairwise>")
        first_list = list(first)
        second_list = list(second)
        row_minima = [float("inf")] * len(first_list)
        column_minima = [float("inf")] * len(second_list)
        if self.arena is not None:
            distances = self._batch_distances(
                [(doc_concept, query_concept)
                 for doc_concept in first_list
                 for query_concept in second_list])
        else:
            distances = None
        position = 0
        for row, doc_concept in enumerate(first_list):
            for column, query_concept in enumerate(second_list):
                if distances is not None:
                    distance = distances[position]
                    position += 1
                else:
                    distance = self.concept_distance(
                        doc_concept, query_concept)
                if distance < row_minima[row]:
                    row_minima[row] = distance
                if distance < column_minima[column]:
                    column_minima[column] = distance
        return (sum(row_minima) / len(first_list)
                + sum(column_minima) / len(second_list))

    def reset_counters(self) -> None:
        """Zero the pair counter (benchmark harness hygiene)."""
        self.pair_evaluations = 0
