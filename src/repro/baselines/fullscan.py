"""The no-pruning ranking baseline of Figures 8 and 9.

Computes the exact distance of *every* document in the corpus from the
query and sorts — "the baseline method that does not apply any pruning of
documents" (Section 6.2).  To isolate exactly the gain from kNDS's
branch-and-bound pruning, the per-document distance uses the very same DRC
calculator as kNDS, matching the paper's experimental setup.

Besides being the comparison target, this is also the correctness oracle:
the test suite checks kNDS output against it on randomized corpora.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.core.drc import DRC
from repro.core.results import QueryStats, RankedResults, ResultItem
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.exceptions import QueryError, UnknownConceptError
from repro.obs.metrics import QueryTelemetry
from repro.obs.tracing import NULL_TRACER
from repro.ontology.graph import Ontology
from repro.types import ConceptId

if TYPE_CHECKING:
    from repro.obs import Observability


class FullScanSearch:
    """Exhaustive top-k evaluation with exact DRC distances."""

    def __init__(self, ontology: Ontology, collection: DocumentCollection,
                 *, drc: DRC | None = None,
                 obs: "Observability | None" = None) -> None:
        self.ontology = ontology
        self.collection = collection
        self.drc = drc or DRC(ontology)
        self._obs = obs

    def instrument(self, obs: "Observability | None") -> None:
        """Attach an :class:`repro.obs.Observability` bundle (or ``None``).

        The scan then runs under a ``fullscan.scan`` span and publishes
        its per-query counters under the ``fullscan.*`` prefix.
        """
        self._obs = obs

    def rds(self, query_concepts: Sequence[ConceptId],
            k: int) -> RankedResults:
        """Top-k RDS by scanning the whole corpus."""
        query = self._validate(query_concepts, k)
        return self._scan(query, k, mode="rds")

    def sds(self, query_document: Document | Sequence[ConceptId],
            k: int) -> RankedResults:
        """Top-k SDS by scanning the whole corpus."""
        if isinstance(query_document, Document):
            concepts = query_document.require_concepts()
        else:
            concepts = tuple(query_document)
        query = self._validate(concepts, k)
        return self._scan(query, k, mode="sds")

    def _validate(self, query_concepts: Sequence[ConceptId],
                  k: int) -> tuple[ConceptId, ...]:
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        unique = tuple(dict.fromkeys(query_concepts))
        if not unique:
            raise QueryError("query must contain at least one concept")
        for concept in unique:
            if concept not in self.ontology:
                raise UnknownConceptError(concept)
        return unique

    def _scan(self, query: tuple[ConceptId, ...], k: int,
              mode: str) -> RankedResults:
        telemetry = QueryTelemetry()
        obs = self._obs
        tracer = obs.tracer if obs is not None else NULL_TRACER
        start = time.perf_counter()
        scored: list[ResultItem] = []
        with tracer.span("fullscan.scan", mode=mode,
                         docs=len(self.collection)):
            for document in self.collection:
                distance_start = time.perf_counter()
                if mode == "rds":
                    distance = self.drc.document_query_distance(
                        document.require_concepts(), query)
                else:
                    distance = self.drc.document_document_distance(
                        document.require_concepts(), query)
                telemetry.distance_seconds += \
                    time.perf_counter() - distance_start
                telemetry.drc_calls += 1
                scored.append(ResultItem(document.doc_id, float(distance)))
            scored.sort(key=lambda item: (item.distance, item.doc_id))
        telemetry.docs_examined = len(scored)
        telemetry.docs_touched = len(scored)
        telemetry.total_seconds = time.perf_counter() - start
        if obs is not None:
            telemetry.publish(obs.metrics, prefix="fullscan")
        return RankedResults(scored[:k], QueryStats.from_metrics(telemetry),
                             algorithm="fullscan", query_kind=mode, k=k)
