"""Precomputed all-pairs concept-distance matrix (Section 4.1 strawman).

The first baseline the paper dismisses: precompute ``D(ci, cj)`` for all
concept pairs so document distances become table lookups.  The space is
``O(|C|²)`` — around 8.4 × 10¹² entries for the UMLS metathesaurus — which
is why it "is not an option" beyond toy ontologies.  The implementation
exists to make that argument concrete (``estimated_entries`` /
``memory_report``), to serve as yet another independent distance oracle in
the tests, and to support restricted matrices over just the concepts a
workload touches.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable

from repro.exceptions import EmptyDocumentError, UnknownConceptError
from repro.ontology.graph import Ontology
from repro.ontology.traversal import valid_path_distances
from repro.types import ConceptId


class ConceptDistanceMatrix:
    """Dense pairwise valid-path distances over a concept subset."""

    def __init__(self, ontology: Ontology) -> None:
        self.ontology = ontology
        self._matrix: dict[ConceptId, dict[ConceptId, int]] = {}

    @classmethod
    def build(cls, ontology: Ontology, *,
              concepts: Iterable[ConceptId] | None = None
              ) -> "ConceptDistanceMatrix":
        """Precompute rows for ``concepts`` (default: the whole ontology).

        One full valid-path BFS per row; restrict ``concepts`` to keep this
        tractable on anything but toy DAGs.
        """
        matrix = cls(ontology)
        if concepts is None:
            concepts = list(ontology.concepts())
        universe = set(concepts)
        for concept_id in universe:
            if concept_id not in ontology:
                raise UnknownConceptError(concept_id)
            full_map = valid_path_distances(ontology, concept_id)
            matrix._matrix[concept_id] = {
                other: distance for other, distance in full_map.items()
                if other in universe
            }
        return matrix

    def distance(self, first: ConceptId, second: ConceptId) -> int:
        """Lookup ``D(first, second)``."""
        try:
            return self._matrix[first][second]
        except KeyError:
            missing = first if first not in self._matrix else second
            raise UnknownConceptError(missing) from None

    def document_query_distance(self, doc_concepts: Collection[ConceptId],
                                query_concepts: Collection[ConceptId]
                                ) -> float:
        """``Ddq`` (Eq. 2) by pure table lookups."""
        if not doc_concepts or not query_concepts:
            raise EmptyDocumentError("<matrix>")
        total = 0
        for query_concept in query_concepts:
            row = self._matrix[query_concept]
            total += min(row[doc_concept] for doc_concept in doc_concepts)
        return float(total)

    def document_document_distance(self, first: Collection[ConceptId],
                                   second: Collection[ConceptId]) -> float:
        """``Ddd`` (Eq. 3) by pure table lookups."""
        if not first or not second:
            raise EmptyDocumentError("<matrix>")
        forward = sum(
            min(self._matrix[ci][cj] for cj in second) for ci in first
        )
        backward = sum(
            min(self._matrix[cj][ci] for ci in first) for cj in second
        )
        return forward / len(first) + backward / len(second)

    def entries(self) -> int:
        """Number of stored pair distances."""
        return sum(len(row) for row in self._matrix.values())

    @staticmethod
    def estimated_entries(num_concepts: int) -> int:
        """``|C|²`` — the full-matrix footprint the paper rules out."""
        return num_concepts * num_concepts

    @staticmethod
    def memory_report(num_concepts: int,
                      bytes_per_entry: int = 4) -> str:
        """Human-readable size estimate for a full matrix."""
        total = ConceptDistanceMatrix.estimated_entries(num_concepts)
        gib = total * bytes_per_entry / (1024 ** 3)
        return (
            f"{num_concepts:,} concepts -> {total:,} pair distances "
            f"(~{gib:,.1f} GiB at {bytes_per_entry} bytes each)"
        )
