"""Subontology extraction.

Real deployments rarely load all of SNOMED-CT: a radiology service wants
the imaging-findings subtree, a trial-matching service the disorders
subtree.  These helpers carve out self-contained, validated
sub-ontologies while preserving Dewey-relevant structure (child order is
inherited from the source, so relative Dewey components survive).

Note that distances can only shrink or stay equal *within* the extracted
cone relative to the full ontology when the cone is closed under common
ancestors — rooted extraction (:func:`extract_rooted`) guarantees that
for concept pairs below the new root, because every valid path between
them through a common ancestor at or below the root is retained.
"""

from __future__ import annotations

from collections.abc import Collection

from repro.exceptions import UnknownConceptError
from repro.ontology.builder import OntologyBuilder
from repro.ontology.graph import Ontology
from repro.types import ConceptId


def extract_rooted(ontology: Ontology, new_root: ConceptId, *,
                   name: str | None = None) -> Ontology:
    """The sub-DAG induced by a concept and all its descendants.

    Edges among retained concepts are kept in their original order;
    ``new_root`` becomes the single root of the result.
    """
    if new_root not in ontology:
        raise UnknownConceptError(new_root)
    keep = ontology.descendants(new_root) | {new_root}
    return _induced(ontology, keep, roots_ok={new_root},
                    name=name or f"{ontology.name}@{new_root}")


def extract_closure(ontology: Ontology,
                    concepts: Collection[ConceptId], *,
                    name: str | None = None) -> Ontology:
    """The ancestor closure of a concept set.

    Contains the given concepts and every ancestor of each — the minimal
    sub-DAG in which all original Dewey addresses of the given concepts
    still exist.  Rooted at the original root, so valid-path distances
    between the given concepts are *identical* to the full ontology
    (every common ancestor survives).
    """
    keep: set[ConceptId] = set()
    for concept in concepts:
        if concept not in ontology:
            raise UnknownConceptError(concept)
        keep.add(concept)
        keep |= ontology.ancestors(concept)
    keep.add(ontology.root)
    return _induced(ontology, keep, roots_ok={ontology.root},
                    name=name or f"{ontology.name}-closure")


def _induced(ontology: Ontology, keep: set[ConceptId],
             roots_ok: set[ConceptId], name: str) -> Ontology:
    builder = OntologyBuilder(name)
    for concept in ontology.concepts():
        if concept not in keep:
            continue
        builder.add_concept(concept, ontology.label(concept),
                            ontology.synonyms(concept))
    for concept in ontology.concepts():
        if concept not in keep:
            continue
        for child in ontology.children(concept):
            if child in keep:
                builder.add_edge(concept, child)
    # Concepts that lost all their parents but are not the intended root
    # would create extra roots; attach them under the intended root so
    # the result stays single-rooted.  With rooted/closure extraction
    # this only ever triggers for the intended root itself.
    subgraph = builder.build(validate=False)
    stray = [
        concept for concept in subgraph.concepts()
        if not subgraph.parents(concept) and concept not in roots_ok
    ]
    root = next(iter(roots_ok))
    for concept in stray:
        subgraph._add_edge(root, concept)
    subgraph.validate()
    return subgraph
