"""Ontology substrate: DAG model, Dewey labelling, distances, traversal.

This subpackage implements everything the paper assumes about the concept
hierarchy (Section 3.1): a single-rooted DAG of is-a relationships, Dewey
path addresses for every concept, the shortest valid-path concept-concept
distance of Rada et al., and the up-then-down "valid path" breadth-first
traversal used by the kNDS search algorithm.  File-format parsers for
SNOMED-CT RF2, UMLS RRF and OBO live in :mod:`repro.ontology.io`.
"""

from repro.ontology.builder import OntologyBuilder
from repro.ontology.dewey import DeweyIndex
from repro.ontology.distance import (
    concept_distance,
    concept_distance_dewey,
    document_concept_distance,
    document_document_distance,
    document_query_distance,
)
from repro.ontology.generators import snomed_like
from repro.ontology.graph import Ontology
from repro.ontology.measures import (
    InformationContent,
    least_common_ancestors,
    wu_palmer_similarity,
)
from repro.ontology.stats import OntologyStats, compute_stats
from repro.ontology.traversal import ValidPathBFS, valid_path_distances

__all__ = [
    "Ontology",
    "OntologyBuilder",
    "DeweyIndex",
    "concept_distance",
    "concept_distance_dewey",
    "document_concept_distance",
    "document_query_distance",
    "document_document_distance",
    "ValidPathBFS",
    "valid_path_distances",
    "snomed_like",
    "OntologyStats",
    "compute_stats",
    "InformationContent",
    "wu_palmer_similarity",
    "least_common_ancestors",
]
