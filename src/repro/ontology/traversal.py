"""Valid-path breadth-first traversal (Section 5.3 of the paper).

A *valid path* between two concepts must pass through a common ancestor:
it may climb parent edges and then descend child edges, but once it starts
descending it can never climb again.  kNDS explores the ontology outward
from each query concept along exactly these paths, one distance level per
iteration, so that the first time a breadth-first search from query node
``qi`` touches any concept of a document ``d`` the current level *is*
``Ddc(d, qi)``.

The traversal is modelled as a BFS over a two-phase state space:

* ``(node, UP)`` — still climbing; may move to parents (stay UP) or to
  children (switch to DOWN);
* ``(node, DOWN)`` — descending; may only move to children.

The search never immediately backtracks along the edge it arrived by
(matching the expansion sets in the paper's Table 2 trace); this is safe
because a backtrack can only revisit a state that is reachable at least as
cheaply with a less restrictive phase.

State deduplication is optional.  The paper deliberately does *not* label
visited nodes ("labeling a visited node is more expensive") and instead
bounds memory with a queue cap; ``dedupe=False`` reproduces that behaviour
for the ablation benchmarks, while the default ``dedupe=True`` prunes
dominated states: a DOWN state is redundant if the same node was already
reached in either phase, an UP state only if already reached UP.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.exceptions import UnknownConceptError
from repro.ontology.graph import Ontology
from repro.types import ConceptId

_UP = 0
_DOWN = 1


class ValidPathBFS:
    """Level-synchronized valid-path BFS from a single origin concept.

    Iterating yields ``(level, first_visits)`` pairs where ``first_visits``
    is the list of concepts whose minimum valid-path distance from the
    origin equals ``level``.  Level 0 always yields the origin itself.

    Attributes
    ----------
    origin:
        The concept the search started from.
    level:
        Distance of the most recently yielded frontier.
    """

    def __init__(self, ontology: Ontology, origin: ConceptId, *,
                 dedupe: bool = True) -> None:
        if origin not in ontology:
            raise UnknownConceptError(origin)
        self._ontology = ontology
        self.origin = origin
        self._dedupe = dedupe
        # Each state: (node, phase, predecessor-or-None).
        self._frontier: list[tuple[ConceptId, int, ConceptId | None]] = [
            (origin, _UP, None)
        ]
        self._seen_up: set[ConceptId] = {origin}
        self._seen_down: set[ConceptId] = set()
        self._visited: set[ConceptId] = set()
        self.level = -1

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[tuple[int, list[ConceptId]]]:
        return self

    def __next__(self) -> tuple[int, list[ConceptId]]:
        if not self._frontier:
            raise StopIteration
        self.level += 1
        first_visits: list[ConceptId] = []
        for node, _phase, _pred in self._frontier:
            if node not in self._visited:
                self._visited.add(node)
                first_visits.append(node)
        self._frontier = self._expand(self._frontier)
        return self.level, first_visits

    # ------------------------------------------------------------------
    def pending_states(self) -> int:
        """Number of states queued for the next level (queue pressure)."""
        return len(self._frontier)

    def frontier_nodes(self) -> list[ConceptId]:
        """Concepts queued for the next level (the paper's ``Ec`` view)."""
        return [node for node, _phase, _pred in self._frontier]

    def exhausted(self) -> bool:
        """True once the traversal has no states left to expand."""
        return not self._frontier

    def visited(self, node: ConceptId) -> bool:
        """True if ``node`` was already yielded by some level."""
        return node in self._visited

    # ------------------------------------------------------------------
    def _expand(
        self, frontier: list[tuple[ConceptId, int, ConceptId | None]]
    ) -> list[tuple[ConceptId, int, ConceptId | None]]:
        ontology = self._ontology
        dedupe = self._dedupe
        next_frontier: list[tuple[ConceptId, int, ConceptId | None]] = []
        for node, phase, predecessor in frontier:
            if phase == _UP:
                for parent in ontology.parents(node):
                    if parent == predecessor:
                        continue
                    if dedupe:
                        if parent in self._seen_up:
                            continue
                        self._seen_up.add(parent)
                    next_frontier.append((parent, _UP, node))
            for child in ontology.children(node):
                if child == predecessor:
                    continue
                if dedupe:
                    if child in self._seen_down or child in self._seen_up:
                        continue
                    self._seen_down.add(child)
                next_frontier.append((child, _DOWN, node))
        return next_frontier


def valid_path_distances(ontology: Ontology, origin: ConceptId, *,
                         max_level: int | None = None) -> dict[ConceptId, int]:
    """Distance map ``{concept: D(origin, concept)}`` for all concepts.

    Runs the valid-path BFS to completion (or to ``max_level``).  For a
    validated single-rooted ontology every concept is reachable, so the
    full map covers the whole ontology.  This is the building block for the
    precomputed postings of the Threshold Algorithm baseline
    (:mod:`repro.baselines.ta`).
    """
    distances: dict[ConceptId, int] = {}
    for level, nodes in ValidPathBFS(ontology, origin):
        if max_level is not None and level > max_level:
            break
        for node in nodes:
            distances[node] = level
    return distances
