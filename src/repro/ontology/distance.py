"""Semantic distances (Section 3.2 of the paper).

Concept-concept distance is the length of the shortest path between two
concepts that passes through a common ancestor (Rada et al.).  In the
running example of the paper, ``D(G, F)`` is 5, not 2, because the only
valid route goes up to their common ancestor ``A`` and back down.

Two independent implementations are provided and cross-checked by the test
suite:

* :func:`concept_distance` — bidirectional ancestor sweep: breadth-first
  search over parent edges from both concepts, then the minimum over common
  ancestors of the sum of up-distances.
* :func:`concept_distance_dewey` — the Dewey-pair identity
  ``min over address pairs of |p1| + |p2| - 2 * lcp(p1, p2)``, exact because
  address sets are closed under (ancestor address × downward path).

On top of the concept-concept distance sit the document-level measures:
``Ddc`` (Eq. 1), ``Ddq`` (Eq. 2) and the symmetric Melton et al. ``Ddd``
(Eq. 3).  The brute-force versions here are the paper's baseline ("BL");
:mod:`repro.core.drc` computes the same values in O(n log n).
"""

from __future__ import annotations

from collections.abc import Collection, Iterable

from repro.exceptions import (EmptyDocumentError, InvariantError,
                              UnknownConceptError)
from repro.ontology.dewey import DeweyIndex
from repro.ontology.graph import Ontology
from repro.types import ConceptId, common_prefix_length


def ancestor_distances(ontology: Ontology,
                       concept_id: ConceptId) -> dict[ConceptId, int]:
    """Shortest upward distance from a concept to each of its ancestors.

    The concept itself is included with distance 0 (every concept is a
    common ancestor candidate for its own descendants).
    """
    if concept_id not in ontology:
        raise UnknownConceptError(concept_id)
    distances = {concept_id: 0}
    frontier = [concept_id]
    level = 0
    while frontier:
        level += 1
        next_frontier: list[ConceptId] = []
        for node in frontier:
            for parent in ontology.parents(node):
                if parent not in distances:
                    distances[parent] = level
                    next_frontier.append(parent)
        frontier = next_frontier
    return distances


def concept_distance(ontology: Ontology, first: ConceptId,
                     second: ConceptId) -> int:
    """Shortest valid-path distance between two concepts.

    Computed as ``min over common ancestors a of up(first, a) + up(second,
    a)``.  Always finite in a validated ontology because the root is a
    common ancestor of everything.
    """
    if first == second:
        if first not in ontology:
            raise UnknownConceptError(first)
        return 0
    up_first = ancestor_distances(ontology, first)
    up_second = ancestor_distances(ontology, second)
    if len(up_first) > len(up_second):
        up_first, up_second = up_second, up_first
    best: int | None = None
    for ancestor, distance_first in up_first.items():
        distance_second = up_second.get(ancestor)
        if distance_second is None:
            continue
        total = distance_first + distance_second
        if best is None or total < best:
            best = total
    if best is None:
        raise InvariantError(
            "no common ancestor found; validated ontologies share the root")
    return best


def concept_distance_dewey(dewey: DeweyIndex, first: ConceptId,
                           second: ConceptId) -> int:
    """Shortest valid-path distance via the Dewey-pair identity.

    For every pair of addresses ``(p1, p2)`` the value ``|p1| + |p2| -
    2 * lcp`` is the length of the path that climbs from ``first`` to the
    ancestor at the longest common prefix and descends to ``second``; the
    minimum over all pairs is the valid-path distance.  Used as an
    independent oracle in tests and inside the pairwise baseline.
    """
    best: int | None = None
    for p1 in dewey.addresses(first):
        for p2 in dewey.addresses(second):
            candidate = len(p1) + len(p2) - 2 * common_prefix_length(p1, p2)
            if best is None or candidate < best:
                best = candidate
            if best == 0:
                return 0
    if best is None:
        raise InvariantError(
            f"concepts {first!r}/{second!r} have no Dewey addresses; "
            "every concept of a validated ontology has at least one")
    return best


def document_concept_distance(ontology: Ontology,
                              doc_concepts: Collection[ConceptId],
                              concept_id: ConceptId) -> int:
    """``Ddc(d, c)`` (Eq. 1): distance from ``c`` to the nearest concept
    of the document."""
    if not doc_concepts:
        raise EmptyDocumentError("<anonymous>")
    return min(
        concept_distance(ontology, member, concept_id)
        for member in doc_concepts
    )


def document_query_distance(ontology: Ontology,
                            doc_concepts: Collection[ConceptId],
                            query_concepts: Iterable[ConceptId]) -> int:
    """``Ddq(d, q)`` (Eq. 2): sum of ``Ddc(d, qi)`` over query concepts."""
    return sum(
        document_concept_distance(ontology, doc_concepts, query_concept)
        for query_concept in query_concepts
    )


def document_document_distance(ontology: Ontology,
                               first: Collection[ConceptId],
                               second: Collection[ConceptId]) -> float:
    """``Ddd(d1, d2)`` (Eq. 3): the symmetric Melton et al. distance.

    The sum of nearest-concept distances from each concept of ``d1`` into
    ``d2`` normalized by ``|d1|``, plus the mirror term normalized by
    ``|d2|``.  Symmetric by construction.
    """
    if not first or not second:
        raise EmptyDocumentError("<anonymous>")
    forward = sum(
        document_concept_distance(ontology, second, concept_id)
        for concept_id in first
    )
    backward = sum(
        document_concept_distance(ontology, first, concept_id)
        for concept_id in second
    )
    return forward / len(first) + backward / len(second)
