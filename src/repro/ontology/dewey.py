"""Dewey path addresses over the ontology DAG (Section 3.1).

Every root-to-concept path is encoded as a tuple of 1-based child indices
(:data:`repro.types.DeweyAddress`).  Because the ontology is a DAG rather
than a tree, a concept generally has several addresses — SNOMED-CT averages
9.78 per concept — and the DRC algorithm consumes *all* addresses of the
query and document concepts, merged in lexicographic order.

Two key structural facts that the rest of the library leans on:

* every prefix of an address is itself an address of an ancestor of the
  concept (the ancestor at that level of the path);
* the set of addresses of a concept is exactly
  ``{address(a) + path(a -> c) : a ancestor reached by a downward path}``,
  i.e. address sets are closed under composing any ancestor address with any
  downward path.  This closure is what makes the Dewey-pair distance
  identity in :func:`repro.ontology.distance.concept_distance_dewey` exact.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import OntologyError
from repro.ontology.graph import Ontology
from repro.types import ConceptId, DeweyAddress


class PathExplosionError(OntologyError):
    """A concept has more Dewey addresses than the configured cap.

    Dense multi-parent regions of a DAG can have exponentially many
    root-to-node paths.  Biomedical ontologies stay far away from that
    regime (SNOMED-CT tops out at 29 paths per concept), so hitting the cap
    almost always indicates malformed input rather than a real hierarchy.
    """

    def __init__(self, concept_id: ConceptId, cap: int) -> None:
        super().__init__(
            f"concept {concept_id!r} exceeds the cap of {cap} Dewey addresses"
        )
        self.concept_id = concept_id
        self.cap = cap


class DeweyIndex:
    """Lazily computed, memoized Dewey addresses for an ontology.

    Parameters
    ----------
    ontology:
        A validated single-rooted DAG.
    max_paths_per_concept:
        Safety cap against path explosion in adversarial DAGs.

    Notes
    -----
    Addresses are computed by composing each parent's addresses with the
    edge component, memoized per concept.  For the lookup patterns of DRC
    (addresses of the handful of concepts in a query or document) only the
    ancestor cone of those concepts is ever materialized.
    """

    def __init__(self, ontology: Ontology, *,
                 max_paths_per_concept: int = 100_000) -> None:
        self._ontology = ontology
        self._cap = max_paths_per_concept
        self._cache: dict[ConceptId, tuple[DeweyAddress, ...]] = {
            ontology.root: ((),),
        }

    @property
    def ontology(self) -> Ontology:
        return self._ontology

    def addresses(self, concept_id: ConceptId) -> tuple[DeweyAddress, ...]:
        """All Dewey addresses of a concept, lexicographically sorted."""
        cached = self._cache.get(concept_id)
        if cached is not None:
            return cached
        self._materialize(concept_id)
        return self._cache[concept_id]

    def _materialize(self, concept_id: ConceptId) -> None:
        # Iterative post-order over the ancestor cone, so deep ontologies
        # do not hit the recursion limit.
        ontology = self._ontology
        stack: list[tuple[ConceptId, bool]] = [(concept_id, False)]
        while stack:
            node, expanded = stack.pop()
            if node in self._cache:
                continue
            if expanded:
                addresses: list[DeweyAddress] = []
                for parent in ontology.parents(node):
                    component = ontology.child_component(parent, node)
                    for prefix in self._cache[parent]:
                        addresses.append(prefix + (component,))
                if len(addresses) > self._cap:
                    raise PathExplosionError(node, self._cap)
                addresses.sort()
                self._cache[node] = tuple(addresses)
            else:
                stack.append((node, True))
                for parent in ontology.parents(node):
                    if parent not in self._cache:
                        stack.append((parent, False))

    def address_count(self, concept_id: ConceptId) -> int:
        """Number of distinct root-to-concept paths."""
        return len(self.addresses(concept_id))

    def primary_address(self, concept_id: ConceptId) -> DeweyAddress:
        """The lexicographically smallest address of a concept."""
        return self.addresses(concept_id)[0]

    def sorted_address_list(
        self, concepts: Iterable[ConceptId]
    ) -> list[tuple[DeweyAddress, ConceptId]]:
        """The ``Pd`` / ``Pq`` lists of the DRC algorithm.

        Every address of every given concept, as ``(address, concept)``
        pairs sorted lexicographically by address.  This is the insertion
        order that Algorithm 1 consumes (Table 1 of the paper).
        """
        pairs: list[tuple[DeweyAddress, ConceptId]] = []
        for concept_id in concepts:
            for address in self.addresses(concept_id):
                pairs.append((address, concept_id))
        pairs.sort(key=lambda pair: pair[0])
        return pairs

    def total_paths(self, concepts: Iterable[ConceptId]) -> int:
        """Total number of addresses across a concept set (``|P|``)."""
        return sum(self.address_count(concept_id) for concept_id in concepts)
