"""Weighted document distances (generalizing the paper's Eq. 2/3).

The paper adopts Melton et al.'s inter-patient distance "where we assumed
that all concepts have equal weights" — the original measure supports
per-concept weights so that, e.g., highly informative concepts dominate
the similarity.  This module provides the weighted generalizations:

* weighted ``Ddq``: ``Σ w(qi) · Ddc(d, qi)`` — relevance queries where
  some criteria matter more;
* weighted ``Ddd``: ``Σ w(ci)·Ddc(d2, ci) / Σ w(ci)`` plus the mirrored
  term — the full Melton et al. form.

Weights can come from anywhere; :func:`information_content_weights` is
the natural choice (specific concepts weigh more).  The exact-distance
paths (brute force and DRC's D-Radix annotations) support weights
directly.  kNDS keeps the unweighted semantics: its lower bounds charge
uncovered terms uniformly with ``l + 1``, which is only a valid bound
when weights are equal — re-rank a candidate pool with weighted DRC
distances instead (see :func:`weighted_rerank`).
"""

from __future__ import annotations

from collections.abc import Callable, Collection, Iterable, Mapping

from repro.core.dradix import DOC, QUERY, DRadixDAG
from repro.core.drc import DRC
from repro.core.results import RankedResults, ResultItem
from repro.exceptions import EmptyDocumentError, QueryError
from repro.ontology.distance import document_concept_distance
from repro.ontology.graph import Ontology
from repro.ontology.measures import InformationContent
from repro.types import ConceptId, DocId


def _validated_weights(concepts: Collection[ConceptId],
                       weights: Mapping[ConceptId, float] | None
                       ) -> dict[ConceptId, float]:
    if weights is None:
        return {concept: 1.0 for concept in concepts}
    resolved = {}
    for concept in concepts:
        weight = weights.get(concept, 1.0)
        if weight < 0:
            raise QueryError(f"negative weight for {concept!r}: {weight}")
        resolved[concept] = weight
    if sum(resolved.values()) == 0:
        raise QueryError("weights sum to zero")
    return resolved


def weighted_document_query_distance(
    ontology: Ontology, doc_concepts: Collection[ConceptId],
    query_concepts: Collection[ConceptId], *,
    weights: Mapping[ConceptId, float] | None = None,
    normalize: bool = False,
) -> float:
    """Weighted Eq. 2: ``Σ w(qi) · Ddc(d, qi)``.

    With ``normalize=True`` the sum is divided by ``Σ w(qi)``, the
    footnote-3 normalization used when merging several (expanded)
    queries of different sizes.
    """
    if not doc_concepts:
        raise EmptyDocumentError("<weighted>")
    resolved = _validated_weights(query_concepts, weights)
    total = sum(
        weight * document_concept_distance(ontology, doc_concepts, concept)
        for concept, weight in resolved.items()
    )
    if normalize:
        total /= sum(resolved.values())
    return total


def weighted_document_document_distance(
    ontology: Ontology, first: Collection[ConceptId],
    second: Collection[ConceptId], *,
    weights: Mapping[ConceptId, float] | None = None,
) -> float:
    """Weighted Eq. 3 (the full Melton et al. form)."""
    if not first or not second:
        raise EmptyDocumentError("<weighted>")
    weights_first = _validated_weights(first, weights)
    weights_second = _validated_weights(second, weights)
    forward = sum(
        weight * document_concept_distance(ontology, second, concept)
        for concept, weight in weights_first.items()
    ) / sum(weights_first.values())
    backward = sum(
        weight * document_concept_distance(ontology, first, concept)
        for concept, weight in weights_second.items()
    ) / sum(weights_second.values())
    return forward + backward


def weighted_distance_from_dradix(
    dradix: DRadixDAG, *,
    weights: Mapping[ConceptId, float] | None = None,
    kind: str = "ddd",
) -> float:
    """Read a weighted distance off a tuned D-Radix.

    The D-Radix annotations already hold every ``Ddc`` value needed, so
    weighting costs nothing extra — one multiply per concept.  ``kind``
    is ``"ddq"`` (weighted Eq. 2) or ``"ddd"`` (weighted Eq. 3).
    """
    if kind == "ddq":
        resolved = _validated_weights(dradix.query_concepts, weights)
        return sum(
            weight * dradix.dag.node(concept).dist[DOC]
            for concept, weight in resolved.items()
        )
    if kind == "ddd":
        weights_doc = _validated_weights(dradix.doc_concepts, weights)
        weights_query = _validated_weights(dradix.query_concepts, weights)
        forward = sum(
            weight * dradix.dag.node(concept).dist[QUERY]
            for concept, weight in weights_doc.items()
        ) / sum(weights_doc.values())
        backward = sum(
            weight * dradix.dag.node(concept).dist[DOC]
            for concept, weight in weights_query.items()
        ) / sum(weights_query.values())
        return forward + backward
    raise QueryError(f"unknown distance kind: {kind!r}")


def information_content_weights(
    information_content: InformationContent,
    concepts: Iterable[ConceptId],
) -> dict[ConceptId, float]:
    """IC-derived weights: specific concepts count more than generic
    ones."""
    return {
        concept: information_content[concept] for concept in concepts
    }


def weighted_rerank(ontology: Ontology, results: RankedResults,
                    forward_concepts: Callable[[DocId],
                                               Collection[ConceptId]],
                    query_concepts: Collection[ConceptId],
                    *, weights: Mapping[ConceptId, float],
                    kind: str = "ddq",
                    drc: DRC | None = None) -> RankedResults:
    """Re-rank a (larger-k) unweighted result list by weighted distance.

    The standard pattern for weighted search: run kNDS with the uniform
    semantics and a widened k to obtain a candidate pool, then score the
    pool exactly with weighted DRC distances.  ``forward_concepts`` maps a
    doc id to its concept sequence (e.g. ``engine.forward.concepts``).
    """
    drc = drc or DRC(ontology)
    rescored = []
    for item in results:
        dradix = drc.build(forward_concepts(item.doc_id), query_concepts)
        distance = weighted_distance_from_dradix(
            dradix, weights=weights, kind=kind)
        rescored.append(ResultItem(item.doc_id, distance))
    rescored.sort(key=lambda entry: (entry.distance, entry.doc_id))
    return RankedResults(rescored, results.stats,
                         algorithm=results.algorithm + "+weighted",
                         query_kind=results.query_kind, k=results.k)
