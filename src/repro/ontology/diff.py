"""Ontology version diffing.

Biomedical ontologies are released on a cadence (SNOMED-CT twice a year),
and a deployed search system has to know what changed before swapping
releases: concept distances are pure functions of the DAG, so any edge
touching a concept's ancestor cone can change that concept's distances
and Dewey addresses.  :func:`diff_ontologies` computes the structural
delta, and :meth:`OntologyDiff.impacted_concepts` closes it over
descendants — the set of concepts whose distances may differ between the
two versions (everything else is guaranteed stable, see the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ontology.graph import Ontology
from repro.types import ConceptId


@dataclass(frozen=True)
class OntologyDiff:
    """Structural delta between two ontology versions."""

    added_concepts: frozenset[ConceptId]
    removed_concepts: frozenset[ConceptId]
    added_edges: frozenset[tuple[ConceptId, ConceptId]]
    removed_edges: frozenset[tuple[ConceptId, ConceptId]]
    relabelled: frozenset[ConceptId]
    reordered_parents: frozenset[ConceptId] = field(default=frozenset())
    """Concepts whose surviving child edges changed Dewey positions."""

    def is_empty(self) -> bool:
        """True when the versions are structurally identical."""
        return not (self.added_concepts or self.removed_concepts
                    or self.added_edges or self.removed_edges
                    or self.reordered_parents)

    def touched_concepts(self) -> set[ConceptId]:
        """Concepts directly involved in any structural change."""
        touched: set[ConceptId] = set(self.added_concepts)
        touched |= self.removed_concepts
        for parent, child in self.added_edges | self.removed_edges:
            touched.add(parent)
            touched.add(child)
        touched |= self.reordered_parents
        return touched

    def impacted_concepts(self, new_version: Ontology) -> set[ConceptId]:
        """Concepts whose distances/addresses may differ in the new
        version.

        The closure of the touched set over descendants in the new
        version: a structural change propagates only downward (Dewey
        addresses are ancestor-determined, and a changed edge alters the
        ancestor cones of exactly the subtree below it).  Removed
        concepts are included by id even though they no longer resolve.
        """
        impacted = self.touched_concepts()
        frontier = [c for c in impacted if c in new_version]
        while frontier:
            concept = frontier.pop()
            for child in new_version.children(concept):
                if child not in impacted:
                    impacted.add(child)
                    frontier.append(child)
        return impacted


def diff_ontologies(old: Ontology, new: Ontology) -> OntologyDiff:
    """Compute the structural delta from ``old`` to ``new``."""
    old_concepts = set(old.concepts())
    new_concepts = set(new.concepts())
    added_concepts = new_concepts - old_concepts
    removed_concepts = old_concepts - new_concepts
    shared = old_concepts & new_concepts

    old_edges = {
        (parent, child)
        for parent in old_concepts for child in old.children(parent)
    }
    new_edges = {
        (parent, child)
        for parent in new_concepts for child in new.children(parent)
    }
    relabelled = frozenset(
        concept for concept in shared
        if old.label(concept) != new.label(concept)
        or old.synonyms(concept) != new.synonyms(concept)
    )
    reordered = set()
    for concept in shared:
        old_children = [c for c in old.children(concept)
                        if (concept, c) in new_edges]
        new_children = [c for c in new.children(concept)
                        if (concept, c) in old_edges]
        if old_children != new_children:
            reordered.add(concept)
    return OntologyDiff(
        added_concepts=frozenset(added_concepts),
        removed_concepts=frozenset(removed_concepts),
        added_edges=frozenset(new_edges - old_edges),
        removed_edges=frozenset(old_edges - new_edges),
        relabelled=relabelled,
        reordered_parents=frozenset(reordered),
    )


def summarize_diff(diff: OntologyDiff) -> str:
    """One-paragraph human summary of a release delta."""
    if diff.is_empty() and not diff.relabelled:
        return "identical ontology versions"
    parts = []
    if diff.added_concepts:
        parts.append(f"{len(diff.added_concepts)} concepts added")
    if diff.removed_concepts:
        parts.append(f"{len(diff.removed_concepts)} concepts removed")
    if diff.added_edges:
        parts.append(f"{len(diff.added_edges)} edges added")
    if diff.removed_edges:
        parts.append(f"{len(diff.removed_edges)} edges removed")
    if diff.reordered_parents:
        parts.append(
            f"{len(diff.reordered_parents)} parents with reordered "
            "children (Dewey renumbering)")
    if diff.relabelled:
        parts.append(f"{len(diff.relabelled)} concepts relabelled")
    return "; ".join(parts)
