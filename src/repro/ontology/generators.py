"""Synthetic SNOMED-like ontology generation.

SNOMED-CT itself is licensed and cannot ship with the library, so the
benchmark suite runs on randomized DAGs whose *shape statistics* match the
figures the paper reports for SNOMED-CT (Section 6.1): 296,433 concepts,
9.78 Dewey paths per concept, average path length 14.1, and an average of
4.53 children per branching node.  All of the paper's algorithms depend
only on these shape statistics — depth controls distances and BFS levels,
multi-parenting controls ``|P|`` (the number of Dewey addresses DRC must
insert), and fanout controls breadth-first frontier growth — so matching
them at a configurable scale preserves every efficiency trend the paper
measures.

The construction is level-structured and cycle-free by design:

1. build a random tree level by level down to ``target_depth``; level
   sizes grow geometrically, and within each level only a fraction of the
   previous level's nodes act as parents (``internal_fraction``), which
   yields the SNOMED pattern of few high-fanout internal nodes and many
   leaves;
2. walk the nodes in depth order and give some of them extra parents from
   strictly shallower levels.  Because every edge goes from a shallower
   tree level to a deeper one, the result is guaranteed acyclic; and
   because path counts are propagated incrementally during this walk, an
   exact per-concept cap on Dewey addresses is enforced (SNOMED tops out
   at 29 paths per concept — unbounded random multi-parenting would
   instead explode exponentially with depth).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.ontology.graph import Ontology
from repro.types import ConceptId

# Vocabulary used to mint human-readable concept labels.  The cross product
# of the three lists is far larger than any generated ontology, and an index
# suffix guarantees uniqueness beyond that.
_BODY_SYSTEMS: Sequence[str] = (
    "cardiac", "renal", "hepatic", "pulmonary", "neural", "vascular",
    "gastric", "dermal", "skeletal", "ocular", "endocrine", "lymphatic",
    "muscular", "arterial", "venous", "bronchial", "cranial", "spinal",
)
_QUALIFIERS: Sequence[str] = (
    "acute", "chronic", "congenital", "degenerative", "focal", "diffuse",
    "primary", "secondary", "recurrent", "ischemic", "obstructive",
    "inflammatory", "neoplastic", "traumatic", "idiopathic", "bilateral",
)
_KINDS: Sequence[str] = (
    "finding", "disorder", "stenosis", "lesion", "syndrome", "infection",
    "insufficiency", "hypertrophy", "occlusion", "malformation",
    "dysfunction", "embolism", "fibrosis", "edema", "rupture", "atrophy",
)


def _make_label(index: int) -> str:
    body = _BODY_SYSTEMS[index % len(_BODY_SYSTEMS)]
    qualifier = _QUALIFIERS[(index // len(_BODY_SYSTEMS)) % len(_QUALIFIERS)]
    kind = _KINDS[
        (index // (len(_BODY_SYSTEMS) * len(_QUALIFIERS))) % len(_KINDS)
    ]
    cycle = index // (len(_BODY_SYSTEMS) * len(_QUALIFIERS) * len(_KINDS))
    suffix = f" type {cycle + 1}" if cycle else ""
    return f"{qualifier} {body} {kind}{suffix}"


def concept_id_for(index: int) -> ConceptId:
    """Deterministic concept id for the node created ``index``-th."""
    return f"C{index:07d}"


def snomed_like(num_concepts: int = 5_000, *,
                target_depth: int = 14,
                internal_fraction: float = 0.35,
                extra_parent_rate: float = 0.27,
                path_cap: int = 36,
                synonym_rate: float = 0.3,
                seed: int = 0,
                name: str | None = None) -> Ontology:
    """Generate a random single-rooted DAG with SNOMED-like shape.

    Parameters
    ----------
    num_concepts:
        Total concepts including the root.
    target_depth:
        Depth of the deepest tree level (SNOMED's average Dewey path
        length is 14.1); level sizes grow geometrically to fill
        ``num_concepts`` within this depth.
    internal_fraction:
        Fraction of each level's nodes eligible to receive children.  The
        smaller the fraction, the higher the fanout of branching nodes and
        the larger the share of leaves (SNOMED: ~4.5 children per
        branching node, most concepts are leaves).
    extra_parent_rate:
        Expected number of additional (non-tree) parents per eligible
        concept.  Drives the Dewey paths-per-concept statistic, roughly
        ``(1 + rate) ** depth``.
    path_cap:
        Hard per-concept bound on Dewey addresses; extra parents that
        would push a concept (and thereby its descendants) past the cap
        are skipped.
    synonym_rate:
        Fraction of concepts that receive a synonym term (mirrors
        SNOMED/UMLS synonymy, exercised by the text-mapping pipeline).
    seed:
        Seed for the private :class:`random.Random` instance; generation
        is fully deterministic given the arguments.
    """
    if num_concepts < 1:
        raise ValueError("num_concepts must be >= 1")
    if target_depth < 1:
        raise ValueError("target_depth must be >= 1")
    if not 0 < internal_fraction <= 1:
        raise ValueError("internal_fraction must be in (0, 1]")
    rng = random.Random(seed)
    ontology = Ontology(name or f"snomed-like-{num_concepts}")

    root = concept_id_for(0)
    ontology._add_concept(root, "clinical concept (root)")
    levels = _build_tree(rng, ontology, num_concepts, target_depth,
                         internal_fraction, synonym_rate)
    _add_extra_parents(rng, ontology, levels, extra_parent_rate, path_cap)
    ontology.validate()
    return ontology


def _build_tree(rng: random.Random, ontology: Ontology, num_concepts: int,
                target_depth: int, internal_fraction: float,
                synonym_rate: float) -> list[list[ConceptId]]:
    """Grow the level-structured spanning tree; returns nodes per level."""
    levels: list[list[ConceptId]] = [[concept_id_for(0)]]
    remaining = num_concepts - 1
    # Geometric growth factor that fills num_concepts in target_depth
    # levels: 1 + g + g^2 + ... ≈ num_concepts.
    growth = max(1.3, num_concepts ** (1.0 / target_depth))
    next_index = 1
    depth = 0
    while remaining > 0:
        depth += 1
        if depth < target_depth:
            width = min(remaining, max(1, round(len(levels[-1]) * growth)))
        else:
            width = remaining  # last level absorbs the remainder
        parent_pool = _parent_pool(rng, levels[-1], internal_fraction)
        level: list[ConceptId] = []
        for _ in range(width):
            concept_id = concept_id_for(next_index)
            label = _make_label(next_index - 1)
            synonyms = ()
            if rng.random() < synonym_rate:
                synonyms = (f"{label} ({concept_id})",)
            ontology._add_concept(concept_id, label, synonyms)
            parent = parent_pool[rng.randrange(len(parent_pool))]
            ontology._add_edge(parent, concept_id)
            level.append(concept_id)
            next_index += 1
        levels.append(level)
        remaining -= width
    return levels


def _parent_pool(rng: random.Random, previous_level: list[ConceptId],
                 internal_fraction: float) -> list[ConceptId]:
    """The subset of a level that is allowed to have children."""
    pool_size = max(1, round(len(previous_level) * internal_fraction))
    if pool_size >= len(previous_level):
        return previous_level
    return rng.sample(previous_level, pool_size)


def _add_extra_parents(rng: random.Random, ontology: Ontology,
                       levels: list[list[ConceptId]],
                       extra_parent_rate: float, path_cap: int) -> None:
    """Attach additional parents from strictly shallower tree levels.

    Nodes are processed in depth order and exact Dewey path counts are
    propagated as edges are added, so the per-concept cap is enforced for
    the node *and* (transitively) bounded for its descendants: every edge
    increases tree depth, hence no cycles.
    """
    paths: dict[ConceptId, int] = {levels[0][0]: 1}
    for depth, level in enumerate(levels[1:], start=1):
        for concept_id in level:
            count = sum(
                paths[parent] for parent in ontology.parents(concept_id)
            )
            if depth >= 2 and extra_parent_rate > 0:
                extra = _sample_extra_count(rng, extra_parent_rate)
                existing = set(ontology.parents(concept_id))
                for _ in range(extra):
                    # Prefer parents just above the node: SNOMED's extra
                    # is-a parents are overwhelmingly near-siblings of the
                    # primary parent, and deep extra parents are what
                    # multiplies Dewey path counts toward the published
                    # 9.78 per concept.
                    if depth > 2 and rng.random() < 0.7:
                        candidate_depth = depth - 1
                    else:
                        candidate_depth = rng.randrange(1, depth)
                    candidates = levels[candidate_depth]
                    parent = candidates[rng.randrange(len(candidates))]
                    if parent in existing:
                        continue
                    if count + paths[parent] > path_cap:
                        continue
                    ontology._add_edge(parent, concept_id)
                    existing.add(parent)
                    count += paths[parent]
            paths[concept_id] = count


def _sample_extra_count(rng: random.Random, rate: float) -> int:
    """Small-integer sample with mean ``rate`` (thinned geometric)."""
    count = 0
    while rng.random() < rate and count < 3:
        count += 1
        rate *= 0.5
    return count
