"""Alternative semantic similarity measures (the paper's future work).

The paper adopts the shortest valid-path distance (Rada et al.) after
noting that "complex distance metrics do not clearly improve the
correlation with the results provided by domain experts", and lists
exploring other semantic distances as future work (Section 7).  Its
related-work section reviews the two families (Section 2 / [3]):

* **structure-based** — path length and depth: the Rada distance already
  implemented in :mod:`repro.ontology.distance`, and the Wu-Palmer
  similarity implemented here;
* **information-content based** — Resnik, Lin and Jiang-Conrath, which
  need the corpus-derived information content of each concept: the
  probability mass of a concept is the frequency of the concept *and all
  its descendants* (occurrences of "aortic stenosis" also count as
  occurrences of "heart disease").

These measures plug into experiments comparing metric choices; the kNDS
early-termination machinery itself is tied to the additive level
semantics of the Rada distance, which is exactly why the paper chose it.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Mapping

from repro.corpus.collection import DocumentCollection
from repro.exceptions import OntologyError, UnknownConceptError
from repro.ontology.distance import ancestor_distances
from repro.ontology.graph import Ontology
from repro.types import ConceptId


def _common_ancestors(ontology: Ontology, first: ConceptId,
                      second: ConceptId) -> dict[ConceptId, int]:
    """Common ancestors (incl. the concepts themselves) -> summed
    up-distance."""
    up_first = ancestor_distances(ontology, first)
    up_second = ancestor_distances(ontology, second)
    return {
        ancestor: distance + up_second[ancestor]
        for ancestor, distance in up_first.items()
        if ancestor in up_second
    }


def least_common_ancestors(ontology: Ontology, first: ConceptId,
                           second: ConceptId) -> set[ConceptId]:
    """The common ancestors realizing the shortest valid path.

    A DAG can have several; all minimizers are returned.
    """
    common = _common_ancestors(ontology, first, second)
    best = min(common.values())
    return {
        ancestor for ancestor, total in common.items() if total == best
    }


def wu_palmer_similarity(ontology: Ontology, first: ConceptId,
                         second: ConceptId) -> float:
    """Wu & Palmer (1994): ``2·depth(lca) / (depth(c1) + depth(c2))``.

    Depth is counted from the root (root depth 0 contributes nothing, so
    the root as sole common ancestor yields similarity 0); the LCA is
    chosen to maximize the score, the usual DAG generalization.
    """
    common = _common_ancestors(ontology, first, second)
    depth_first = ontology.depth(first)
    depth_second = ontology.depth(second)
    if depth_first + depth_second == 0:
        return 1.0  # both are the root
    best = max(ontology.depth(ancestor) for ancestor in common)
    return 2.0 * best / (depth_first + depth_second)


class InformationContent:
    """Corpus-derived information content of every concept.

    ``IC(c) = -log p(c)`` where ``p(c)`` is the probability that a
    concept occurrence in the corpus falls in the subtree of ``c`` —
    i.e. counts are propagated from each concept to all its ancestors
    (Resnik 1995).  Concepts never observed (even transitively) get the
    maximum observed IC plus one nat, a standard smoothing choice.
    """

    def __init__(self, ontology: Ontology,
                 ic_values: Mapping[ConceptId, float]) -> None:
        self._ontology = ontology
        self._ic = dict(ic_values)

    @classmethod
    def from_collection(cls, ontology: Ontology,
                        collection: DocumentCollection
                        ) -> "InformationContent":
        """Estimate IC from document-level concept frequencies."""
        frequencies = collection.concept_frequencies()
        return cls.from_frequencies(ontology, frequencies)

    @classmethod
    def from_frequencies(cls, ontology: Ontology,
                         frequencies: Mapping[ConceptId, int]
                         ) -> "InformationContent":
        """Estimate IC from raw per-concept occurrence counts."""
        subtree: Counter[ConceptId] = Counter()
        # Each observed concept contributes its count to itself and to
        # every ancestor exactly once.  (A naive child-to-parent additive
        # sweep would double-count through multi-parent nodes: a count
        # below a diamond would reach the top once per path.)
        for concept, count in frequencies.items():
            if count <= 0:
                continue
            if concept not in ontology:
                raise UnknownConceptError(concept)
            subtree[concept] += count
            for ancestor in ontology.ancestors(concept):
                subtree[ancestor] += count
        total = subtree[ontology.root]
        if total <= 0:
            raise OntologyError(
                "cannot estimate information content from an empty corpus"
            )
        ic: dict[ConceptId, float] = {}
        observed = [
            -math.log(count / total)
            for count in subtree.values() if count > 0
        ]
        ceiling = (max(observed) if observed else 0.0) + 1.0
        for concept in ontology.concepts():
            count = subtree.get(concept, 0)
            ic[concept] = -math.log(count / total) if count > 0 else ceiling
        return cls(ontology, ic)

    def __getitem__(self, concept_id: ConceptId) -> float:
        try:
            return self._ic[concept_id]
        except KeyError:
            raise UnknownConceptError(concept_id) from None

    def most_informative_common_ancestor(self, first: ConceptId,
                                         second: ConceptId
                                         ) -> tuple[ConceptId, float]:
        """The common ancestor with maximum IC and its IC value."""
        common = _common_ancestors(self._ontology, first, second)
        best_concept = max(common, key=lambda c: self._ic[c])
        return best_concept, self._ic[best_concept]

    # ------------------------------------------------------------------
    def resnik_similarity(self, first: ConceptId,
                          second: ConceptId) -> float:
        """Resnik (1995): IC of the most informative common ancestor."""
        _ancestor, value = self.most_informative_common_ancestor(
            first, second)
        return value

    def lin_similarity(self, first: ConceptId, second: ConceptId) -> float:
        """Lin (1998): ``2·IC(mica) / (IC(c1) + IC(c2))`` in [0, 1]."""
        denominator = self[first] + self[second]
        if denominator == 0:
            return 1.0
        return 2.0 * self.resnik_similarity(first, second) / denominator

    def jiang_conrath_distance(self, first: ConceptId,
                               second: ConceptId) -> float:
        """Jiang & Conrath (1997) distance:
        ``IC(c1) + IC(c2) - 2·IC(mica)``; 0 for identical concepts."""
        return (self[first] + self[second]
                - 2.0 * self.resnik_similarity(first, second))


def rank_concepts_by_similarity(
    ontology: Ontology, anchor: ConceptId,
    candidates: Iterable[ConceptId], *,
    measure: str = "wu-palmer",
    information_content: InformationContent | None = None,
) -> list[tuple[ConceptId, float]]:
    """Rank candidate concepts by similarity to an anchor concept.

    ``measure`` is one of ``"wu-palmer"``, ``"resnik"``, ``"lin"`` —
    similarities, ranked descending.  IC-based measures require an
    ``information_content`` instance.
    """
    if measure == "wu-palmer":
        def score(candidate: ConceptId) -> float:
            return wu_palmer_similarity(ontology, anchor, candidate)
    elif measure in ("resnik", "lin"):
        if information_content is None:
            raise OntologyError(
                f"measure {measure!r} requires information_content")
        scorer = (information_content.resnik_similarity
                  if measure == "resnik"
                  else information_content.lin_similarity)

        def score(candidate: ConceptId) -> float:
            return scorer(anchor, candidate)
    else:
        raise OntologyError(f"unknown similarity measure: {measure!r}")
    ranked = [(candidate, score(candidate)) for candidate in candidates]
    ranked.sort(key=lambda pair: (-pair[1], pair[0]))
    return ranked
