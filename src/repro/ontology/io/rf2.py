"""SNOMED-CT RF2 snapshot parser.

Reads the three tab-separated snapshot files of an RF2 release:

* ``sct2_Concept``: one row per concept (``id``, ``active``, …);
* ``sct2_Relationship``: typed relationships; rows whose ``typeId`` is the
  is-a concept (``116680003``) and that are active define the hierarchy —
  ``sourceId`` *is a* ``destinationId``, i.e. destination is the parent;
* ``sct2_Description`` (optional): terms; the fully specified name
  (``typeId`` 900000000000003001) becomes the label, other active terms
  become synonyms.

Only is-a edges are loaded, exactly like the paper ("we considered only
edges that represent is-a relationships", Section 6.1).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.exceptions import ParseError
from repro.ontology.builder import OntologyBuilder
from repro.ontology.graph import Ontology

IS_A_TYPE_ID = "116680003"
"""SCTID of the |is a| relationship type."""

FSN_TYPE_ID = "900000000000003001"
"""SCTID of the fully-specified-name description type."""


def load_rf2(concept_path: str | Path, relationship_path: str | Path,
             description_path: str | Path | None = None, *,
             name: str = "SNOMED-CT",
             add_virtual_root: bool = False) -> Ontology:
    """Load an RF2 snapshot triple into an :class:`Ontology`.

    Parameters
    ----------
    concept_path, relationship_path, description_path:
        The snapshot files.  Descriptions are optional; without them
        concept ids double as labels.
    add_virtual_root:
        Connect multiple roots under a synthetic root (full SNOMED has a
        single root concept, but extracted subsets often do not).
    """
    builder = OntologyBuilder(name)
    active_concepts = _load_concepts(builder, Path(concept_path))
    _load_relationships(builder, Path(relationship_path), active_concepts)
    if description_path is not None:
        _apply_descriptions(builder, Path(description_path), active_concepts)
    return builder.build(add_virtual_root=add_virtual_root)


def _read_rows(path: Path) -> tuple[list[str], list[list[str]]]:
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter="\t")
        try:
            header = next(reader)
        except StopIteration:
            raise ParseError("empty RF2 file", path=str(path)) from None
        return header, list(reader)


def _column(header: list[str], name: str, path: Path) -> int:
    try:
        return header.index(name)
    except ValueError:
        raise ParseError(
            f"missing RF2 column {name!r}", path=str(path)) from None


def _load_concepts(builder: OntologyBuilder, path: Path) -> set[str]:
    header, rows = _read_rows(path)
    id_col = _column(header, "id", path)
    active_col = _column(header, "active", path)
    active: set[str] = set()
    for row in rows:
        if row[active_col] != "1":
            continue
        concept_id = row[id_col]
        active.add(concept_id)
        builder.add_concept(concept_id)
    return active


def _load_relationships(builder: OntologyBuilder, path: Path,
                        active_concepts: set[str]) -> None:
    header, rows = _read_rows(path)
    source_col = _column(header, "sourceId", path)
    destination_col = _column(header, "destinationId", path)
    type_col = _column(header, "typeId", path)
    active_col = _column(header, "active", path)
    for row in rows:
        if row[active_col] != "1" or row[type_col] != IS_A_TYPE_ID:
            continue
        child, parent = row[source_col], row[destination_col]
        if child in active_concepts and parent in active_concepts:
            builder.add_edge(parent, child)


def _apply_descriptions(builder: OntologyBuilder, path: Path,
                        active_concepts: set[str]) -> None:
    header, rows = _read_rows(path)
    concept_col = _column(header, "conceptId", path)
    term_col = _column(header, "term", path)
    type_col = _column(header, "typeId", path)
    active_col = _column(header, "active", path)
    labels: dict[str, str] = {}
    synonyms: dict[str, list[str]] = {}
    for row in rows:
        if row[active_col] != "1":
            continue
        concept_id = row[concept_col]
        if concept_id not in active_concepts:
            continue
        if row[type_col] == FSN_TYPE_ID:
            labels.setdefault(concept_id, row[term_col])
        else:
            synonyms.setdefault(concept_id, []).append(row[term_col])
    for concept_id in active_concepts:
        label = labels.get(concept_id)
        if label is not None or concept_id in synonyms:
            builder.add_concept(
                concept_id,
                label,
                synonyms.get(concept_id, ()),
            )
