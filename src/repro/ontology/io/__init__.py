"""Ontology file-format parsers.

Real deployments load SNOMED-CT (RF2 snapshot releases), UMLS (RRF pipe
files) or an OBO ontology such as the Gene Ontology; all three parsers
produce the same :class:`~repro.ontology.graph.Ontology`, so the synthetic
generator and the licensed data are interchangeable.  The CSV module is
the library's own simple interchange format (and round-trip test vehicle).
"""

from repro.ontology.io.csvio import load_csv, save_csv
from repro.ontology.io.obo import load_obo
from repro.ontology.io.rf2 import load_rf2
from repro.ontology.io.umls import load_umls

__all__ = ["load_rf2", "load_umls", "load_obo", "load_csv", "save_csv"]
