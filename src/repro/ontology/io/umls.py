"""UMLS Metathesaurus RRF parser (MRCONSO + MRREL).

Loads a concept hierarchy from the two pipe-delimited Rich Release Format
files the paper's dataset pipeline touches:

* ``MRCONSO.RRF`` — concept atoms.  We keep one concept per CUI; the
  first English preferred row supplies the label, further English strings
  become synonyms.
* ``MRREL.RRF`` — relationships.  Per UMLS documentation, ``REL`` states
  the relationship *of the second concept (CUI2) to the first (CUI1)*:
  ``PAR`` rows mean CUI2 is a parent of CUI1, ``CHD`` rows mean CUI2 is a
  child of CUI1.  Both orientations are honoured; when ``isa_only`` is
  set, rows additionally need ``RELA`` in {"isa", ""}.

UMLS subsets extracted per source vocabulary are frequently multi-rooted,
so ``add_virtual_root`` defaults to on.
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import ParseError
from repro.ontology.builder import OntologyBuilder
from repro.ontology.graph import Ontology

# MRCONSO.RRF column positions (2023 release layout).
_CONSO_CUI = 0
_CONSO_LAT = 1
_CONSO_ISPREF = 6
_CONSO_STR = 14

# MRREL.RRF column positions.
_REL_CUI1 = 0
_REL_REL = 3
_REL_CUI2 = 4
_REL_RELA = 7


def load_umls(mrconso_path: str | Path, mrrel_path: str | Path, *,
              language: str = "ENG", isa_only: bool = True,
              name: str = "UMLS",
              add_virtual_root: bool = True) -> Ontology:
    """Load a UMLS hierarchy from MRCONSO/MRREL."""
    builder = OntologyBuilder(name)
    known = _load_mrconso(builder, Path(mrconso_path), language)
    _load_mrrel(builder, Path(mrrel_path), known, isa_only)
    return builder.build(add_virtual_root=add_virtual_root)


def _split(line: str, path: Path, minimum: int, line_no: int) -> list[str]:
    fields = line.rstrip("\n").split("|")
    if len(fields) < minimum:
        raise ParseError(
            f"expected at least {minimum} fields, got {len(fields)}",
            path=str(path), line=line_no,
        )
    return fields


def _load_mrconso(builder: OntologyBuilder, path: Path,
                  language: str) -> set[str]:
    labels: dict[str, str] = {}
    synonyms: dict[str, list[str]] = {}
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            fields = _split(line, path, _CONSO_STR + 1, line_no)
            if fields[_CONSO_LAT] != language:
                continue
            cui = fields[_CONSO_CUI]
            term = fields[_CONSO_STR]
            preferred = fields[_CONSO_ISPREF] == "Y"
            if cui not in labels and preferred:
                labels[cui] = term
            elif cui in labels and term != labels[cui]:
                synonyms.setdefault(cui, []).append(term)
            elif cui not in labels:
                synonyms.setdefault(cui, []).append(term)
    known: set[str] = set(labels) | set(synonyms)
    for cui in known:
        label = labels.get(cui)
        extra = synonyms.get(cui, [])
        if label is None and extra:
            label, extra = extra[0], extra[1:]
        builder.add_concept(cui, label, extra)
    return known


def _load_mrrel(builder: OntologyBuilder, path: Path, known: set[str],
                isa_only: bool) -> None:
    seen: set[tuple[str, str]] = set()
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            fields = _split(line, path, _REL_RELA + 1, line_no)
            rel = fields[_REL_REL]
            rela = fields[_REL_RELA]
            if rel not in ("PAR", "CHD"):
                continue
            if isa_only and rela not in ("", "isa", "inverse_isa"):
                continue
            cui1, cui2 = fields[_REL_CUI1], fields[_REL_CUI2]
            if cui1 not in known or cui2 not in known:
                continue
            if rel == "PAR":
                parent, child = cui2, cui1
            else:
                parent, child = cui1, cui2
            if parent != child and (parent, child) not in seen:
                seen.add((parent, child))
                builder.add_edge(parent, child)
