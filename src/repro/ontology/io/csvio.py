"""Simple CSV interchange format for ontologies.

Two files — or one combined stream — describe an ontology:

* ``concepts.csv``: ``id,label,synonyms`` (synonyms ``;``-separated);
* ``edges.csv``: ``parent,child`` rows, in Dewey (insertion) order.

Because edge order determines Dewey components, :func:`save_csv` writes
children in their stored order and :func:`load_csv` preserves it, making
the pair a lossless round trip (asserted by the IO tests).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.exceptions import ParseError
from repro.ontology.builder import OntologyBuilder
from repro.ontology.graph import Ontology


def save_csv(ontology: Ontology, concepts_path: str | Path,
             edges_path: str | Path) -> None:
    """Write an ontology to the two-file CSV format."""
    with open(concepts_path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "label", "synonyms"])
        for concept_id in ontology.concepts():
            writer.writerow([
                concept_id,
                ontology.label(concept_id),
                ";".join(ontology.synonyms(concept_id)),
            ])
    with open(edges_path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["parent", "child"])
        for parent in ontology.concepts():
            for child in ontology.children(parent):
                writer.writerow([parent, child])


def load_csv(concepts_path: str | Path, edges_path: str | Path, *,
             name: str = "csv-ontology",
             add_virtual_root: bool = False) -> Ontology:
    """Load an ontology from the two-file CSV format."""
    builder = OntologyBuilder(name)
    with open(concepts_path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or header[:2] != ["id", "label"]:
            raise ParseError("concepts.csv must start with id,label[,synonyms]",
                             path=str(concepts_path))
        for row in reader:
            if not row:
                continue
            if len(row) < 2:
                raise ParseError("short concepts.csv row",
                                 path=str(concepts_path))
            synonyms = row[2].split(";") if len(row) > 2 and row[2] else ()
            builder.add_concept(row[0], row[1], synonyms)
    with open(edges_path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or header[:2] != ["parent", "child"]:
            raise ParseError("edges.csv must start with parent,child",
                             path=str(edges_path))
        for row in reader:
            if not row:
                continue
            if len(row) < 2:
                raise ParseError("short edges.csv row", path=str(edges_path))
            builder.add_edge(row[0], row[1])
    return builder.build(add_virtual_root=add_virtual_root)
