"""OBO flat-file parser (Gene Ontology and friends).

The paper motivates concept-based similarity beyond EMRs with the Gene
Ontology (Lord et al.), which ships in OBO format.  The parser handles the
subset of OBO that defines a hierarchy: ``[Term]`` stanzas with ``id``,
``name``, ``synonym`` and ``is_a`` tags, honouring ``is_obsolete``.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.exceptions import ParseError
from repro.ontology.builder import OntologyBuilder
from repro.ontology.graph import Ontology

_SYNONYM_RE = re.compile(r'^"(?P<text>.*)"')


def load_obo(path: str | Path, *, name: str | None = None,
             add_virtual_root: bool = True) -> Ontology:
    """Load the ``[Term]`` hierarchy of an OBO file."""
    path = Path(path)
    builder = OntologyBuilder(name or path.stem)
    edges: list[tuple[str, str]] = []
    term: dict[str, object] | None = None
    terms: list[dict[str, object]] = []

    def flush() -> None:
        nonlocal term
        if term is not None and not term.get("obsolete"):
            terms.append(term)
        term = None

    with open(path, encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.split("!")[0].strip()
            if not line:
                continue
            if line.startswith("["):
                flush()
                if line == "[Term]":
                    term = {"synonyms": []}
                continue
            if term is None:
                continue
            if ":" not in line:
                raise ParseError("malformed OBO tag line",
                                 path=str(path), line=line_no)
            tag, _colon, value = line.partition(":")
            value = value.strip()
            if tag == "id":
                term["id"] = value
            elif tag == "name":
                term["name"] = value
            elif tag == "is_a":
                term["parents"] = term.get("parents", [])
                term["parents"].append(value.split()[0])  # type: ignore
            elif tag == "synonym":
                match = _SYNONYM_RE.match(value)
                if match:
                    term["synonyms"].append(match.group("text"))  # type: ignore
            elif tag == "is_obsolete" and value.lower() == "true":
                term["obsolete"] = True
    flush()

    for entry in terms:
        if "id" not in entry:
            raise ParseError("OBO [Term] without id", path=str(path))
        builder.add_concept(
            str(entry["id"]),
            entry.get("name"),  # type: ignore[arg-type]
            entry["synonyms"],  # type: ignore[arg-type]
        )
        for parent in entry.get("parents", ()):  # type: ignore[union-attr]
            edges.append((str(parent), str(entry["id"])))
    known = {str(entry["id"]) for entry in terms}
    for parent, child in edges:
        if parent in known:
            builder.add_edge(parent, child)
    return builder.build(add_virtual_root=add_virtual_root)
