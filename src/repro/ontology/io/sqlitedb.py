"""SQLite-backed ontology storage (the paper's disk-based ontology index).

Section 6.1: "We have built an index of the ontology … Depending on the
collection and ontology sizes and memory availability, the indexes can be
memory or disk-based."  :class:`SQLiteOntology` is the disk-based option:
it subclasses :class:`~repro.ontology.graph.Ontology` but serves
children/parents/labels from SQLite with per-concept caching, so the
whole DAG never has to reside in RAM.  Every algorithm in the library —
Dewey labelling, valid-path BFS, DRC, kNDS — runs against it unchanged
(tested against the in-memory ontology for identical results).

Schema::

    concept(id TEXT PRIMARY KEY, label TEXT, synonyms TEXT)
    edge(parent TEXT, child TEXT, position INTEGER)   -- Dewey order
    meta(key TEXT PRIMARY KEY, value TEXT)            -- root id, name
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterator, Sequence
from pathlib import Path

from repro.exceptions import UnknownConceptError
from repro.ontology.graph import Ontology
from repro.types import ConceptId


def save_sqlite(ontology: Ontology, path: str | Path) -> None:
    """Persist a validated ontology into a SQLite database."""
    connection = sqlite3.connect(str(path))
    try:
        cursor = connection.cursor()
        cursor.executescript(
            """
            DROP TABLE IF EXISTS concept;
            DROP TABLE IF EXISTS edge;
            DROP TABLE IF EXISTS meta;
            CREATE TABLE concept (
                id TEXT PRIMARY KEY, label TEXT NOT NULL,
                synonyms TEXT NOT NULL
            );
            CREATE TABLE edge (
                parent TEXT NOT NULL, child TEXT NOT NULL,
                position INTEGER NOT NULL
            );
            CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
            """
        )
        cursor.executemany(
            "INSERT INTO concept VALUES (?, ?, ?)",
            ((concept_id, ontology.label(concept_id),
              "\x1f".join(ontology.synonyms(concept_id)))
             for concept_id in ontology.concepts()),
        )
        cursor.executemany(
            "INSERT INTO edge VALUES (?, ?, ?)",
            ((parent, child, position)
             for parent in ontology.concepts()
             for position, child in enumerate(ontology.children(parent),
                                              start=1)),
        )
        cursor.execute("INSERT INTO meta VALUES ('root', ?)",
                       (ontology.root,))
        cursor.execute("INSERT INTO meta VALUES ('name', ?)",
                       (ontology.name,))
        cursor.executescript(
            """
            CREATE INDEX idx_edge_parent ON edge (parent, position);
            CREATE INDEX idx_edge_child ON edge (child);
            """
        )
        connection.commit()
    finally:
        connection.close()


class SQLiteOntology(Ontology):
    """A read-only ontology served from SQLite with lazy caching.

    Drop-in compatible with :class:`~repro.ontology.graph.Ontology`:
    the structural accessors are overridden to fetch (and memoize) rows
    on demand.  Mutation is not supported — build with
    :func:`save_sqlite` and reopen.
    """

    def __init__(self, path: str | Path) -> None:
        super().__init__()
        self._connection = sqlite3.connect(str(path))
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = 'name'").fetchone()
        self.name = row[0] if row else "sqlite-ontology"
        root_row = self._connection.execute(
            "SELECT value FROM meta WHERE key = 'root'").fetchone()
        if root_row is None:
            raise UnknownConceptError("<missing root metadata>")
        self._root = root_row[0]
        self._size: int | None = None
        # Per-concept caches (the base-class dicts are reused as caches).
        self._children_cache: dict[ConceptId, list[ConceptId]] = {}
        self._parents_cache: dict[ConceptId, list[ConceptId]] = {}
        self._known: set[ConceptId] = set()

    # ------------------------------------------------------------------
    def _exists(self, concept_id: ConceptId) -> bool:
        if concept_id in self._known:
            return True
        row = self._connection.execute(
            "SELECT 1 FROM concept WHERE id = ?", (concept_id,)).fetchone()
        if row is not None:
            self._known.add(concept_id)
            return True
        return False

    def __contains__(self, concept_id: object) -> bool:
        return isinstance(concept_id, str) and self._exists(concept_id)

    def __len__(self) -> int:
        if self._size is None:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM concept").fetchone()
            self._size = int(row[0])
        return self._size

    def __iter__(self) -> Iterator[ConceptId]:
        return self.concepts()

    def concepts(self) -> Iterator[ConceptId]:
        rows = self._connection.execute("SELECT id FROM concept")
        return (row[0] for row in rows)

    def children(self, concept_id: ConceptId) -> Sequence[ConceptId]:
        cached = self._children_cache.get(concept_id)
        if cached is not None:
            return cached
        if not self._exists(concept_id):
            raise UnknownConceptError(concept_id)
        rows = self._connection.execute(
            "SELECT child FROM edge WHERE parent = ? ORDER BY position",
            (concept_id,),
        ).fetchall()
        children = [row[0] for row in rows]
        self._children_cache[concept_id] = children
        return children

    def parents(self, concept_id: ConceptId) -> Sequence[ConceptId]:
        cached = self._parents_cache.get(concept_id)
        if cached is not None:
            return cached
        if not self._exists(concept_id):
            raise UnknownConceptError(concept_id)
        rows = self._connection.execute(
            "SELECT parent FROM edge WHERE child = ?", (concept_id,),
        ).fetchall()
        parents = [row[0] for row in rows]
        self._parents_cache[concept_id] = parents
        return parents

    def child_component(self, parent: ConceptId, child: ConceptId) -> int:
        row = self._connection.execute(
            "SELECT position FROM edge WHERE parent = ? AND child = ?",
            (parent, child),
        ).fetchone()
        if row is None:
            raise UnknownConceptError(f"{parent} -> {child}")
        return int(row[0])

    def label(self, concept_id: ConceptId) -> str:
        row = self._connection.execute(
            "SELECT label FROM concept WHERE id = ?", (concept_id,),
        ).fetchone()
        if row is None:
            raise UnknownConceptError(concept_id)
        return row[0]

    def synonyms(self, concept_id: ConceptId) -> tuple[str, ...]:
        row = self._connection.execute(
            "SELECT synonyms FROM concept WHERE id = ?", (concept_id,),
        ).fetchone()
        if row is None:
            raise UnknownConceptError(concept_id)
        return tuple(part for part in row[0].split("\x1f") if part)

    def edge_count(self) -> int:
        row = self._connection.execute(
            "SELECT COUNT(*) FROM edge").fetchone()
        return int(row[0])

    def validate(self) -> None:
        """No-op: the stored ontology was validated before saving."""

    def depth(self, concept_id: ConceptId) -> int:
        # The base-class BFS materializes all depths once; acceptable for
        # the filter use case, overridden here only to ensure the lazy
        # caches are bypassed consistently.
        if self._depth_cache is None:
            self._depth_cache = {}
            frontier = [self.root]
            self._depth_cache[self.root] = 0
            while frontier:
                next_frontier = []
                for node in frontier:
                    node_depth = self._depth_cache[node]
                    for child in self.children(node):
                        if child not in self._depth_cache:
                            self._depth_cache[child] = node_depth + 1
                            next_frontier.append(child)
                frontier = next_frontier
        try:
            return self._depth_cache[concept_id]
        except KeyError:
            raise UnknownConceptError(concept_id) from None

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "SQLiteOntology":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
