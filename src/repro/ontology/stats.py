"""Ontology shape statistics (the figures reported in Section 6.1).

The paper characterizes SNOMED-CT by four numbers — concept count, average
children per node, average Dewey paths per concept and average path length —
because those are exactly the quantities its complexity analysis depends on.
:func:`compute_stats` reproduces that characterization for any ontology, so
a synthetic DAG from :mod:`repro.ontology.generators` can be checked against
the published SNOMED shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ontology.dewey import DeweyIndex
from repro.ontology.graph import Ontology


@dataclass(frozen=True)
class OntologyStats:
    """Shape summary of an ontology DAG."""

    num_concepts: int
    num_edges: int
    avg_children: float
    """Mean number of children over all concepts (SNOMED-CT: 4.53)."""
    num_leaves: int
    max_depth: int
    """Maximum over concepts of the *minimum* root distance."""
    avg_paths_per_concept: float
    """Mean number of Dewey addresses per concept (SNOMED-CT: 9.78)."""
    avg_path_length: float
    """Mean length of a Dewey address (SNOMED-CT: 14.1)."""
    paths_sampled: int
    """How many concepts the two path statistics were estimated from."""

    def as_rows(self) -> list[tuple[str, str]]:
        """Key/value rows for tabular reporting."""
        return [
            ("Total Concepts", f"{self.num_concepts:,}"),
            ("Total Edges", f"{self.num_edges:,}"),
            ("Avg. Children/Node", f"{self.avg_children:.2f}"),
            ("Leaves", f"{self.num_leaves:,}"),
            ("Max Depth", str(self.max_depth)),
            ("Avg. Paths/Concept", f"{self.avg_paths_per_concept:.2f}"),
            ("Avg. Path Length", f"{self.avg_path_length:.1f}"),
        ]


def compute_stats(ontology: Ontology, *, path_sample: int = 500,
                  seed: int = 0) -> OntologyStats:
    """Compute :class:`OntologyStats` for an ontology.

    Path statistics are estimated from ``path_sample`` uniformly sampled
    concepts (enumeration over every concept would materialize the whole
    Dewey cone, which for large DAGs is the one genuinely expensive shape
    statistic).  Pass ``path_sample >= len(ontology)`` for exact values on
    small ontologies.
    """
    concepts = list(ontology.concepts())
    num_concepts = len(concepts)
    num_edges = ontology.edge_count()
    num_leaves = sum(1 for cid in concepts if ontology.is_leaf(cid))
    max_depth = max(ontology.depth(cid) for cid in concepts)

    if path_sample >= num_concepts:
        sampled = concepts
    else:
        rng = random.Random(seed)
        sampled = rng.sample(concepts, path_sample)
    dewey = DeweyIndex(ontology)
    total_paths = 0
    total_length = 0
    for concept_id in sampled:
        addresses = dewey.addresses(concept_id)
        total_paths += len(addresses)
        total_length += sum(len(address) for address in addresses)
    avg_paths = total_paths / len(sampled) if sampled else 0.0
    avg_length = total_length / total_paths if total_paths else 0.0

    return OntologyStats(
        num_concepts=num_concepts,
        num_edges=num_edges,
        avg_children=num_edges / num_concepts if num_concepts else 0.0,
        num_leaves=num_leaves,
        max_depth=max_depth,
        avg_paths_per_concept=avg_paths,
        avg_path_length=avg_length,
        paths_sampled=len(sampled),
    )
