"""Fluent construction of :class:`~repro.ontology.graph.Ontology` instances.

The builder separates the mutable construction phase from the read-only
query phase: concepts and is-a edges are declared in any order, forward
references are allowed, and :meth:`OntologyBuilder.build` resolves them,
normalizes multiple roots (optionally) and validates the DAG invariants.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import RootError, UnknownConceptError
from repro.ontology.graph import Ontology
from repro.types import ConceptId

VIRTUAL_ROOT_ID = "__root__"
"""Concept id used when :meth:`OntologyBuilder.build` must add a root."""


class OntologyBuilder:
    """Incrementally assemble an ontology DAG.

    Example
    -------
    >>> builder = OntologyBuilder("toy")
    >>> _ = builder.add_concept("A").add_concept("B").add_concept("C")
    >>> _ = builder.add_edge("A", "B").add_edge("A", "C")
    >>> ontology = builder.build()
    >>> ontology.root
    'A'

    Edge insertion order matters: the first child added under a parent gets
    Dewey component 1, the second component 2, and so on (Section 3.1).
    """

    def __init__(self, name: str = "ontology") -> None:
        self._name = name
        self._concepts: dict[ConceptId, tuple[str | None, tuple[str, ...]]] = {}
        self._edges: list[tuple[ConceptId, ConceptId]] = []
        self._allow_forward_refs = True

    def add_concept(self, concept_id: ConceptId, label: str | None = None,
                    synonyms: Iterable[str] = ()) -> "OntologyBuilder":
        """Declare a concept; repeat declarations update label/synonyms."""
        self._concepts[concept_id] = (label, tuple(synonyms))
        return self

    def add_edge(self, parent: ConceptId, child: ConceptId) -> "OntologyBuilder":
        """Declare an is-a edge from ``parent`` to ``child``.

        Both endpoints may be declared later; undeclared endpoints raise at
        :meth:`build` time.
        """
        self._edges.append((parent, child))
        return self

    def add_hierarchy(self, parent: ConceptId,
                      children: Iterable[ConceptId]) -> "OntologyBuilder":
        """Declare several children of one parent, in Dewey order."""
        for child in children:
            self.add_edge(parent, child)
        return self

    def build(self, *, add_virtual_root: bool = False,
              validate: bool = True) -> Ontology:
        """Materialize and validate the ontology.

        Parameters
        ----------
        add_virtual_root:
            If true and the declared DAG has several parentless concepts,
            connect them all under a synthetic root named
            :data:`VIRTUAL_ROOT_ID`.  This is how multi-rooted inputs (e.g.
            a UMLS subset spanning source vocabularies) are normalized to
            the single-rooted form the algorithms require.
        validate:
            Skip validation only when the caller will mutate further.
        """
        ontology = Ontology(self._name)
        for concept_id, (label, synonyms) in self._concepts.items():
            ontology._add_concept(concept_id, label, synonyms)
        for parent, child in self._edges:
            if parent not in ontology or child not in ontology:
                missing = parent if parent not in ontology else child
                raise UnknownConceptError(missing)
            ontology._add_edge(parent, child)
        if add_virtual_root:
            self._attach_virtual_root(ontology)
        if validate:
            ontology.validate()
        return ontology

    @staticmethod
    def _attach_virtual_root(ontology: Ontology) -> None:
        roots = [cid for cid in ontology.concepts() if not ontology.parents(cid)]
        if len(roots) <= 1:
            return
        if VIRTUAL_ROOT_ID in ontology:
            raise RootError(
                f"cannot add virtual root: {VIRTUAL_ROOT_ID!r} already exists"
            )
        ontology._add_concept(VIRTUAL_ROOT_ID, "virtual root")
        for root in roots:
            ontology._add_edge(VIRTUAL_ROOT_ID, root)
