"""The ontology DAG model (Section 3.1 of the paper).

An :class:`Ontology` is a single-rooted directed acyclic graph whose nodes
are concepts and whose edges are is-a (or other hierarchical) relationships
pointing from parent to child.  Children of each parent are kept in edge
insertion order; the 1-based position of a child within its parent's child
list is the Dewey component of that edge, so the graph structure alone
determines every Dewey path address.

The class is deliberately read-mostly: concepts and edges are added through
:class:`repro.ontology.builder.OntologyBuilder` (or the mutating ``_add_*``
methods it uses), after which :meth:`Ontology.validate` checks the DAG
invariants once.  Query-time algorithms only ever read.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import (
    CycleError,
    DeweyError,
    DuplicateConceptError,
    InvariantError,
    RootError,
    UnknownConceptError,
)
from repro.types import ConceptId, DeweyAddress


class Ontology:
    """A single-rooted concept DAG with insertion-ordered children.

    Parameters
    ----------
    name:
        Human-readable label for the ontology (e.g. ``"SNOMED-CT"``).

    Notes
    -----
    Instances are usually produced by
    :class:`repro.ontology.builder.OntologyBuilder`, a file parser from
    :mod:`repro.ontology.io`, or the synthetic generator
    :func:`repro.ontology.generators.snomed_like`.
    """

    def __init__(self, name: str = "ontology") -> None:
        self.name = name
        self._children: dict[ConceptId, list[ConceptId]] = {}
        self._parents: dict[ConceptId, list[ConceptId]] = {}
        # 1-based Dewey component of the (parent, child) edge.
        self._child_index: dict[tuple[ConceptId, ConceptId], int] = {}
        self._labels: dict[ConceptId, str] = {}
        self._synonyms: dict[ConceptId, tuple[str, ...]] = {}
        self._root: ConceptId | None = None
        self._depth_cache: dict[ConceptId, int] | None = None

    # ------------------------------------------------------------------
    # Construction (used by OntologyBuilder and parsers)
    # ------------------------------------------------------------------
    def _add_concept(self, concept_id: ConceptId, label: str | None = None,
                     synonyms: Iterable[str] = ()) -> None:
        if concept_id in self._children:
            raise DuplicateConceptError(concept_id)
        self._children[concept_id] = []
        self._parents[concept_id] = []
        self._labels[concept_id] = label if label is not None else concept_id
        self._synonyms[concept_id] = tuple(synonyms)
        self._depth_cache = None

    def _add_edge(self, parent: ConceptId, child: ConceptId) -> None:
        if parent not in self._children:
            raise UnknownConceptError(parent)
        if child not in self._children:
            raise UnknownConceptError(child)
        if (parent, child) in self._child_index:
            return  # idempotent: is-a edges carry no multiplicity
        self._children[parent].append(child)
        self._parents[child].append(parent)
        self._child_index[(parent, child)] = len(self._children[parent])
        self._depth_cache = None

    def validate(self) -> None:
        """Check the DAG invariants: exactly one root and no cycles.

        Raises
        ------
        RootError
            If zero or more than one concept has no parents.
        CycleError
            If the edge set contains a directed cycle.
        """
        roots = [cid for cid, parents in self._parents.items() if not parents]
        if len(roots) != 1:
            raise RootError(
                f"ontology must have exactly one root, found {len(roots)}: "
                f"{sorted(roots)[:5]}"
            )
        self._root = roots[0]
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        # Kahn's algorithm; any nodes left over participate in a cycle.
        indegree = {cid: len(parents) for cid, parents in self._parents.items()}
        queue = [cid for cid, degree in indegree.items() if degree == 0]
        visited = 0
        while queue:
            node = queue.pop()
            visited += 1
            for child in self._children[node]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        if visited != len(self._children):
            remaining = [cid for cid, degree in indegree.items() if degree > 0]
            cycle = self._find_cycle(remaining)
            raise CycleError(cycle)

    def _find_cycle(self, candidates: Sequence[ConceptId]) -> list[ConceptId]:
        # Walk parent pointers within the cyclic core until a repeat.
        candidate_set = set(candidates)
        node = candidates[0]
        seen: list[ConceptId] = []
        positions: dict[ConceptId, int] = {}
        while node not in positions:
            positions[node] = len(seen)
            seen.append(node)
            node = next(p for p in self._parents[node] if p in candidate_set)
        return seen[positions[node]:] + [node]

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def root(self) -> ConceptId:
        """The unique concept without parents.

        :meth:`validate` must have been called first.
        """
        if self._root is None:
            self.validate()
        if self._root is None:
            raise InvariantError("validate() returned without fixing a root")
        return self._root

    def __contains__(self, concept_id: object) -> bool:
        return concept_id in self._children

    def __len__(self) -> int:
        return len(self._children)

    def __iter__(self) -> Iterator[ConceptId]:
        return iter(self._children)

    def concepts(self) -> Iterator[ConceptId]:
        """Iterate over all concept identifiers."""
        return iter(self._children)

    def children(self, concept_id: ConceptId) -> Sequence[ConceptId]:
        """Children of a concept, in edge insertion (Dewey) order."""
        try:
            return self._children[concept_id]
        except KeyError:
            raise UnknownConceptError(concept_id) from None

    def parents(self, concept_id: ConceptId) -> Sequence[ConceptId]:
        """Parents of a concept, in edge insertion order."""
        try:
            return self._parents[concept_id]
        except KeyError:
            raise UnknownConceptError(concept_id) from None

    def neighbors(self, concept_id: ConceptId) -> Iterator[ConceptId]:
        """Parents followed by children (the kNDS expansion order)."""
        yield from self.parents(concept_id)
        yield from self.children(concept_id)

    def label(self, concept_id: ConceptId) -> str:
        """Preferred human-readable name of a concept."""
        try:
            return self._labels[concept_id]
        except KeyError:
            raise UnknownConceptError(concept_id) from None

    def synonyms(self, concept_id: ConceptId) -> tuple[str, ...]:
        """Synonym terms of a concept (possibly empty)."""
        try:
            return self._synonyms[concept_id]
        except KeyError:
            raise UnknownConceptError(concept_id) from None

    def child_component(self, parent: ConceptId, child: ConceptId) -> int:
        """The 1-based Dewey component of the ``parent -> child`` edge."""
        try:
            return self._child_index[(parent, child)]
        except KeyError:
            raise UnknownConceptError(f"{parent} -> {child}") from None

    def is_leaf(self, concept_id: ConceptId) -> bool:
        """True if the concept has no children."""
        return not self.children(concept_id)

    def edge_count(self) -> int:
        """Total number of is-a edges."""
        return len(self._child_index)

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def depth(self, concept_id: ConceptId) -> int:
        """Minimum number of edges from the root to the concept.

        The paper's depth-threshold filter (Section 6.1) excludes concepts
        whose depth is below a cutoff; minimum depth is the natural choice
        because a concept reachable through a short path is generic no
        matter how long its other paths are.
        """
        if self._depth_cache is None:
            self._depth_cache = self._compute_depths()
        try:
            return self._depth_cache[concept_id]
        except KeyError:
            raise UnknownConceptError(concept_id) from None

    def _compute_depths(self) -> dict[ConceptId, int]:
        depths = {self.root: 0}
        frontier = [self.root]
        while frontier:
            next_frontier: list[ConceptId] = []
            for node in frontier:
                child_depth = depths[node] + 1
                for child in self._children[node]:
                    if child not in depths:
                        depths[child] = child_depth
                        next_frontier.append(child)
            frontier = next_frontier
        return depths

    def topological_order(self) -> list[ConceptId]:
        """All concepts in a parents-before-children order."""
        indegree = {cid: len(self.parents(cid)) for cid in self.concepts()}
        order: list[ConceptId] = []
        queue = [cid for cid, degree in indegree.items() if degree == 0]
        while queue:
            node = queue.pop()
            order.append(node)
            for child in self.children(node):
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        return order

    def ancestors(self, concept_id: ConceptId) -> set[ConceptId]:
        """All strict ancestors of a concept."""
        result: set[ConceptId] = set()
        stack = list(self.parents(concept_id))
        while stack:
            node = stack.pop()
            if node not in result:
                result.add(node)
                stack.extend(self.parents(node))
        return result

    def descendants(self, concept_id: ConceptId) -> set[ConceptId]:
        """All strict descendants of a concept."""
        result: set[ConceptId] = set()
        stack = list(self.children(concept_id))
        while stack:
            node = stack.pop()
            if node not in result:
                result.add(node)
                stack.extend(self.children(node))
        return result

    # ------------------------------------------------------------------
    # Dewey resolution
    # ------------------------------------------------------------------
    def resolve_dewey(self, address: DeweyAddress) -> ConceptId:
        """Map a Dewey address back to the concept it denotes.

        This is the ``FindNodeByDewey`` primitive of the paper's InsertPath
        function: it walks from the root, taking the child at each 1-based
        component.

        Raises
        ------
        DeweyError
            If a component is out of range for the node reached so far.
        """
        node = self.root
        for position, component in enumerate(address):
            children = self.children(node)
            if not 1 <= component <= len(children):
                raise DeweyError(
                    f"address {address!r} invalid at position {position}: "
                    f"{node!r} has {len(children)} children"
                )
            node = children[component - 1]
        return node

    def label_map(self) -> Mapping[ConceptId, str]:
        """Read-only view of all preferred names."""
        return dict(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Ontology {self.name!r}: {len(self._children)} concepts, "
            f"{self.edge_count()} edges>"
        )
