"""Load generator for the query service: build workloads, drive HTTP.

Two halves:

* :func:`mixed_workload` turns a corpus into a deterministic list of
  :class:`LoadQuery` requests (mostly RDS concept queries with a
  configurable fraction of SDS document queries), reusing the seeded
  generators from :mod:`repro.bench.workloads` so bench scenarios, tests
  and the CI smoke job all replay the same traffic for a given seed.
* :func:`run_load` fires a workload at a live server from ``threads``
  concurrent client threads (plain :mod:`http.client`, keep-alive per
  thread) and returns a :class:`LoadReport` of status counts, latencies
  and transport errors.

The report deliberately separates *HTTP* status codes (a 429 under
overload is the service behaving correctly) from *transport* errors
(connection refused/reset — the service misbehaving), which is exactly
the distinction the acceptance criteria gate on.

Each request carries a W3C ``traceparent`` header with a deterministic
trace id (a function of the worker index and request sequence, never of
wall clock), sampled client-side at ``trace_sample_rate`` with the same
:func:`repro.obs.tracing.head_sample` rule the server uses — so a bench
replay produces the same sampled-span population every run.
``LoadReport.traced`` counts responses that echoed the trace context
back.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.corpus.collection import DocumentCollection
from repro.bench.workloads import random_concept_queries, sample_documents
from repro.obs.tracing import (SpanContext, TRACEPARENT_HEADER,
                               format_traceparent, head_sample)

_TRACE_ID_BASE = 0x1D << 120
"""High bits marking loadgen-minted trace ids (keeps them non-zero)."""

_SEQUENCE_MIX = 0x9E3779B97F4A7C15
"""Odd multiplier spreading sequence numbers over the sampling domain.

Head sampling reads the trace id's low 56 bits, so raw sequence numbers
(1, 2, 3, ...) would all land under any non-zero rate; the fixed-point
golden-ratio mix gives each request an id that is still a pure function
of ``(worker, sequence)`` but uniformly spread, so ``sample_rate=0.5``
really samples about half the workload — deterministically."""


@dataclass(frozen=True)
class LoadQuery:
    """One request in a workload: target ``kind`` plus its JSON payload."""

    kind: str
    payload: dict[str, Any]

    @property
    def path(self) -> str:
        """The endpoint path this query is POSTed to."""
        return f"/search/{self.kind}"


def mixed_workload(collection: DocumentCollection, *, count: int = 50,
                   nq: int = 3, k: int = 10, seed: int = 0,
                   sds_fraction: float = 0.25) -> list[LoadQuery]:
    """Deterministic mixed RDS/SDS workload drawn from ``collection``.

    ``sds_fraction`` of the ``count`` requests (rounded down) are SDS
    queries over random existing documents; the rest are RDS queries of
    ``nq`` random concepts.  The two kinds are interleaved evenly so a
    multi-threaded replay mixes them from the start.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if not 0.0 <= sds_fraction <= 1.0:
        raise ValueError(
            f"sds_fraction must be in [0, 1], got {sds_fraction}")
    n_sds = int(count * sds_fraction)
    n_rds = count - n_sds
    queries: list[LoadQuery] = []
    for concepts in random_concept_queries(collection, nq=nq,
                                           count=n_rds, seed=seed):
        queries.append(LoadQuery(
            "rds", {"concepts": list(concepts), "k": k}))
    for document in sample_documents(collection, count=n_sds,
                                     seed=seed + 1):
        queries.append(LoadQuery(
            "sds", {"doc_id": document.doc_id, "k": k}))
    # Round-robin interleave RDS and SDS instead of two blocks.
    rds = [q for q in queries if q.kind == "rds"]
    sds = [q for q in queries if q.kind == "sds"]
    mixed: list[LoadQuery] = []
    stride = max(1, len(rds) // (len(sds) + 1))
    while rds or sds:
        mixed.extend(rds[:stride])
        del rds[:stride]
        if sds:
            mixed.append(sds.pop(0))
    return mixed


@dataclass
class LoadReport:
    """Aggregate outcome of one :func:`run_load` run."""

    statuses: Counter[int] = field(default_factory=Counter)
    latencies: list[float] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    traced: int = 0

    @property
    def total(self) -> int:
        """Requests that produced an HTTP response."""
        return sum(self.statuses.values())

    def count(self, *statuses: int) -> int:
        """Responses with any of the given status codes."""
        return sum(self.statuses.get(status, 0) for status in statuses)

    @property
    def server_errors(self) -> int:
        """Responses in the 5xx range (500 means a service bug)."""
        return sum(count for status, count in self.statuses.items()
                   if status >= 500)

    def percentile(self, fraction: float) -> float:
        """Latency percentile in seconds (0 when nothing succeeded)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1,
                    int(fraction * (len(ordered) - 1) + 0.5))
        return ordered[index]

    def merge(self, other: "LoadReport") -> None:
        """Fold another report (from a worker thread) into this one."""
        self.statuses.update(other.statuses)
        self.latencies.extend(other.latencies)
        self.errors.extend(other.errors)
        self.traced += other.traced


def client_trace_context(worker: int, sequence: int, *,
                         sample_rate: float = 1.0) -> SpanContext:
    """The deterministic trace context loadgen sends for one request.

    The trace id encodes the worker index and request sequence under a
    fixed prefix, so a replay mints identical ids — and, through
    :func:`repro.obs.tracing.head_sample`, identical sampling verdicts —
    every run.  Exposed so bench scenarios can predict exactly which
    requests the server will collect spans for.
    """
    low = ((sequence + 1) * _SEQUENCE_MIX) % 2**64
    trace_id = _TRACE_ID_BASE | (worker << 64) | low
    return SpanContext(trace_id=trace_id, span_id=sequence + 1,
                       sampled=head_sample(trace_id, sample_rate))


def run_load(address: tuple[str, int], workload: list[LoadQuery], *,
             threads: int = 4, repeat: int = 1, timeout: float = 30.0,
             trace_sample_rate: float | None = 1.0) -> LoadReport:
    """Replay ``workload`` against ``address`` from concurrent threads.

    Each thread opens one keep-alive connection and walks its share of
    the workload ``repeat`` times.  Transport-level failures are
    recorded in ``report.errors`` rather than raised, so a shedding or
    draining server still yields a complete report.

    ``trace_sample_rate`` drives the ``traceparent`` header each request
    carries (deterministic ids, client-side head sampling); ``None``
    disables the header entirely.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    shards = [workload[index::threads] for index in range(threads)]
    reports = [LoadReport() for _ in range(threads)]
    workers = [
        threading.Thread(
            target=_drive, name=f"repro-loadgen-{index}",
            args=(address, shard, repeat, timeout, reports[index],
                  index, trace_sample_rate))
        for index, shard in enumerate(shards)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    merged = LoadReport()
    for report in reports:
        merged.merge(report)
    return merged


def _drive(address: tuple[str, int], queries: list[LoadQuery],
           repeat: int, timeout: float, report: LoadReport,
           worker: int, trace_sample_rate: float | None) -> None:
    """Worker body: one connection, ``repeat`` passes over ``queries``."""
    host, port = address
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    sequence = 0
    try:
        for _ in range(repeat):
            for query in queries:
                headers: dict[str, str] = {}
                context = None
                if trace_sample_rate is not None:
                    context = client_trace_context(
                        worker, sequence, sample_rate=trace_sample_rate)
                    headers[TRACEPARENT_HEADER] = format_traceparent(
                        context)
                sequence += 1
                started = time.perf_counter()
                try:
                    status, echoed = _post(connection, query.path,
                                           query.payload, headers)
                except (OSError, http.client.HTTPException) as error:
                    report.errors.append(f"{query.path}: {error!r}")
                    connection.close()  # reconnect on the next request
                    continue
                report.statuses[status] += 1
                report.latencies.append(time.perf_counter() - started)
                if context is not None and echoed is not None \
                        and context.trace_id_hex in echoed:
                    report.traced += 1
    finally:
        connection.close()


def _post(connection: http.client.HTTPConnection, path: str,
          payload: dict[str, Any],
          headers: dict[str, str] | None = None) -> tuple[int, str | None]:
    """POST JSON, drain the body, return (status, echoed traceparent)."""
    body = json.dumps(payload)
    all_headers = {"Content-Type": "application/json"}
    if headers:
        all_headers.update(headers)
    connection.request("POST", path, body=body, headers=all_headers)
    response = connection.getresponse()
    response.read()
    return response.status, response.getheader(TRACEPARENT_HEADER)
