"""Stdlib-only asyncio HTTP/JSON front end for the query service.

A deliberately small HTTP/1.1 server (``asyncio.start_server`` + a
hand-rolled request reader — no third-party web framework, matching the
repo's stdlib-only rule) exposing the serving API:

=======================  ======  ===========================================
endpoint                 method  body / behaviour
=======================  ======  ===========================================
``/healthz``             GET     liveness + drain state (503 while draining)
``/metrics``             GET     Prometheus text from the service registry
``/search/rds``          POST    ``{"concepts": [...], "k": 10, ...}``
``/search/rds:batch``    POST    ``{"queries": [[...], ...], "k": 10, ...}``
``/search/sds``          POST    ``{"doc_id": "..."}`` or ``{"concepts": …}``
``/search/sds:batch``    POST    ``{"queries": ["doc", [...], ...], ...}``
``/explain``             POST    ``{"doc_id": "...", "concepts": [...]}``
``/debug/traces``        GET     flight-recorder captures (``?id=`` for one)
``/debug/requests``      GET     metadata ring of recent requests
``/debug/vars``          GET     metrics snapshot + tracer/recorder state
``/debug/slo``           GET     per-endpoint SLO + burn-rate snapshot
``/debug/profile``       GET     sampling-profiler stacks (``?seconds=N``)
=======================  ======  ===========================================

The search endpoints accept an EXPLAIN ANALYZE opt-in — ``"analyze":
true`` in the JSON body or ``?explain=analyze`` on the URL — which
bypasses the result cache and attaches the query's deterministic
:class:`~repro.obs.profiling.QueryCostProfile` to the response (and to
the flight-recorder record when the request is captured).

Overload semantics (see ``docs/SERVING.md``): admission-control refusals
map to **429** with a ``Retry-After`` header, drain refusals to **503**,
deadline misses to **504**, unknown documents to **404**, malformed
requests and taxonomy errors to **400**; only genuinely unexpected
exceptions produce a **500** (and increment ``serve.errors``).

Every request runs under an ``http.request`` root span: an incoming W3C
``traceparent`` header continues the caller's trace (malformed headers
fall back to a fresh root — never an error), the response carries the
trace context back in its own ``traceparent`` header plus an
``x-request-id``, and a structured access-log line correlates the two
with the outcome.  Finished requests feed the service's
:class:`~repro.obs.slo.SLOTracker` and — when slow or failed — the
:class:`~repro.obs.recorder.FlightRecorder` behind ``/debug/traces``.

Shutdown is graceful: :func:`run_server` installs SIGTERM/SIGINT
handlers that stop accepting connections, drain in-flight queries
through the service, then return.  :class:`ServerHandle` runs the same
loop on a daemon thread for tests, the load generator and the CI smoke
job.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import signal
import threading
import time
from typing import Any, Final
from urllib.parse import parse_qsl

from repro.exceptions import (CorpusError, QueryTimeoutError, ReproError,
                              ServeError, ServiceClosedError,
                              ServiceOverloadedError, ShardError,
                              UnknownDocumentError)
from repro.obs.logging import get_logger, log_context
from repro.obs.profiling import StatisticalProfiler
from repro.obs.recorder import RequestRecord
from repro.obs.tracing import (SpanContext, TRACEPARENT_HEADER, Tracer,
                               parse_traceparent)
from repro.serve.service import QueryService, ServeResult

_LOG = get_logger("serve.http")
_ACCESS = get_logger("serve.access")

_MAX_HEADERS = 100
_MAX_BODY_BYTES = 1 << 20  # 1 MiB of JSON is far beyond any sane query
_MAX_BATCH = 64  # queries per /search/*:batch request (one admission slot)
_MAX_PROFILE_SECONDS = 30.0  # /debug/profile?seconds=N one-shot ceiling

_REASONS: Final[dict[int, str]] = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class _BadRequest(ServeError):
    """A request the HTTP layer could not parse (always answered 400)."""


class _Response:
    """One rendered HTTP response: status, extra headers, body bytes."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, body: bytes,
                 content_type: str = "application/json",
                 headers: dict[str, str] | None = None) -> None:
        self.status = status
        self.headers = {"Content-Type": content_type}
        if headers:
            self.headers.update(headers)
        self.body = body


def _json_response(status: int, payload: dict[str, Any],
                   headers: dict[str, str] | None = None) -> _Response:
    body = (json.dumps(payload) + "\n").encode("utf-8")
    return _Response(status, body, headers=headers)


def _error_payload(status: int, error: str, message: str) -> dict[str, Any]:
    return {"error": error, "message": message, "status": status}


class QueryServer:
    """The asyncio HTTP server wrapping one :class:`QueryService`.

    Create, ``await start()``, and the server accepts connections on
    ``address`` (``port=0`` picks a free port).  ``await stop()`` runs
    the graceful-drain sequence.  :func:`run_server` and
    :class:`ServerHandle` wrap this class for the CLI and for tests.
    """

    def __init__(self, service: QueryService, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.Server | None = None
        self._started_at = time.perf_counter()
        self._request_ids = itertools.count(1)
        registry = service.obs.metrics
        self._errors = registry.counter(
            "serve.errors", "Requests answered with HTTP 500")
        self._responses = registry.counter(
            "serve.responses", "HTTP responses sent")

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ServeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockets = self._server.sockets
        if sockets:
            self.port = sockets[0].getsockname()[1]
        _LOG.info("listening", extra={"host": self.host, "port": self.port})

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        return (self.host, self.port)

    async def stop(self, drain_seconds: float | None = None) -> None:
        """Graceful shutdown: stop accepting, drain, close the pool."""
        server = self._server
        if server is None:
            return
        self._server = None
        self.service.begin_drain()
        server.close()
        await server.wait_closed()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.service.close(drain_seconds))
        _LOG.info("stopped", extra={"host": self.host, "port": self.port})

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as error:
                    await self._write(writer, _json_response(
                        400, _error_payload(400, "bad_request",
                                            str(error))), close=True)
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                keep_alive = request.headers.get(
                    "connection", "keep-alive").lower() != "close"
                await self._write(writer, response, close=not keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - platform
                pass

    async def _write(self, writer: asyncio.StreamWriter,
                     response: _Response, *, close: bool) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        lines = [f"HTTP/1.1 {response.status} {reason}"]
        headers = dict(response.headers)
        headers["Content-Length"] = str(len(response.body))
        headers["Connection"] = "close" if close else "keep-alive"
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + response.body)
        self._responses.inc()
        await writer.drain()

    # ------------------------------------------------------------------
    async def _dispatch(self, request: "_Request") -> _Response:
        """Trace, route, log and account one request.

        Opens the ``http.request`` root span (continuing the caller's
        trace when the request carries a valid ``traceparent``; starting
        a fresh root otherwise), binds the correlation ids into the log
        context for everything underneath, then hands the outcome to the
        SLO tracker and the flight recorder and emits the access-log
        line.
        """
        service = self.service
        tracer = service.obs.tracer
        parent = parse_traceparent(request.headers.get(TRACEPARENT_HEADER))
        request_id = f"req-{next(self._request_ids):08d}"
        started = time.perf_counter()
        context: SpanContext | None = None
        with tracer.span("http.request", parent=parent,
                         method=request.method, path=request.path) as span:
            context = span.context
            bound = {"request_id": request_id}
            if context is not None:
                bound["trace_id"] = context.trace_id_hex
            with log_context(**bound):
                response = await self._route(request)
            span.set_attribute("status", response.status)
        seconds = time.perf_counter() - started
        response.headers.setdefault("x-request-id", request_id)
        if context is not None:
            response.headers.setdefault(
                TRACEPARENT_HEADER, context.traceparent)
        cached = request.meta.get("cached")
        _ACCESS.info("request", extra={
            "method": request.method,
            "path": request.path,
            "status": response.status,
            "seconds": round(seconds, 6),
            "cached": cached,
            "request_id": request_id,
            "trace_id": context.trace_id_hex if context else None,
        })
        service.slo.observe(request.path, response.status, seconds)
        record = RequestRecord(
            request_id=request_id, method=request.method,
            path=request.path, status=response.status, seconds=seconds,
            trace_id=context.trace_id_hex if context else None,
            sampled=context.sampled if context else False,
            cached=cached,
            cost_profile=request.meta.get("cost_profile"))
        spans = None
        if context is not None and context.sampled:
            trace_id = context.trace_id
            spans = lambda: tracer.take_trace(trace_id)  # noqa: E731
        service.recorder.observe(record, spans)
        return response

    async def _route(self, request: "_Request") -> _Response:
        """Map one request to its handler; the exception→status boundary."""
        try:
            route = _ROUTES.get(request.path)
            if route is None:
                return _json_response(404, _error_payload(
                    404, "not_found", f"no route for {request.path}"))
            method, handler_name = route
            if request.method != method:
                return _json_response(405, _error_payload(
                    405, "method_not_allowed",
                    f"{request.path} expects {method}"))
            handler = getattr(self, handler_name)
            response: _Response = await handler(request)
            return response
        except ServiceOverloadedError as error:
            return _json_response(
                429, _error_payload(429, "overloaded", str(error)),
                headers={"Retry-After": _format_retry(error.retry_after)})
        except ServiceClosedError as error:
            return _json_response(
                503, _error_payload(503, "draining", str(error)),
                headers={"Retry-After": _format_retry(
                    self.service.config.retry_after_seconds)})
        except QueryTimeoutError as error:
            return _json_response(
                504, _error_payload(504, "deadline_exceeded", str(error)))
        except ShardError as error:
            # A shard worker stayed down through respawn-and-retry: the
            # answer would be missing a partition, so fail loudly and
            # retryably rather than serve a partial ranking.
            return _json_response(
                503, _error_payload(503, "shard_unavailable", str(error)),
                headers={"Retry-After": _format_retry(
                    self.service.config.retry_after_seconds)})
        except UnknownDocumentError as error:
            return _json_response(
                404, _error_payload(404, "unknown_document", str(error)))
        except _BadRequest as error:
            return _json_response(
                400, _error_payload(400, "bad_request", str(error)))
        except ReproError as error:
            return _json_response(
                400, _error_payload(400, type(error).__name__, str(error)))
        except Exception as error:  # noqa: BLE001 - the 500 boundary
            self._errors.inc()
            _LOG.error("internal error",
                       extra={"path": request.path, "error": repr(error)})
            return _json_response(
                500, _error_payload(500, "internal", repr(error)))

    # -- endpoint handlers ----------------------------------------------
    async def _handle_healthz(self, request: "_Request") -> _Response:
        """``GET /healthz`` — liveness, drain state, corpus summary.

        On a sharded engine the payload also aggregates per-worker
        health.  A dead worker degrades the status (serving continues —
        the next request respawns it) without failing the check; only
        draining answers 503.
        """
        draining = self.service.admission.draining
        payload = {
            "status": "draining" if draining else "ok",
            "documents": len(self.service.engine.collection),
            "epoch": self.service.engine.epoch,
            "inflight": self.service.admission.inflight,
            "cache_entries": len(self.service.cache),
        }
        shard_health = getattr(self.service.engine, "shard_health", None)
        if callable(shard_health):
            workers = shard_health()
            alive = sum(1 for worker in workers if worker["alive"])
            payload["shards"] = {
                "count": len(workers),
                "alive": alive,
                "respawns": sum(worker["restarts"] for worker in workers),
                "workers": workers,
            }
            if not draining and alive < len(workers):
                payload["status"] = "degraded"
        return _json_response(503 if draining else 200, payload)

    async def _handle_metrics(self, request: "_Request") -> _Response:
        """``GET /metrics`` — the registry in Prometheus text format.

        Refreshes the ``resource.*`` gauges first so every scrape sees
        current values even when the background sampler is disabled.
        """
        self.service.resources.sample_once()
        text = self.service.obs.metrics.to_prometheus()
        return _Response(200, text.encode("utf-8"),
                         content_type="text/plain; version=0.0.4")

    async def _handle_rds(self, request: "_Request") -> _Response:
        """``POST /search/rds`` — concept-set top-k search."""
        payload = request.json()
        concepts = _require_concepts(payload)
        k, algorithm, deadline = _common_params(payload)
        analyze = _analyze_flag(request, payload)
        result = await self.service.rds_async(
            concepts, k, algorithm=algorithm, deadline=deadline,
            analyze=analyze)
        request.meta["cached"] = result.cached
        rendered = _render_result("rds", result, k, algorithm)
        if "cost_profile" in rendered:
            request.meta["cost_profile"] = rendered["cost_profile"]
        return _json_response(200, rendered)

    async def _handle_rds_batch(self, request: "_Request") -> _Response:
        """``POST /search/rds:batch`` — many RDS queries, one request.

        The batch shares one admission slot and one deadline; cache hits
        are answered per query and misses run as a single amortized
        engine batch (see :meth:`repro.serve.service.QueryService.rds_many`).
        """
        payload = request.json()
        queries = _require_queries(payload)
        k, algorithm, deadline = _common_params(payload)
        analyze = _analyze_flag(request, payload)
        results = await self.service.rds_many_async(
            queries, k, algorithm=algorithm, deadline=deadline,
            analyze=analyze)
        request.meta["cached"] = all(result.cached for result in results)
        return _json_response(200, {
            "kind": "rds:batch",
            "k": k,
            "algorithm": algorithm,
            "count": len(results),
            "results": [_render_result("rds", result, k, algorithm)
                        for result in results],
        })

    async def _handle_sds_batch(self, request: "_Request") -> _Response:
        """``POST /search/sds:batch`` — many SDS queries, one request.

        Mirrors ``/search/rds:batch``: one admission slot, one deadline,
        per-query cache hits and a single amortized engine batch for the
        misses.  Each batch entry may be a doc-id string or a concept-id
        list, exactly like the single-query ``/search/sds`` body.
        """
        payload = request.json()
        queries = _require_sds_queries(payload)
        k, algorithm, deadline = _common_params(payload)
        analyze = _analyze_flag(request, payload)
        results = await self.service.sds_many_async(
            queries, k, algorithm=algorithm, deadline=deadline,
            analyze=analyze)
        request.meta["cached"] = all(result.cached for result in results)
        return _json_response(200, {
            "kind": "sds:batch",
            "k": k,
            "algorithm": algorithm,
            "count": len(results),
            "results": [_render_result("sds", result, k, algorithm)
                        for result in results],
        })

    async def _handle_sds(self, request: "_Request") -> _Response:
        """``POST /search/sds`` — similar-document top-k search."""
        payload = request.json()
        k, algorithm, deadline = _common_params(payload)
        query: str | list[str]
        if "doc_id" in payload:
            query = _require_str(payload, "doc_id")
        else:
            query = _require_concepts(payload)
        analyze = _analyze_flag(request, payload)
        result = await self.service.sds_async(
            query, k, algorithm=algorithm, deadline=deadline,
            analyze=analyze)
        request.meta["cached"] = result.cached
        rendered = _render_result("sds", result, k, algorithm)
        if "cost_profile" in rendered:
            request.meta["cost_profile"] = rendered["cost_profile"]
        return _json_response(200, rendered)

    async def _handle_explain(self, request: "_Request") -> _Response:
        """``POST /explain`` — human-readable distance decomposition."""
        payload = request.json()
        doc_id = _require_str(payload, "doc_id")
        concepts = _require_concepts(payload)
        deadline = _optional_number(payload, "deadline")
        text = await self.service.explain_async(
            doc_id, concepts, deadline=deadline)
        return _json_response(200, {"doc_id": doc_id,
                                    "explanation": text})

    # -- debug endpoints ------------------------------------------------
    async def _handle_debug_traces(self, request: "_Request") -> _Response:
        """``GET /debug/traces[?id=...]`` — flight-recorder captures.

        Without ``id``: summaries of every captured slow/error request.
        With ``id`` (a ``request_id`` or 32-hex ``trace_id``): the full
        record including its span tree — what ``repro debug`` renders.
        """
        recorder = self.service.recorder
        key = request.query.get("id")
        if key:
            record = recorder.get(key)
            if record is None:
                return _json_response(404, _error_payload(
                    404, "not_found", f"no captured request {key!r}"))
            return _json_response(200, record.to_dict())
        return _json_response(200, {
            "traces": [record.to_dict(include_spans=False)
                       for record in recorder.captured()],
        })

    async def _handle_debug_requests(self,
                                     request: "_Request") -> _Response:
        """``GET /debug/requests`` — metadata ring of recent requests."""
        return _json_response(200, {
            "requests": [record.to_dict(include_spans=False)
                         for record in self.service.recorder.recent()],
        })

    async def _handle_debug_vars(self, request: "_Request") -> _Response:
        """``GET /debug/vars`` — metrics snapshot + tracing internals."""
        resources = self.service.resources.sample_once()
        tracer = self.service.obs.tracer
        tracer_stats = None
        if isinstance(tracer, Tracer):
            tracer_stats = {
                "sample_rate": tracer.sample_rate,
                "max_spans": tracer.max_spans,
                "spans_started": tracer.spans_started,
                "spans_collected": tracer.spans_collected,
                "spans_dropped": tracer.spans_dropped,
                "buffered": len(tracer.finished),
            }
        payload = {
            "uptime_seconds": time.perf_counter() - self._started_at,
            "inflight": self.service.admission.inflight,
            "cache_entries": len(self.service.cache),
            "tracer": tracer_stats,
            "arena": self._arena_info(),
            "recorder": self.service.recorder.snapshot(),
            "resources": resources,
            "metrics": self.service.obs.metrics.snapshot(),
        }
        return _json_response(200, payload)

    def _arena_info(self) -> dict[str, Any]:
        """Distance-kernel info block for ``/debug/vars``.

        ``kernel_tier`` reports the full ladder (tuple | packed |
        numpy): the tuple rung means the engine's default config runs
        the DRC tuple path with no arena at all, so the arena tier is
        moot for served queries.
        """
        engine = self.service.engine
        arena = engine.arena
        default_config = getattr(engine, "default_config", None)
        use_arena = getattr(default_config, "use_arena", True)
        shared_bytes = getattr(engine, "shared_arena_bytes", None)
        return {
            "kernel_tier": arena.kernel_tier if use_arena else "tuple",
            "epoch": arena.epoch,
            "interned": arena.interned,
            "buffer_bytes": arena.buffer_bytes(),
            "shared_bytes": (int(shared_bytes())
                             if callable(shared_bytes) else 0),
        }

    async def _handle_debug_slo(self, request: "_Request") -> _Response:
        """``GET /debug/slo`` — objectives, burn rates, per-endpoint."""
        return _json_response(200, self.service.slo.snapshot())

    async def _handle_debug_profile(self, request: "_Request") -> _Response:
        """``GET /debug/profile[?seconds=N]`` — collapsed-stack samples.

        With the continuous profiler running (``profiler_enabled``), no
        ``seconds``: an instant snapshot of everything sampled so far.
        With ``seconds=N`` (capped at 30): waits N seconds first — a
        windowed look at a running profiler, or a bounded one-shot
        sample on a temporary profiler when the continuous one is off
        (so the endpoint always works, it just costs the wait).
        """
        profiler = self.service.profiler
        seconds_text = request.query.get("seconds")
        seconds: float | None = None
        if seconds_text is not None:
            try:
                seconds = float(seconds_text)
            except ValueError:
                raise _BadRequest(
                    f"invalid 'seconds': {seconds_text!r}") from None
            if not 0.0 < seconds <= _MAX_PROFILE_SECONDS:
                raise _BadRequest(
                    f"'seconds' must be in (0, {_MAX_PROFILE_SECONDS:g}], "
                    f"got {seconds:g}")
        if profiler.running:
            if seconds is not None:
                await asyncio.sleep(seconds)
            return _json_response(200, profiler.snapshot().to_dict())
        one_shot = StatisticalProfiler(
            interval_seconds=self.service.config.profiler_interval_seconds)
        one_shot.bind(self.service.obs.metrics)
        one_shot.start()
        try:
            await asyncio.sleep(seconds if seconds is not None else 1.0)
        finally:
            one_shot.stop()
        return _json_response(200, one_shot.snapshot().to_dict())


_ROUTES: Final[dict[str, tuple[str, str]]] = {
    "/healthz": ("GET", "_handle_healthz"),
    "/metrics": ("GET", "_handle_metrics"),
    "/search/rds": ("POST", "_handle_rds"),
    "/search/rds:batch": ("POST", "_handle_rds_batch"),
    "/search/sds": ("POST", "_handle_sds"),
    "/search/sds:batch": ("POST", "_handle_sds_batch"),
    "/explain": ("POST", "_handle_explain"),
    "/debug/traces": ("GET", "_handle_debug_traces"),
    "/debug/requests": ("GET", "_handle_debug_requests"),
    "/debug/vars": ("GET", "_handle_debug_vars"),
    "/debug/slo": ("GET", "_handle_debug_slo"),
    "/debug/profile": ("GET", "_handle_debug_profile"),
}


def _render_result(kind: str, result: ServeResult, k: int,
                   algorithm: str) -> dict[str, Any]:
    stats = result.results.stats
    rendered: dict[str, Any] = {
        "kind": kind,
        "k": k,
        "algorithm": algorithm,
        "cached": result.cached,
        "epoch": result.epoch,
        "results": [{"doc_id": item.doc_id, "distance": item.distance}
                    for item in result.results],
        "stats": {
            "docs_examined": stats.docs_examined,
            "drc_calls": stats.drc_calls,
            "total_seconds": stats.total_seconds,
        },
    }
    profile = result.results.cost_profile
    if profile is not None:
        rendered["cost_profile"] = profile.to_dict()
    return rendered


def _format_retry(seconds: float) -> str:
    # Retry-After is delta-seconds per RFC 9110: a non-negative integer.
    return str(max(1, round(seconds)))


# ----------------------------------------------------------------------
# Request parsing
# ----------------------------------------------------------------------
class _Request:
    """One parsed HTTP request (method, path, query, headers, body).

    ``meta`` is a scratch dict handlers use to surface per-request facts
    (today: ``cached`` and ``cost_profile``) to the dispatch wrapper for
    the access log and the flight recorder.
    """

    __slots__ = ("method", "path", "query", "headers", "body", "meta")

    def __init__(self, method: str, path: str,
                 headers: dict[str, str], body: bytes,
                 query: dict[str, str] | None = None) -> None:
        self.method = method
        self.path = path
        self.query = query if query is not None else {}
        self.headers = headers
        self.body = body
        self.meta: dict[str, Any] = {}

    def json(self) -> dict[str, Any]:
        """Decode the body as a JSON object (400 on anything else)."""
        if not self.body:
            raise _BadRequest("empty body; expected a JSON object")
        try:
            payload = json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise _BadRequest(f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("JSON body must be an object")
        return payload


async def _read_request(reader: asyncio.StreamReader) -> _Request | None:
    """Parse one request; ``None`` on a clean EOF between requests."""
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _BadRequest("malformed request line")
    method, target = parts[0].upper(), parts[1]
    path, _, query_string = target.partition("?")
    query = dict(parse_qsl(query_string)) if query_string else {}
    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADERS):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise _BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _BadRequest("too many headers")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _BadRequest(
            f"invalid Content-Length: {length_text!r}") from None
    if length < 0 or length > _MAX_BODY_BYTES:
        raise _BadRequest(f"unreasonable Content-Length: {length}")
    body = await reader.readexactly(length) if length else b""
    return _Request(method, path, headers, body, query=query)


def _require_concepts(payload: dict[str, Any]) -> list[str]:
    concepts = payload.get("concepts")
    if not isinstance(concepts, list) or not concepts \
            or not all(isinstance(item, str) for item in concepts):
        raise _BadRequest(
            "'concepts' must be a non-empty list of concept-id strings")
    return concepts


def _require_queries(payload: dict[str, Any]) -> list[list[str]]:
    queries = payload.get("queries")
    if not isinstance(queries, list) or not queries:
        raise _BadRequest(
            "'queries' must be a non-empty list of concept-id lists")
    if len(queries) > _MAX_BATCH:
        raise _BadRequest(
            f"batch too large: {len(queries)} queries (max {_MAX_BATCH})")
    for query in queries:
        if not isinstance(query, list) or not query \
                or not all(isinstance(item, str) for item in query):
            raise _BadRequest(
                "each batch query must be a non-empty list of "
                "concept-id strings")
    return queries


def _require_sds_queries(payload: dict[str, Any]) -> list[str | list[str]]:
    """Validate an SDS batch: each entry is a doc-id string or a
    non-empty concept-id list (the two shapes ``/search/sds`` takes)."""
    queries = payload.get("queries")
    if not isinstance(queries, list) or not queries:
        raise _BadRequest(
            "'queries' must be a non-empty list of doc-id strings "
            "or concept-id lists")
    if len(queries) > _MAX_BATCH:
        raise _BadRequest(
            f"batch too large: {len(queries)} queries (max {_MAX_BATCH})")
    for query in queries:
        if isinstance(query, str) and query:
            continue
        if isinstance(query, list) and query \
                and all(isinstance(item, str) for item in query):
            continue
        raise _BadRequest(
            "each batch query must be a non-empty doc-id string or a "
            "non-empty list of concept-id strings")
    return queries


def _require_str(payload: dict[str, Any], key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise _BadRequest(f"'{key}' must be a non-empty string")
    return value


def _analyze_flag(request: _Request, payload: dict[str, Any]) -> bool:
    """The EXPLAIN ANALYZE opt-in: body flag or ``?explain=analyze``."""
    if request.query.get("explain") == "analyze":
        return True
    value = payload.get("analyze", False)
    if not isinstance(value, bool):
        raise _BadRequest("'analyze' must be a boolean")
    return value


def _optional_number(payload: dict[str, Any], key: str) -> float | None:
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _BadRequest(f"'{key}' must be a number")
    return float(value)


def _common_params(
        payload: dict[str, Any]) -> tuple[int, str, float | None]:
    k = payload.get("k", 10)
    if isinstance(k, bool) or not isinstance(k, int) or k < 1:
        raise _BadRequest("'k' must be a positive integer")
    algorithm = payload.get("algorithm", "knds")
    if not isinstance(algorithm, str):
        raise _BadRequest("'algorithm' must be a string")
    deadline = _optional_number(payload, "deadline")
    return k, algorithm, deadline


# ----------------------------------------------------------------------
# Entry points: blocking CLI loop and background-thread handle
# ----------------------------------------------------------------------
def run_server(service: QueryService, *, host: str = "127.0.0.1",
               port: int = 8080,
               drain_seconds: float | None = None) -> None:
    """Serve until SIGTERM/SIGINT, then drain gracefully (blocking).

    This is what ``repro serve`` runs: it owns the event loop, installs
    the signal handlers (where the platform supports them), and returns
    once the drain completes.
    """
    asyncio.run(_serve_until_signal(service, host, port, drain_seconds))


async def _serve_until_signal(service: QueryService, host: str, port: int,
                              drain_seconds: float | None) -> None:
    server = QueryServer(service, host=host, port=port)
    await server.start()
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except NotImplementedError:  # pragma: no cover - non-unix
            pass
    print(f"# serving on http://{server.host}:{server.port} "
          f"(SIGTERM or Ctrl-C to drain and stop)")
    await stop_event.wait()
    await server.stop(drain_seconds)


class ServerHandle:
    """A :class:`QueryServer` running on a background daemon thread.

    The handle owns a private event loop on its thread; :meth:`stop`
    triggers the same graceful-drain path the signal handlers use and
    joins the thread.  Used by the tests, the load generator examples
    and the CI smoke script::

        handle = ServerHandle.start(service, port=0)
        ... http requests against handle.address ...
        handle.stop()
    """

    def __init__(self, service: QueryService, host: str, port: int,
                 drain_seconds: float | None) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._drain_seconds = drain_seconds
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._error: BaseException | None = None

    @classmethod
    def start(cls, service: QueryService, *, host: str = "127.0.0.1",
              port: int = 0, drain_seconds: float | None = None,
              startup_timeout: float = 10.0) -> "ServerHandle":
        """Boot a server thread and wait until it is accepting."""
        handle = cls(service, host, port, drain_seconds)
        thread = threading.Thread(target=handle._run,
                                  name="repro-serve-http", daemon=True)
        handle._thread = thread
        thread.start()
        if not handle._started.wait(startup_timeout):
            raise ServeError("server failed to start in time")
        if handle._error is not None:
            raise ServeError(
                f"server failed to start: {handle._error!r}")
        return handle

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` once the server is accepting."""
        return (self.host, self.port)

    def stop(self, join_timeout: float = 30.0) -> None:
        """Drain gracefully and join the server thread. Idempotent."""
        loop, stop_event = self._loop, self._stop_event
        thread = self._thread
        if loop is not None and stop_event is not None:
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        if thread is not None:
            thread.join(join_timeout)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # pragma: no cover - thread edge
            self._error = error
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = QueryServer(self.service, host=self.host, port=self.port)
        try:
            await server.start()
        except BaseException as error:
            self._error = error
            self._started.set()
            return
        self.host, self.port = server.address
        self._started.set()
        await self._stop_event.wait()
        await server.stop(self._drain_seconds)
