"""Serving configuration: one frozen dataclass, validated up front.

Every tunable of the :mod:`repro.serve` stack lives here so the CLI, the
tests and the bench scenarios construct services the same way.  The
defaults are sized for a small box: a handful of worker threads, a short
bounded queue (shed early, queue little — the classic overload advice),
and a result cache large enough for the repeated concept queries the
paper's workloads exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ServeError


@dataclass(frozen=True)
class ServeConfig:
    """Tunables for :class:`repro.serve.service.QueryService`.

    Parameters
    ----------
    host, port:
        Bind address for the HTTP layer; port 0 picks a free port (the
        chosen one is reported by :class:`repro.serve.http.QueryServer`).
    workers:
        Executor threads evaluating queries.  Queries are CPU-bound
        Python, so more threads than cores mostly adds switching cost;
        the win is overlapping SQLite I/O and isolating slow queries.
    queue_limit:
        Admitted-but-not-yet-running requests allowed beyond ``workers``.
        ``workers + queue_limit`` is the hard in-flight ceiling; past it
        the service sheds load with HTTP 429 instead of queueing.
    deadline_seconds:
        Default per-request deadline; exceeding it raises
        :class:`repro.exceptions.QueryTimeoutError` (HTTP 504).
    cache_size:
        Maximum entries in the LRU result cache (0 disables caching).
    cache_ttl_seconds:
        Optional time-to-live per cache entry; ``None`` means entries
        live until evicted or invalidated by a corpus mutation.
    retry_after_seconds:
        Client back-off hint attached to 429/503 responses.
    drain_seconds:
        How long graceful shutdown waits for in-flight queries.
    trace_sample_rate:
        Fraction of root traces collected (deterministic head sampling;
        a client ``traceparent`` sampling flag overrides per request).
    trace_max_spans:
        Ring-buffer bound on finished spans awaiting collection; the
        oldest spans are dropped past it, so always-on tracing has a
        hard memory ceiling.
    trace_seed:
        Optional trace-id RNG seed for reproducible runs (benchmarks).
    recorder_capacity:
        Slow/error requests whose full span trees the flight recorder
        retains (0 disables capture).
    recorder_recent:
        Metadata-only records kept for the ``/debug/requests`` feed.
    slow_threshold_seconds:
        Latency at or above which a request is captured by the flight
        recorder (0 captures everything).
    slo_availability_target:
        Fraction of requests that must be *good* (non-5xx and within
        the latency objective); the rest is the error budget that
        ``/debug/slo`` burn rates are measured against.
    slo_latency_objective_seconds:
        Per-request latency objective for the SLO accounting.
    profiler_enabled:
        Run the continuous sampling profiler
        (:class:`repro.obs.profiling.StatisticalProfiler`) for the
        service's lifetime; ``/debug/profile`` snapshots it.  Off by
        default — on demand, ``/debug/profile?seconds=N`` runs a
        bounded one-shot sample even when this is off.
    profiler_interval_seconds:
        Sampling period of the continuous profiler (default 10 ms).
    resource_interval_seconds:
        Period of the ``resource.*`` gauge sampler (arena bytes, cache
        entries, queue depth, GC counts); 0 disables the background
        thread while keeping the on-demand refresh that ``/debug/vars``
        and ``/metrics`` scrapes trigger.
    shards:
        Worker *processes* to partition the corpus across (``repro
        serve --shards N``); 0 (default) serves from one in-process
        engine.  With shards, queries scatter-gather through
        :class:`repro.shard.ShardedEngine` — results are bit-identical
        to the single-engine path (see docs/SERVING.md, "Sharded
        deployment").
    shard_policy:
        Corpus partitioning policy, ``hash`` (stable assignment) or
        ``round_robin`` (balanced partitions); see
        :class:`repro.shard.ShardPlanner` for the stability contract.
    shard_timeout_seconds:
        Per-shard request timeout.  A worker missing it is treated as
        crashed: killed, respawned, and retried once before the request
        fails with 503.
    shared_arena:
        Publish the coordinator's packed arena as one read-only
        shared-memory snapshot that every shard worker attaches in O(1)
        instead of re-packing (``repro serve --shared-arena``).
        Requires ``shards > 0`` — with a single in-process engine there
        is nobody to share with.
    kernel_tier:
        Arena LCP kernel selection: ``auto`` (numpy when the ``perf``
        extra is installed, else the packed scalar kernel), ``packed``,
        or ``numpy`` (hard requirement).  Results are bit-identical
        across tiers; see docs/PERFORMANCE.md, "The kernel ladder".
    """

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 4
    queue_limit: int = 16
    deadline_seconds: float = 10.0
    cache_size: int = 1024
    cache_ttl_seconds: float | None = None
    retry_after_seconds: float = 1.0
    drain_seconds: float = 5.0
    trace_sample_rate: float = 1.0
    trace_max_spans: int = 20000
    trace_seed: int | None = None
    recorder_capacity: int = 64
    recorder_recent: int = 256
    slow_threshold_seconds: float = 1.0
    slo_availability_target: float = 0.999
    slo_latency_objective_seconds: float = 0.5
    profiler_enabled: bool = False
    profiler_interval_seconds: float = 0.01
    resource_interval_seconds: float = 5.0
    shards: int = 0
    shard_policy: str = "hash"
    shard_timeout_seconds: float = 30.0
    shared_arena: bool = False
    kernel_tier: str = "auto"

    @property
    def max_inflight(self) -> int:
        """Hard ceiling on concurrently admitted requests."""
        return self.workers + self.queue_limit

    def validate(self) -> None:
        """Raise :class:`repro.exceptions.ServeError` on nonsense values."""
        if self.workers < 1:
            raise ServeError(f"workers must be >= 1, got {self.workers}")
        if self.queue_limit < 0:
            raise ServeError(
                f"queue_limit must be >= 0, got {self.queue_limit}")
        if self.deadline_seconds <= 0:
            raise ServeError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}")
        if self.cache_size < 0:
            raise ServeError(
                f"cache_size must be >= 0, got {self.cache_size}")
        if self.cache_ttl_seconds is not None \
                and self.cache_ttl_seconds <= 0:
            raise ServeError(
                f"cache_ttl_seconds must be > 0 or None, got "
                f"{self.cache_ttl_seconds}")
        if self.retry_after_seconds <= 0:
            raise ServeError(
                f"retry_after_seconds must be > 0, got "
                f"{self.retry_after_seconds}")
        if self.drain_seconds < 0:
            raise ServeError(
                f"drain_seconds must be >= 0, got {self.drain_seconds}")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ServeError(
                f"trace_sample_rate must be in [0, 1], got "
                f"{self.trace_sample_rate}")
        if self.trace_max_spans < 1:
            raise ServeError(
                f"trace_max_spans must be >= 1, got {self.trace_max_spans}")
        if self.recorder_capacity < 0:
            raise ServeError(
                f"recorder_capacity must be >= 0, got "
                f"{self.recorder_capacity}")
        if self.recorder_recent < 1:
            raise ServeError(
                f"recorder_recent must be >= 1, got {self.recorder_recent}")
        if self.slow_threshold_seconds < 0:
            raise ServeError(
                f"slow_threshold_seconds must be >= 0, got "
                f"{self.slow_threshold_seconds}")
        if not 0.0 < self.slo_availability_target < 1.0:
            raise ServeError(
                f"slo_availability_target must be in (0, 1), got "
                f"{self.slo_availability_target}")
        if self.slo_latency_objective_seconds <= 0:
            raise ServeError(
                f"slo_latency_objective_seconds must be > 0, got "
                f"{self.slo_latency_objective_seconds}")
        if self.profiler_interval_seconds <= 0:
            raise ServeError(
                f"profiler_interval_seconds must be > 0, got "
                f"{self.profiler_interval_seconds}")
        if self.resource_interval_seconds < 0:
            raise ServeError(
                f"resource_interval_seconds must be >= 0, got "
                f"{self.resource_interval_seconds}")
        if self.shards < 0:
            raise ServeError(f"shards must be >= 0, got {self.shards}")
        # Mirrors repro.shard.planner.POLICIES without importing the
        # (process-spawning) shard package just to validate a string.
        if self.shard_policy not in ("hash", "round_robin"):
            raise ServeError(
                f"shard_policy must be one of hash, round_robin, "
                f"got {self.shard_policy!r}")
        if self.shard_timeout_seconds <= 0:
            raise ServeError(
                f"shard_timeout_seconds must be > 0, got "
                f"{self.shard_timeout_seconds}")
        if self.shared_arena and self.shards < 1:
            raise ServeError(
                "shared_arena requires shards >= 1; a single in-process "
                "engine has no worker processes to share the arena with")
        # Mirrors repro.core.arena.KERNEL_TIERS (same no-import rule as
        # shard_policy above).
        if self.kernel_tier not in ("auto", "packed", "numpy"):
            raise ServeError(
                f"kernel_tier must be one of auto, packed, numpy, "
                f"got {self.kernel_tier!r}")
