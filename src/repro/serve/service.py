"""The concurrent query service: engine + worker pool + cache + gate.

:class:`QueryService` is the serving core that both front ends share
(the asyncio HTTP layer in :mod:`repro.serve.http` and direct in-process
callers such as the bench scenarios).  One request flows through four
stages:

1. **admission** — the bounded gate from :mod:`repro.serve.admission`
   refuses work past ``workers + queue_limit`` in flight (typed 429) or
   once draining has begun (typed 503);
2. **cache** — the epoch-aware LRU from :mod:`repro.serve.cache`; a hit
   never touches the engine;
3. **execution** — the query runs on a bounded
   :class:`~concurrent.futures.ThreadPoolExecutor`; the caller waits at
   most ``deadline_seconds`` and gets a typed
   :class:`repro.exceptions.QueryTimeoutError` past it (the worker may
   still finish — the result is discarded, not cached);
4. **publication** — every request lands in the ``serve.*`` metrics and
   a ``serve.request`` span, so ``/metrics`` shows hit rates, shed load
   and latency without extra wiring.

Thread-safety: the service may be driven from many threads and from an
asyncio event loop at once; all shared state (cache, gate, metrics) is
internally locked, and the engine's query path is read-only (corpus
mutations go through :meth:`repro.core.engine.SearchEngine.add_document`,
which serializes itself and bumps the epoch the cache keys on).
"""

from __future__ import annotations

import asyncio
import contextvars
import time
from collections.abc import Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from repro.core.engine import SearchEngine
from repro.core.results import RankedResults
from repro.exceptions import QueryError, QueryTimeoutError, ServeError
from repro.obs import Observability
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, WORK_BUCKETS
from repro.obs.profiling import ResourceSampler, StatisticalProfiler
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SLOTracker
from repro.obs.tracing import Tracer
from repro.serve.admission import AdmissionController
from repro.serve.cache import CacheKey, QueryCache, normalize_key
from repro.serve.config import ServeConfig
from repro.types import ConceptId

if TYPE_CHECKING:
    from collections.abc import Callable

_LOG = get_logger("serve")

_KINDS = ("rds", "sds")

_DISTANCE_CACHE_ENTRY_BYTES = 256
"""Approximate per-entry footprint of the concept-distance cache: one
OrderedDict slot plus a 2-int key tuple and a small-int value.  Used for
the ``resource.distance_cache_bytes`` gauge — an order-of-magnitude
figure, not an exact accounting."""


@dataclass(frozen=True)
class ServeResult:
    """One served query: the ranking plus serving metadata.

    ``cached`` tells whether the answer came from the result cache;
    ``epoch`` is the corpus epoch the answer is valid for.
    """

    results: RankedResults
    cached: bool
    epoch: int


class QueryService:
    """Concurrent, cached, admission-controlled facade over one engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.core.engine.SearchEngine` to serve.  The
        service instruments it with its own observability bundle (or
        the one passed as ``obs``), so every layer below reports into
        the registry exposed at ``/metrics``.
    config:
        A :class:`~repro.serve.config.ServeConfig`; defaults apply when
        omitted.
    obs:
        Optional :class:`repro.obs.Observability` bundle; by default the
        service creates a private bundle with a dedicated
        :class:`~repro.obs.metrics.MetricsRegistry` (not the process
        global) so two services never mix their series, and a real
        :class:`~repro.obs.tracing.Tracer` configured from the
        ``trace_*`` knobs (bounded buffer + head sampling keep it
        cheap).  The service also owns a
        :class:`~repro.obs.recorder.FlightRecorder` and an
        :class:`~repro.obs.slo.SLOTracker`, fed by the HTTP layer and
        surfaced on the ``/debug/*`` endpoints.
    clock:
        Monotonic time source handed to the cache for TTL decisions
        (injected for deterministic tests).

    The service is a context manager; leaving the ``with`` block runs
    :meth:`close`, i.e. a graceful drain.

    Example
    -------
    >>> from repro import SearchEngine, figure3_ontology
    >>> from repro import example4_collection
    >>> engine = SearchEngine(figure3_ontology(), example4_collection())
    >>> with QueryService(engine) as service:
    ...     first = service.rds(["F", "I"], k=2)
    ...     again = service.rds(["I", "F"], k=2)   # normalized: a hit
    >>> first.results.doc_ids() == again.results.doc_ids()
    True
    >>> (first.cached, again.cached)
    (False, True)
    """

    def __init__(self, engine: SearchEngine,
                 config: ServeConfig | None = None, *,
                 obs: Observability | None = None,
                 clock: "Callable[[], float]" = time.monotonic) -> None:
        self.engine = engine
        self.config = config if config is not None else ServeConfig()
        self.config.validate()
        if obs is None:
            obs = Observability(
                tracer=Tracer(
                    sample_rate=self.config.trace_sample_rate,
                    max_spans=self.config.trace_max_spans,
                    seed=self.config.trace_seed),
                metrics=MetricsRegistry())
        self._default_obs = obs
        self.obs = obs
        self.recorder = FlightRecorder(
            capacity=self.config.recorder_capacity,
            recent=self.config.recorder_recent,
            slow_threshold_seconds=self.config.slow_threshold_seconds)
        self.slo = SLOTracker(
            availability_target=self.config.slo_availability_target,
            latency_objective_seconds=(
                self.config.slo_latency_objective_seconds))
        self.admission = AdmissionController(
            self.config.max_inflight,
            retry_after=self.config.retry_after_seconds)
        self.cache: QueryCache[RankedResults] = QueryCache(
            self.config.cache_size,
            ttl_seconds=self.config.cache_ttl_seconds,
            clock=clock)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve")
        self._closed = False
        self.profiler = StatisticalProfiler(
            interval_seconds=self.config.profiler_interval_seconds)
        self.resources = ResourceSampler(
            interval_seconds=self.config.resource_interval_seconds or 5.0)
        self._register_resources()
        self._wire(obs)
        engine.instrument(obs)
        if self.config.profiler_enabled:
            self.profiler.start()
        if self.config.resource_interval_seconds > 0:
            self.resources.start()

    # ------------------------------------------------------------------
    # Observability wiring
    # ------------------------------------------------------------------
    def _wire(self, obs: Observability) -> None:
        registry = obs.metrics
        self._requests = registry.counter(
            "serve.requests", "Requests admitted by the service")
        self._rejected = registry.counter(
            "serve.rejected", "Requests shed by admission control")
        self._timeouts = registry.counter(
            "serve.timeouts", "Queries abandoned at their deadline")
        self._cache_hits = registry.counter(
            "serve.cache_hits", "Result-cache hits")
        self._cache_misses = registry.counter(
            "serve.cache_misses", "Result-cache misses")
        self._batch_queries = registry.counter(
            "serve.batch_queries", "Queries received inside batch requests")
        self._inflight_gauge = registry.gauge(
            "serve.inflight", "Requests currently admitted")
        self._request_seconds = registry.histogram(
            "serve.request_seconds", "End-to-end served request latency")
        self._analyzed = registry.counter(
            "serve.analyzed", "Queries served with explain-analyze on")
        # Per-endpoint work-per-query rollups: every *computed* (non-
        # cached) query feeds its deterministic work counters here, so
        # dashboards can spot pruning regressions without per-request
        # explain-analyze.
        self._work_hists = {
            kind: {
                "probes": registry.histogram(
                    f"serve.{kind}.probes_per_query",
                    "Inverted-index postings probes per computed query",
                    buckets=WORK_BUCKETS),
                "distances": registry.histogram(
                    f"serve.{kind}.distances_per_query",
                    "Exact distance computations per computed query "
                    "(arena kernels + DRC probes)",
                    buckets=WORK_BUCKETS),
                "settled": registry.histogram(
                    f"serve.{kind}.settled_per_query",
                    "Candidates settled per computed query",
                    buckets=WORK_BUCKETS),
                "pruned": registry.histogram(
                    f"serve.{kind}.pruned_per_query",
                    "Candidates pruned per computed query",
                    buckets=WORK_BUCKETS),
            }
            for kind in _KINDS
        }
        self.profiler.bind(registry)
        self.resources.bind(registry)

    def instrument(self, obs: Observability | None) -> None:
        """Re-point serving metrics (and the engine) at ``obs``.

        ``None`` restores the service's own bundle.  The bench runner
        uses this to collect the deterministic ``serve.cache_*`` work
        counters into a fresh registry for its untimed metrics pass.
        """
        target = obs if obs is not None else self._default_obs
        self.obs = target
        self._wire(target)
        self.engine.instrument(target)

    def _register_resources(self) -> None:
        """Register the standard ``resource.*`` gauge suppliers.

        Polled by the background sampler (``resource_interval_seconds``)
        and on demand by ``/debug/vars``; each supplier is a cheap O(1)
        read so a poll never contends with the query path.
        """
        engine = self.engine
        sampler = self.resources
        sampler.add_source(
            "resource.arena_bytes",
            lambda: float(engine.arena.buffer_bytes()),
            "Bytes held by the packed Dewey arena buffers")
        shared_bytes = getattr(engine, "shared_arena_bytes", None)
        if callable(shared_bytes):
            # Sharded coordinator with a published snapshot: the
            # segment is counted here exactly once per host — attached
            # worker views report buffer_bytes() == 0 by design.
            sampler.add_source(
                "resource.arena_shared_bytes",
                lambda: float(shared_bytes()),
                "Bytes of the shared arena snapshot segment (one per "
                "host; 0 when --shared-arena is off)")
        sampler.add_source(
            "resource.distance_cache_entries",
            lambda: float(len(engine.arena.cache)),
            "Entries in the shared concept-distance cache")
        sampler.add_source(
            "resource.distance_cache_bytes",
            lambda: float(
                len(engine.arena.cache) * _DISTANCE_CACHE_ENTRY_BYTES),
            "Approximate bytes held by the concept-distance cache")
        sampler.add_source(
            "resource.serve_cache_entries",
            lambda: float(len(self.cache)),
            "Entries in the serve result cache")
        sampler.add_source(
            "resource.worker_queue_depth", self._queue_depth,
            "Queries queued for the worker pool, not yet running")
        sampler.add_gc_sources()

    def _queue_depth(self) -> float:
        """Depth of the executor's internal work queue (best effort)."""
        queue = getattr(self._executor, "_work_queue", None)
        return float(queue.qsize()) if queue is not None else 0.0

    def _observe_work(self, kind: str, results: RankedResults) -> None:
        """Feed one computed query's work counters into the per-endpoint
        histograms (cache hits never land here — no work was done)."""
        hists = self._work_hists.get(kind)
        if hists is None:
            return
        stats = results.stats
        hists["probes"].observe(float(stats.nodes_visited))
        hists["distances"].observe(
            float(stats.drc_calls + stats.arena_calls))
        hists["settled"].observe(float(stats.docs_examined))
        hists["pruned"].observe(float(stats.docs_pruned))

    # ------------------------------------------------------------------
    # Public query API (sync and async flavours)
    # ------------------------------------------------------------------
    def rds(self, concepts: Sequence[ConceptId], k: int = 10, *,
            algorithm: str = "knds",
            deadline: float | None = None,
            analyze: bool = False) -> ServeResult:
        """Serve one Relevant Document Search (cache-aware, bounded).

        ``analyze=True`` turns the query into an EXPLAIN ANALYZE run:
        the result carries a per-query cost profile
        (``ServeResult.results.cost_profile``), and the request bypasses
        the result cache both ways — the profile must describe *this*
        execution, and a profiled answer must not displace or pollute
        regular cached entries.
        """
        pending = self._begin("rds", concepts, k, algorithm, deadline,
                              analyze)
        return pending.wait()

    def sds(self, query: str | Sequence[ConceptId], k: int = 10, *,
            algorithm: str = "knds",
            deadline: float | None = None,
            analyze: bool = False) -> ServeResult:
        """Serve one Similar Document Search.

        ``query`` is a doc id from the collection or a bare concept
        sequence; either way the cache key is the document's *concept
        set*, so an SDS by id and an SDS by that document's concepts
        share one entry.  ``analyze=True`` as in :meth:`rds`.
        """
        pending = self._begin("sds", self._sds_concepts(query), k,
                              algorithm, deadline, analyze)
        return pending.wait()

    async def rds_async(self, concepts: Sequence[ConceptId], k: int = 10,
                        *, algorithm: str = "knds",
                        deadline: float | None = None,
                        analyze: bool = False) -> ServeResult:
        """Asyncio flavour of :meth:`rds` (same semantics, no blocking)."""
        pending = self._begin("rds", concepts, k, algorithm, deadline,
                              analyze)
        return await pending.wait_async()

    async def sds_async(self, query: str | Sequence[ConceptId],
                        k: int = 10, *, algorithm: str = "knds",
                        deadline: float | None = None,
                        analyze: bool = False) -> ServeResult:
        """Asyncio flavour of :meth:`sds` (same semantics, no blocking)."""
        pending = self._begin("sds", self._sds_concepts(query), k,
                              algorithm, deadline, analyze)
        return await pending.wait_async()

    def rds_many(self, queries: Sequence[Sequence[ConceptId]],
                 k: int = 10, *, algorithm: str = "knds",
                 deadline: float | None = None,
                 analyze: bool = False) -> list[ServeResult]:
        """Serve a batch of RDS queries under one admission slot.

        Each query is cache-checked individually (hits never touch the
        engine, duplicate queries within the batch are computed once)
        and the misses run as a single
        :meth:`repro.core.engine.SearchEngine.rds_many` call on one
        worker, amortizing arena interning and the shared distance cache
        across the batch.  Results come back in request order; the
        whole batch shares one ``deadline``.  ``analyze=True`` profiles
        every query in the batch and bypasses the cache (see
        :meth:`rds`); duplicates within the batch are still computed
        (and profiled) once.
        """
        pending = self._begin_batch("rds", queries, k, algorithm, deadline,
                                    analyze)
        return pending.wait()

    async def rds_many_async(self, queries: Sequence[Sequence[ConceptId]],
                             k: int = 10, *, algorithm: str = "knds",
                             deadline: float | None = None,
                             analyze: bool = False
                             ) -> list[ServeResult]:
        """Asyncio flavour of :meth:`rds_many` (same semantics)."""
        pending = self._begin_batch("rds", queries, k, algorithm, deadline,
                                    analyze)
        return await pending.wait_async()

    def sds_many(self, queries: Sequence[str | Sequence[ConceptId]],
                 k: int = 10, *, algorithm: str = "knds",
                 deadline: float | None = None,
                 analyze: bool = False) -> list[ServeResult]:
        """Serve a batch of SDS queries under one admission slot.

        The batch-parity twin of :meth:`rds_many`: each entry may be an
        indexed doc id or a bare concept sequence (resolved to concepts
        up front, exactly like :meth:`sds`), hits are served from the
        cache, and the deduplicated misses run as one
        :meth:`repro.core.engine.SearchEngine.sds_many` call on one
        worker under the shared deadline.
        """
        pending = self._begin_batch(
            "sds", [self._sds_concepts(query) for query in queries],
            k, algorithm, deadline, analyze)
        return pending.wait()

    async def sds_many_async(self,
                             queries: Sequence[str | Sequence[ConceptId]],
                             k: int = 10, *, algorithm: str = "knds",
                             deadline: float | None = None,
                             analyze: bool = False
                             ) -> list[ServeResult]:
        """Asyncio flavour of :meth:`sds_many` (same semantics)."""
        pending = self._begin_batch(
            "sds", [self._sds_concepts(query) for query in queries],
            k, algorithm, deadline, analyze)
        return await pending.wait_async()

    def explain(self, doc_id: str, concepts: Sequence[ConceptId], *,
                deadline: float | None = None) -> str:
        """Serve one distance explanation (admitted and bounded, uncached).

        Explanations are rare, diagnostic and depend on the live corpus,
        so they go through admission and the deadline but skip the
        result cache.
        """
        timeout = self._timeout(deadline)
        start = self._admit()
        span = self.obs.tracer.span("serve.request",
                                    kind="explain").__enter__()
        try:
            future = self._submit(
                self._execute_explain, doc_id, list(concepts))
            try:
                return future.result(timeout=timeout)
            except TimeoutError:
                future.cancel()
                self._timeouts.inc()
                raise QueryTimeoutError(timeout) from None
        finally:
            self._finish(start, "explain", span)

    async def explain_async(self, doc_id: str,
                            concepts: Sequence[ConceptId], *,
                            deadline: float | None = None) -> str:
        """Asyncio flavour of :meth:`explain`."""
        timeout = self._timeout(deadline)
        start = self._admit()
        span = self.obs.tracer.span("serve.request",
                                    kind="explain").__enter__()
        try:
            future = self._submit(
                self._execute_explain, doc_id, list(concepts))
            try:
                return await asyncio.wait_for(
                    asyncio.wrap_future(future), timeout)
            except TimeoutError:
                future.cancel()
                self._timeouts.inc()
                raise QueryTimeoutError(timeout) from None
        finally:
            self._finish(start, "explain", span)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Refuse new queries from now on; in-flight ones keep running."""
        self.admission.begin_drain()
        _LOG.info("service draining",
                  extra={"inflight": self.admission.inflight})

    def close(self, drain_seconds: float | None = None) -> bool:
        """Graceful shutdown: drain, wait, stop the worker pool.

        Waits up to ``drain_seconds`` (default: the configured
        ``drain_seconds``) for in-flight queries, then shuts the
        executor down, cancelling anything still queued.  Returns
        ``True`` when the service went idle before the timeout.
        Idempotent.
        """
        if self._closed:
            return True
        self._closed = True
        timeout = (self.config.drain_seconds
                   if drain_seconds is None else drain_seconds)
        self.begin_drain()
        idle = self.admission.wait_idle(timeout)
        self._executor.shutdown(wait=False, cancel_futures=True)
        self.profiler.stop()
        self.resources.stop()
        _LOG.info("service closed", extra={"drained": idle})
        return idle

    def __enter__(self) -> "QueryService":
        """Enter the context manager; returns the service itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Exit the context manager via a graceful :meth:`close`."""
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _timeout(self, deadline: float | None) -> float:
        return (self.config.deadline_seconds
                if deadline is None else deadline)

    def _submit(self, fn: "Callable[..., Any]",
                *args: Any) -> "Future[Any]":
        """Submit work to the pool *with the caller's context*.

        ``ThreadPoolExecutor`` does not propagate :mod:`contextvars`, so
        without this hop spans opened on the worker thread would start
        fresh root traces instead of parenting to the submitting
        request's span.  Copying the context also carries the bound log
        fields (``request_id``/``trace_id``) into worker-side log lines.
        """
        context = contextvars.copy_context()
        return self._executor.submit(context.run, fn, *args)

    def _admit(self) -> float:
        """Pass the admission gate; returns the request start time."""
        try:
            self.admission.admit()
        except ServeError:
            self._rejected.inc()
            raise
        self._requests.inc()
        self._inflight_gauge.inc()
        return time.perf_counter()

    def _finish(self, start: float, kind: str,
                span: Any = None) -> None:
        """Release the slot and close the request span + latency."""
        end = time.perf_counter()
        self._inflight_gauge.dec()
        self.admission.release()
        self._request_seconds.observe(end - start)
        if span is not None:
            span.__exit__(None, None, None)
        else:
            self.obs.tracer.record("serve.request", start, end, kind=kind)

    def _begin(self, kind: str, concepts: Sequence[ConceptId], k: int,
               algorithm: str, deadline: float | None,
               analyze: bool = False) -> "_PendingQuery":
        """Admission + cache lookup; returns a waitable pending query.

        ``analyze`` requests skip the cache in both directions: the
        profile must describe this execution (a cached answer has none),
        and the profiled run must not overwrite a regular entry.  They
        count into ``serve.analyzed`` instead of the cache hit/miss
        counters, keeping those series meaningful as cache telemetry.
        """
        if kind not in _KINDS:
            raise QueryError(f"unknown query kind: {kind!r}")
        timeout = self._timeout(deadline)
        start = self._admit()
        # The serve.request span covers the whole service stage —
        # admission to result — and is entered here so the executor hop
        # (a copied context) parents serve.execute underneath it.
        span = self.obs.tracer.span("serve.request", kind=kind).__enter__()
        try:
            epoch = self.engine.epoch
            key: CacheKey | None = None
            if analyze:
                self._analyzed.inc()
                span.set_attribute("analyze", True)
            else:
                key = self._key(kind, concepts, k, algorithm)
                hit = self.cache.get(key, epoch)
                if hit is not None:
                    self._cache_hits.inc()
                    span.set_attribute("cached", True)
                    return _PendingQuery(
                        self, kind, start, timeout, span=span,
                        hit=ServeResult(hit, True, epoch))
                self._cache_misses.inc()
            span.set_attribute("cached", False)
            future = self._submit(
                self._execute, kind, tuple(concepts), k, algorithm,
                analyze)
            return _PendingQuery(self, kind, start, timeout, span=span,
                                 key=key, epoch=epoch, future=future)
        except BaseException:
            self._finish(start, kind, span)
            raise

    def _key(self, kind: str, concepts: Sequence[ConceptId], k: int,
             algorithm: str) -> CacheKey:
        """Result-cache key: interned arena token when available.

        The engine's packed arena normalizes a concept set once into an
        epoch-prefixed tuple of interned small-int ids
        (:meth:`repro.core.arena.PackedDeweyArena.cache_token`), so
        repeat lookups compare ints instead of re-sorting concept
        strings.  Unknown concepts fall back to :func:`normalize_key`
        and let query validation raise the proper error downstream.
        """
        token = self.engine.arena.cache_token(concepts)
        if token is not None:
            return (kind, token, int(k), algorithm)
        return normalize_key(kind, concepts, k, algorithm)

    def _execute(self, kind: str, concepts: tuple[ConceptId, ...],
                 k: int, algorithm: str,
                 analyze: bool = False) -> RankedResults:
        """Run the actual engine query (on a worker thread)."""
        with self.obs.tracer.span("serve.execute", kind=kind,
                                  algorithm=algorithm):
            if kind == "rds":
                return self.engine.rds(list(concepts), k,
                                       algorithm=algorithm,
                                       analyze=analyze)
            return self.engine.sds(list(concepts), k, algorithm=algorithm,
                                   analyze=analyze)

    def _execute_many(self, kind: str, queries: list[tuple[ConceptId, ...]],
                      k: int, algorithm: str,
                      analyze: bool = False) -> list[RankedResults]:
        """Run the batch miss list (on a worker thread)."""
        with self.obs.tracer.span("serve.execute", kind=f"{kind}:batch",
                                  algorithm=algorithm,
                                  queries=len(queries)):
            if kind == "rds":
                return self.engine.rds_many(queries, k, algorithm=algorithm,
                                            analyze=analyze)
            return self.engine.sds_many(queries, k, algorithm=algorithm,
                                        analyze=analyze)

    def _execute_explain(self, doc_id: str,
                         concepts: list[ConceptId]) -> str:
        """Run one explanation (on a worker thread)."""
        with self.obs.tracer.span("serve.execute", kind="explain"):
            return self.engine.explain(doc_id, concepts)

    def _begin_batch(self, kind: str,
                     queries: Sequence[Sequence[ConceptId]], k: int,
                     algorithm: str, deadline: float | None,
                     analyze: bool = False) -> "_PendingBatch":
        """Admission + per-query cache pass; returns a waitable batch.

        ``kind`` is ``"rds"`` or ``"sds"`` (SDS entries arrive already
        resolved to concept sequences).  With ``analyze`` every query is
        treated as a miss (no cache get) and nothing is written back
        afterwards — the cache key is still computed so duplicate
        queries inside the batch are profiled once and share the result.
        """
        if not queries:
            raise QueryError("batch must contain at least one query")
        timeout = self._timeout(deadline)
        start = self._admit()
        span = self.obs.tracer.span(
            "serve.request", kind=f"{kind}:batch",
            queries=len(queries)).__enter__()
        try:
            self._batch_queries.inc(len(queries))
            if analyze:
                self._analyzed.inc(len(queries))
                span.set_attribute("analyze", True)
            epoch = self.engine.epoch
            slots: list[ServeResult | int] = []
            miss_keys: list[CacheKey] = []
            miss_queries: list[tuple[ConceptId, ...]] = []
            position: dict[CacheKey, int] = {}
            for concepts in queries:
                key = self._key(kind, concepts, k, algorithm)
                if not analyze:
                    hit = self.cache.get(key, epoch)
                    if hit is not None:
                        self._cache_hits.inc()
                        slots.append(ServeResult(hit, True, epoch))
                        continue
                    self._cache_misses.inc()
                index = position.get(key)
                if index is None:
                    index = len(miss_queries)
                    position[key] = index
                    if not analyze:
                        miss_keys.append(key)
                    miss_queries.append(tuple(concepts))
                slots.append(index)
            future: "Future[list[RankedResults]] | None" = None
            if miss_queries:
                future = self._submit(
                    self._execute_many, kind, miss_queries, k, algorithm,
                    analyze)
            return _PendingBatch(self, kind, start, timeout, slots,
                                 miss_keys, epoch, future, span=span)
        except BaseException:
            self._finish(start, f"{kind}:batch", span)
            raise

    def _sds_concepts(
            self,
            query: str | Sequence[ConceptId]) -> Sequence[ConceptId]:
        """Resolve an SDS query (doc id or concepts) to its concept set."""
        if isinstance(query, str):
            return self.engine.collection.get(query).require_concepts()
        return query


class _PendingQuery:
    """One admitted query, waitable from sync code or a coroutine.

    Either ``hit`` is set (immediate cache hit) or ``future`` runs on
    the service's worker pool; both flavours of ``wait`` release the
    admission slot and record the request exactly once.
    """

    __slots__ = ("_service", "_kind", "_start", "_timeout", "_hit",
                 "_key", "_epoch", "_future", "_span")

    def __init__(self, service: QueryService, kind: str, start: float,
                 timeout: float, *, hit: ServeResult | None = None,
                 key: CacheKey | None = None, epoch: int = 0,
                 future: "Future[RankedResults] | None" = None,
                 span: Any = None) -> None:
        self._service = service
        self._kind = kind
        self._start = start
        self._timeout = timeout
        self._hit = hit
        self._key = key
        self._epoch = epoch
        self._future = future
        self._span = span

    def wait(self) -> ServeResult:
        """Block for the result (at most the deadline)."""
        try:
            if self._hit is not None:
                return self._hit
            future = self._future
            if future is None:  # pragma: no cover - constructor contract
                raise QueryError("pending query has neither hit nor future")
            try:
                results = future.result(timeout=self._timeout)
            except TimeoutError:
                future.cancel()
                self._service._timeouts.inc()
                raise QueryTimeoutError(self._timeout) from None
            return self._store(results)
        finally:
            self._service._finish(self._start, self._kind, self._span)

    async def wait_async(self) -> ServeResult:
        """Await the result without blocking the event loop."""
        try:
            if self._hit is not None:
                return self._hit
            future = self._future
            if future is None:  # pragma: no cover - constructor contract
                raise QueryError("pending query has neither hit nor future")
            try:
                results = await asyncio.wait_for(
                    asyncio.wrap_future(future), self._timeout)
            except TimeoutError:
                future.cancel()
                self._service._timeouts.inc()
                raise QueryTimeoutError(self._timeout) from None
            return self._store(results)
        finally:
            self._service._finish(self._start, self._kind, self._span)

    def _store(self, results: RankedResults) -> ServeResult:
        # Analyze requests carry no key: their results stay out of the
        # cache (see QueryService._begin) but still feed the rollups.
        if self._key is not None:
            self._service.cache.put(self._key, self._epoch, results)
        self._service._observe_work(self._kind, results)
        return ServeResult(results, False, self._epoch)


class _PendingBatch:
    """One admitted batch, waitable from sync code or a coroutine.

    ``slots`` maps request order to either a ready :class:`ServeResult`
    (cache hit) or an index into the deduplicated miss list computed by
    the single worker future.  Both flavours of ``wait`` release the
    admission slot and record the request exactly once.
    """

    __slots__ = ("_service", "_kind", "_start", "_timeout", "_slots",
                 "_keys", "_epoch", "_future", "_span")

    def __init__(self, service: QueryService, kind: str, start: float,
                 timeout: float,
                 slots: list[ServeResult | int], keys: list[CacheKey],
                 epoch: int,
                 future: "Future[list[RankedResults]] | None", *,
                 span: Any = None) -> None:
        self._service = service
        self._kind = kind
        self._start = start
        self._timeout = timeout
        self._slots = slots
        self._keys = keys
        self._epoch = epoch
        self._future = future
        self._span = span

    def wait(self) -> list[ServeResult]:
        """Block for the full batch (at most the shared deadline)."""
        try:
            future = self._future
            if future is None:
                return self._assemble([])
            try:
                results = future.result(timeout=self._timeout)
            except TimeoutError:
                future.cancel()
                self._service._timeouts.inc()
                raise QueryTimeoutError(self._timeout) from None
            return self._assemble(results)
        finally:
            self._service._finish(self._start, f"{self._kind}:batch",
                                  self._span)

    async def wait_async(self) -> list[ServeResult]:
        """Await the full batch without blocking the event loop."""
        try:
            future = self._future
            if future is None:
                return self._assemble([])
            try:
                results = await asyncio.wait_for(
                    asyncio.wrap_future(future), self._timeout)
            except TimeoutError:
                future.cancel()
                self._service._timeouts.inc()
                raise QueryTimeoutError(self._timeout) from None
            return self._assemble(results)
        finally:
            self._service._finish(self._start, f"{self._kind}:batch",
                                  self._span)

    def _assemble(self, results: list[RankedResults]) -> list[ServeResult]:
        cache = self._service.cache
        for key, ranked in zip(self._keys, results):
            cache.put(key, self._epoch, ranked)
        for ranked in results:
            self._service._observe_work(self._kind, ranked)
        ordered: list[ServeResult] = []
        for slot in self._slots:
            if isinstance(slot, int):
                ordered.append(ServeResult(results[slot], False, self._epoch))
            else:
                ordered.append(slot)
        return ordered
