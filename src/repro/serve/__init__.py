"""repro.serve — concurrent query service over the search engine.

The serving stack the paper's batch experiments never needed but a
deployment does: a stdlib-only asyncio HTTP/JSON front end
(:mod:`repro.serve.http`) over a thread-pool query core
(:mod:`repro.serve.service`), with

* **admission control** (:mod:`repro.serve.admission`) — a hard
  in-flight ceiling that sheds overload with HTTP 429 + ``Retry-After``
  instead of queueing without bound, and a graceful-drain state machine
  for SIGTERM;
* **result caching** (:mod:`repro.serve.cache`) — a bounded LRU with
  optional TTL, keyed on normalized queries and invalidated by the
  engine's corpus-mutation epoch;
* **deadlines** — every query runs on a worker thread under a
  per-request deadline, surfacing
  :class:`repro.exceptions.QueryTimeoutError` (HTTP 504) instead of
  hanging clients;
* **observability** — ``serve.*`` counters/gauges/histograms and
  ``serve.request`` spans through :mod:`repro.obs`, exported at
  ``/metrics``;
* a **load generator** (:mod:`repro.serve.loadgen`) shared by the
  tests, the CI smoke job and the ``serve_cache_*`` bench scenarios.

Start a server with ``repro serve --ontology ... --corpus ...`` or
embed one with::

    service = QueryService(engine, ServeConfig(workers=4))
    handle = ServerHandle.start(service, port=0)

See ``docs/SERVING.md`` for the HTTP API and operational semantics.
"""

from __future__ import annotations

from repro.serve.admission import AdmissionController
from repro.serve.cache import (CacheKey, CacheStats, QueryCache,
                               normalize_key)
from repro.serve.config import ServeConfig
from repro.serve.http import QueryServer, ServerHandle, run_server
from repro.serve.loadgen import (LoadQuery, LoadReport, mixed_workload,
                                 run_load)
from repro.serve.service import QueryService, ServeResult

__all__ = [
    "ServeConfig",
    "QueryService",
    "ServeResult",
    "QueryCache",
    "CacheKey",
    "CacheStats",
    "normalize_key",
    "AdmissionController",
    "QueryServer",
    "ServerHandle",
    "run_server",
    "LoadQuery",
    "LoadReport",
    "mixed_workload",
    "run_load",
]
