"""Admission control: a bounded in-flight gate that sheds load early.

The classic overload failure is the unbounded queue: every request is
accepted, latency grows without bound, and by the time work reaches the
head of the queue the client has long given up — the service does all
of the work for none of the benefit.  The
:class:`AdmissionController` instead enforces a hard in-flight ceiling
at the door: requests past ``workers + queue_limit`` are refused
immediately with a typed :class:`repro.exceptions.ServiceOverloadedError`
(HTTP 429 + ``Retry-After``), which keeps latency for admitted requests
bounded and gives clients an honest back-pressure signal.

The controller also owns the graceful-drain state machine: after
:meth:`begin_drain` no new request is admitted
(:class:`repro.exceptions.ServiceClosedError`, HTTP 503) while
:meth:`wait_idle` lets shutdown block until the in-flight count reaches
zero.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
import threading

from repro.exceptions import (InvariantError, ServiceClosedError,
                              ServiceOverloadedError)


class AdmissionController:
    """Bounded concurrent-admission gate with drain support.

    Parameters
    ----------
    max_inflight:
        Hard ceiling on concurrently admitted requests.  ``0`` rejects
        everything (useful in tests and for maintenance mode).
    retry_after:
        Back-off hint (seconds) carried by the overload error.

    >>> gate = AdmissionController(1)
    >>> gate.admit(); gate.inflight
    1
    >>> gate.release(); gate.inflight
    0
    """

    def __init__(self, max_inflight: int, *,
                 retry_after: float = 1.0) -> None:
        if max_inflight < 0:
            raise ValueError(
                f"max_inflight must be >= 0, got {max_inflight}")
        self._limit = max_inflight
        self._retry_after = retry_after
        self._inflight = 0  # guarded by: _condition
        self._draining = False  # guarded by: _condition
        self._condition = threading.Condition()

    @property
    def limit(self) -> int:
        """The in-flight ceiling this gate enforces."""
        return self._limit

    @property
    def inflight(self) -> int:
        """Requests currently admitted and not yet released."""
        # Condition's default RLock is reentrant, so taking it here is
        # safe even from a thread already inside admit()/release().
        with self._condition:
            return self._inflight

    @property
    def draining(self) -> bool:
        """Whether :meth:`begin_drain` has been called."""
        with self._condition:
            return self._draining

    def admit(self) -> None:
        """Claim one slot or raise a typed refusal.

        Raises :class:`repro.exceptions.ServiceClosedError` once the
        gate is draining and
        :class:`repro.exceptions.ServiceOverloadedError` (carrying the
        ``retry_after`` hint) when the ceiling is reached.
        """
        with self._condition:
            if self._draining:
                raise ServiceClosedError()
            if self._inflight >= self._limit:
                raise ServiceOverloadedError(self._retry_after)
            self._inflight += 1

    def release(self) -> None:
        """Return one slot; wakes :meth:`wait_idle` waiters at zero."""
        with self._condition:
            if self._inflight <= 0:
                raise InvariantError("release() without a matching admit()")
            self._inflight -= 1
            if self._inflight == 0:
                self._condition.notify_all()

    @contextmanager
    def slot(self) -> Iterator[None]:
        """Context manager pairing :meth:`admit` with :meth:`release`."""
        self.admit()
        try:
            yield
        finally:
            self.release()

    def begin_drain(self) -> None:
        """Stop admitting; in-flight requests keep their slots."""
        with self._condition:
            self._draining = True
            self._condition.notify_all()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until nothing is in flight; ``False`` on timeout."""
        with self._condition:
            return self._condition.wait_for(
                lambda: self._inflight == 0, timeout)
