"""Query-result cache: LRU + optional TTL, invalidated by engine epoch.

Concept-based queries repeat heavily (the paper's workloads draw from a
skewed concept vocabulary, and Bhattacharya & Bhowmick's follow-up work
reuses concept-distance computations across queries for the same
reason), so a small result cache turns the serving hot path into a
dictionary lookup.  Three staleness mechanisms compose:

* **LRU** — the cache is bounded; the least recently *used* entry is
  evicted first;
* **TTL** — entries older than ``ttl_seconds`` (by the injected,
  monotonic ``clock``) are dropped on access;
* **epoch** — every entry records the
  :attr:`repro.core.engine.SearchEngine.epoch` it was computed under;
  a lookup presenting a newer epoch treats the entry as invalid, so no
  answer survives ``add_document``/``remove_document``.

Keys are *normalized* (:func:`normalize_key`): the concept set is
sorted, so ``["F", "I"]`` and ``["I", "F"]`` share one entry.

The cache is thread-safe (one lock around the ordered dict) and clock
injection keeps TTL behaviour deterministic under test.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Generic, TypeVar

from repro.types import ConceptId

_V = TypeVar("_V")

CacheKey = tuple[str, "tuple[str, ...] | tuple[int, ...]", int, str]
"""Normalized cache key: ``(kind, concept token, k, algorithm)``.

The concept token is either the sorted concept strings
(:func:`normalize_key`) or, when the service can consult the engine's
packed arena, the arena's epoch-prefixed interned-id tuple
(:meth:`repro.core.arena.PackedDeweyArena.cache_token`).  The two forms
never collide — one holds strings, the other ints — so a service can
mix them freely while the arena warms up.
"""


def normalize_key(kind: str, concepts: Iterable[ConceptId], k: int,
                  algorithm: str) -> CacheKey:
    """Build the canonical cache key for one query.

    Concept order must not matter — RDS over ``{F, I}`` is the same
    query however the client lists it — so the concept sequence is
    sorted and frozen into a tuple.

    >>> normalize_key("rds", ["I", "F"], 2, "knds")
    ('rds', ('F', 'I'), 2, 'knds')
    """
    return (kind, tuple(sorted(concepts)), int(k), algorithm)


@dataclass
class CacheStats:
    """Cumulative cache effectiveness counters.

    ``misses`` counts every lookup that did not return a value,
    *including* the ones broken down further as ``expirations`` (TTL)
    or ``invalidations`` (epoch); ``evictions`` counts LRU pressure.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0


class _Entry(Generic[_V]):
    """One cached value plus the epoch and time it was stored under."""

    __slots__ = ("value", "epoch", "stored_at")

    def __init__(self, value: _V, epoch: int, stored_at: float) -> None:
        self.value = value
        self.epoch = epoch
        self.stored_at = stored_at


class QueryCache(Generic[_V]):
    """Bounded, epoch-aware LRU result cache with optional TTL.

    Parameters
    ----------
    max_entries:
        LRU capacity; ``0`` disables the cache (every ``get`` misses,
        ``put`` is a no-op) without callers having to special-case it.
    ttl_seconds:
        Optional per-entry lifetime; ``None`` disables expiry.
    clock:
        Monotonic time source for TTL decisions.  Injected so tests can
        drive expiry deterministically (``repro lint``'s determinism
        rules stay meaningful: no wall-clock reads hide in here).

    >>> cache: QueryCache[str] = QueryCache(2)
    >>> cache.put(normalize_key("rds", ["F"], 1, "knds"), 0, "answer")
    >>> cache.get(normalize_key("rds", ["F"], 1, "knds"), 0)
    'answer'
    >>> cache.get(normalize_key("rds", ["F"], 1, "knds"), 1) is None
    True
    """

    def __init__(self, max_entries: int = 1024, *,
                 ttl_seconds: float | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_entries < 0:
            raise ValueError(
                f"max_entries must be >= 0, got {max_entries}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(
                f"ttl_seconds must be > 0 or None, got {ttl_seconds}")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[CacheKey, _Entry[_V]] = \
            OrderedDict()  # guarded by: _lock
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: CacheKey, epoch: int) -> _V | None:
        """Look up ``key`` as of corpus ``epoch``; ``None`` on any miss.

        An entry stored under a different epoch is treated as stale and
        dropped (counted under ``stats.invalidations``); an entry past
        its TTL is dropped too (``stats.expirations``).  A hit refreshes
        the entry's LRU position.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.epoch != epoch:
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return None
            if self.ttl_seconds is not None \
                    and self._clock() - entry.stored_at > self.ttl_seconds:
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.value

    def put(self, key: CacheKey, epoch: int, value: _V) -> None:
        """Store ``value`` for ``key`` as computed under ``epoch``.

        Replaces any existing entry for the key and evicts from the cold
        end until the cache fits ``max_entries`` again.
        """
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = _Entry(value, epoch, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def keys(self) -> list[CacheKey]:
        """Current keys, coldest first (LRU order) — for inspection."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries
