"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class.  Errors are grouped by subsystem: ontology construction
and validation, corpus handling, index backends, and query evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvariantError(ReproError):
    """An internal invariant the algorithms rely on was violated.

    Raised where the code used to ``assert``: these conditions are
    unreachable through the public API, but ``assert`` statements vanish
    under ``python -O`` while the invariants (shared root, deduplicated
    radix nodes) are load-bearing for result correctness, so they are
    checked with a real exception (rule RPR005 of ``repro lint``).
    """


class OntologyError(ReproError):
    """Base class for ontology construction and validation errors."""


class UnknownConceptError(OntologyError, KeyError):
    """A concept identifier does not exist in the ontology."""

    def __init__(self, concept_id: str) -> None:
        super().__init__(f"unknown concept: {concept_id!r}")
        self.concept_id = concept_id


class DuplicateConceptError(OntologyError):
    """A concept identifier was added to an ontology twice."""

    def __init__(self, concept_id: str) -> None:
        super().__init__(f"duplicate concept: {concept_id!r}")
        self.concept_id = concept_id


class CycleError(OntologyError):
    """The is-a edges of an ontology contain a cycle.

    Concept hierarchies must be directed acyclic graphs; a cycle makes both
    Dewey labelling and shortest valid-path distances undefined.
    """

    def __init__(self, cycle: list[str]) -> None:
        super().__init__(f"ontology contains a cycle: {' -> '.join(cycle)}")
        self.cycle = cycle


class RootError(OntologyError):
    """The ontology does not have exactly one root concept.

    The D-Radix correctness argument (Section 4.3 of the paper) relies on a
    single root, so multi-rooted hierarchies must be normalized first (see
    :meth:`repro.ontology.builder.OntologyBuilder.add_virtual_root`).
    """


class DeweyError(OntologyError):
    """A Dewey address is malformed or does not resolve to a concept."""


class ParseError(ReproError):
    """An ontology or corpus input file could not be parsed."""

    def __init__(self, message: str, *, path: str | None = None,
                 line: int | None = None) -> None:
        location = ""
        if path is not None:
            location = f" ({path}" + (f":{line}" if line is not None else "") + ")"
        super().__init__(message + location)
        self.path = path
        self.line = line


class CorpusError(ReproError):
    """Base class for document and collection errors."""


class UnknownDocumentError(CorpusError, KeyError):
    """A document identifier does not exist in the collection."""

    def __init__(self, doc_id: str) -> None:
        super().__init__(f"unknown document: {doc_id!r}")
        self.doc_id = doc_id


class EmptyDocumentError(CorpusError):
    """A document without concepts was used where concepts are required.

    Both the document-query distance (Eq. 2) and the symmetric
    document-document distance (Eq. 3) are undefined for concept-free
    documents, because ``min`` over an empty concept set has no value.
    """

    def __init__(self, doc_id: str) -> None:
        super().__init__(f"document has no concepts: {doc_id!r}")
        self.doc_id = doc_id


class ArenaSnapshotError(ReproError):
    """A shared arena snapshot cannot be attached.

    Raised by :func:`repro.core.sharena.attach_view` when the named
    segment is missing, carries a foreign or newer header, or stamps a
    different epoch than the attacher expected.  Shard workers treat it
    as a signal to fall back to packing a private arena
    (:func:`repro.core.sharena.try_attach`), never as fatal.
    """


class IndexError_(ReproError):
    """Base class for index backend errors (named to avoid shadowing
    the :class:`IndexError` builtin)."""


class QueryError(ReproError):
    """A query is malformed (empty, unknown concepts, invalid parameters)."""


class ServeError(ReproError):
    """Base class for query-service (:mod:`repro.serve`) errors."""


class QueryTimeoutError(ServeError):
    """A served query exceeded its deadline.

    The service abandons the response (the worker thread may still be
    finishing the computation), so callers must treat the result as
    unknown, not failed — retrying with a larger ``deadline_seconds`` or
    a smaller ``k`` is the usual recovery.
    """

    def __init__(self, seconds: float) -> None:
        super().__init__(f"query exceeded its {seconds:g}s deadline")
        self.seconds = seconds


class ServiceOverloadedError(ServeError):
    """Admission control rejected a request because the service is full.

    Raised *before* any query work happens — load is shed at the door
    (HTTP 429) instead of queueing until every caller times out.
    ``retry_after`` is the suggested client back-off in seconds (the
    HTTP layer forwards it as a ``Retry-After`` header).
    """

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"service overloaded; retry after {retry_after:g}s")
        self.retry_after = retry_after


class ServiceClosedError(ServeError):
    """The service is draining or stopped and accepts no new queries.

    Emitted during graceful shutdown (SIGTERM): in-flight queries finish,
    new ones are refused (HTTP 503) so load balancers fail over cleanly.
    """

    def __init__(self) -> None:
        super().__init__("service is draining; no new queries accepted")


class ShardError(ServeError):
    """Base class for sharded-serving (:mod:`repro.shard`) errors.

    A subclass of :class:`ServeError` so serve-layer handlers that
    already map service errors to HTTP responses catch shard failures
    without new plumbing; the HTTP layer maps it to 503.
    """


class ShardProtocolError(ShardError):
    """The coordinator/worker framing or handshake was violated.

    Raised on a torn frame (EOF mid-message), an oversized frame, an
    authentication-token mismatch, or an out-of-protocol message.  Any
    of these means the link is unusable; the coordinator tears the
    worker down rather than attempting to resynchronize a byte stream.
    """


class ShardTimeoutError(ShardError):
    """A shard worker failed to answer within the per-shard timeout.

    The worker may be wedged rather than dead, so the coordinator
    treats this exactly like a crash: kill, respawn, retry once.
    """

    def __init__(self, shard: int, seconds: float) -> None:
        super().__init__(
            f"shard {shard} did not answer within {seconds:g}s")
        self.shard = shard
        self.seconds = seconds


class ShardUnavailableError(ShardError):
    """A shard worker is down and one respawn-and-retry already failed.

    The scatter-gather answer would be missing that partition's
    documents, so the query fails (HTTP 503) instead of silently
    returning a partial ranking.
    """

    def __init__(self, shard: int, reason: str = "") -> None:
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"shard {shard} is unavailable after respawn-and-retry"
            f"{detail}")
        self.shard = shard
