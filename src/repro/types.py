"""Shared type aliases and small value objects used across the library.

The library identifies ontology concepts and corpus documents by plain
strings, mirroring SNOMED-CT concept identifiers (numeric strings) and EMR
note identifiers.  Dewey path addresses are tuples of 1-based child indices;
the empty tuple is the address of the root (Section 3.1 of the paper).
"""

from __future__ import annotations

from typing import Tuple

ConceptId = str
"""Identifier of an ontology concept (e.g. a SNOMED-CT SCTID)."""

DocId = str
"""Identifier of a corpus document (e.g. an EMR note id)."""

DeweyAddress = Tuple[int, ...]
"""A root-to-concept path label: a tuple of 1-based child indices.

The root's address is the empty tuple.  If a concept has address ``p`` then
its ``j``-th child (in edge insertion order) reachable through that path has
address ``p + (j,)``.  Tuples compare lexicographically, which is exactly the
order in which the DRC algorithm merges the document and query address lists.
"""

INFINITY = float("inf")
"""Distance used for "not yet reached" during DRC tuning (Section 4.3)."""


def format_dewey(address: DeweyAddress) -> str:
    """Render a Dewey address in the paper's dotted notation.

    >>> format_dewey((1, 1, 1, 2))
    '1.1.1.2'
    >>> format_dewey(())
    'ε'
    """
    if not address:
        return "ε"
    return ".".join(str(component) for component in address)


def parse_dewey(text: str) -> DeweyAddress:
    """Parse the dotted notation back into an address tuple.

    >>> parse_dewey('1.1.1.2')
    (1, 1, 1, 2)
    >>> parse_dewey('ε')
    ()
    """
    text = text.strip()
    if not text or text == "ε":
        return ()
    return tuple(int(part) for part in text.split("."))


def common_prefix_length(left: DeweyAddress, right: DeweyAddress) -> int:
    """Length of the longest common prefix of two addresses.

    This is the workhorse of both the Dewey-pair distance identity
    (``|p1| + |p2| - 2 * lcp``) and D-Radix edge splitting.

    Identical tuples short-circuit before the component walk: the
    interned-address hot paths compare an address against itself often
    (the ``is`` check is free) and equal addresses of the same length
    are common in dense ontologies (the ``==`` check is a single C-level
    memcmp for int tuples).

    >>> common_prefix_length((1, 2, 3), (1, 2, 4))
    2
    >>> address = (1, 2, 3)
    >>> common_prefix_length(address, address)
    3
    """
    if left is right or left == right:
        return len(left)
    limit = min(len(left), len(right))
    count = 0
    while count < limit and left[count] == right[count]:
        count += 1
    return count
