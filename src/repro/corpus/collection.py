"""Document collections and corpus statistics (Table 3 of the paper).

A :class:`DocumentCollection` is an ordered, id-addressable container of
:class:`~repro.corpus.document.Document` objects.  It is the unit the
search algorithms operate over, and it knows how to summarize itself the
way the paper's Table 3 does: total documents, total distinct concepts,
average tokens per document and average concepts per document.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass

from repro.corpus.document import Document
from repro.exceptions import CorpusError, UnknownDocumentError
from repro.types import ConceptId, DocId


@dataclass(frozen=True)
class CorpusStats:
    """The Table 3 row set for one corpus."""

    name: str
    total_documents: int
    total_concepts: int
    """Number of *distinct* concepts appearing anywhere in the corpus."""
    avg_tokens_per_document: float
    avg_concepts_per_document: float
    """Average size of the per-document concept set."""

    def as_rows(self) -> list[tuple[str, str]]:
        """Key/value rows matching the layout of Table 3."""
        return [
            ("Total Documents", f"{self.total_documents:,}"),
            ("Total Concepts", f"{self.total_concepts:,}"),
            ("Avg. Tokens/Document", f"{self.avg_tokens_per_document:,.1f}"),
            ("Avg. Concepts/Document",
             f"{self.avg_concepts_per_document:,.1f}"),
        ]


class DocumentCollection:
    """An id-addressable set of documents.

    Iteration order is insertion order, which keeps every downstream
    computation (index construction, workload sampling) deterministic.
    """

    def __init__(self, documents: Iterable[Document] = (),
                 name: str = "corpus") -> None:
        self.name = name
        self._documents: dict[DocId, Document] = {}
        for document in documents:
            self.add(document)

    def add(self, document: Document) -> None:
        """Add a document; duplicate ids are an error."""
        if document.doc_id in self._documents:
            raise CorpusError(f"duplicate document id: {document.doc_id!r}")
        self._documents[document.doc_id] = document

    def remove(self, doc_id: DocId) -> Document:
        """Remove and return a document by id."""
        try:
            return self._documents.pop(doc_id)
        except KeyError:
            raise UnknownDocumentError(doc_id) from None

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._documents

    def get(self, doc_id: DocId) -> Document:
        """Fetch a document by id."""
        try:
            return self._documents[doc_id]
        except KeyError:
            raise UnknownDocumentError(doc_id) from None

    def doc_ids(self) -> list[DocId]:
        """All document ids, in insertion order."""
        return list(self._documents)

    def concept_frequencies(self) -> Counter[ConceptId]:
        """Collection frequency of each concept (documents containing it)."""
        counter: Counter[ConceptId] = Counter()
        for document in self._documents.values():
            counter.update(document.concept_set)
        return counter

    def distinct_concepts(self) -> set[ConceptId]:
        """All concepts appearing in at least one document."""
        result: set[ConceptId] = set()
        for document in self._documents.values():
            result.update(document.concept_set)
        return result

    def stats(self) -> CorpusStats:
        """Compute the Table 3 statistics for this collection."""
        total = len(self._documents)
        if total == 0:
            return CorpusStats(self.name, 0, 0, 0.0, 0.0)
        token_sum = sum(d.token_count for d in self._documents.values())
        concept_sum = sum(len(d) for d in self._documents.values())
        return CorpusStats(
            name=self.name,
            total_documents=total,
            total_concepts=len(self.distinct_concepts()),
            avg_tokens_per_document=token_sum / total,
            avg_concepts_per_document=concept_sum / total,
        )

    def filtered(self, predicate: Callable[[Document], bool],
                 name: str | None = None) -> "DocumentCollection":
        """A new collection keeping documents satisfying ``predicate``."""
        return DocumentCollection(
            (d for d in self._documents.values() if predicate(d)),
            name=name or self.name,
        )

    def restrict_concepts(self, allowed: set[ConceptId] | frozenset[ConceptId],
                          *, drop_empty: bool = True,
                          name: str | None = None) -> "DocumentCollection":
        """Apply a concept whitelist to every document.

        Documents left without any concept are dropped by default, because
        the distance measures are undefined on them.
        """
        allowed_frozen = frozenset(allowed)
        restricted = (
            document.restrict_to(allowed_frozen)
            for document in self._documents.values()
        )
        if drop_empty:
            restricted = (d for d in restricted if len(d) > 0)
        return DocumentCollection(restricted, name=name or self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DocumentCollection {self.name!r}: {len(self)} documents>"
