"""Corpus serialization: JSON-lines and CSV interchange.

JSONL is the primary format — one document per line with its id, concept
list, optional text, token count and metadata — because EMR exports are
line-oriented and append-friendly (matching the library's on-the-fly
insertion story).  The CSV format carries only ``(doc_id, concept)``
pairs plus a sizes sidecar and suits spreadsheet-style pipelines.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.exceptions import ParseError


def save_jsonl(collection: DocumentCollection, path: str | Path) -> None:
    """Write one JSON object per document.

    Keys: ``id``, ``concepts``; ``text``, ``tokens`` and ``metadata`` are
    included only when present/nonzero, keeping exports compact.
    """
    with open(path, "w", encoding="utf-8") as handle:
        for document in collection:
            payload: dict[str, object] = {
                "id": document.doc_id,
                "concepts": list(document.concepts),
            }
            if document.text is not None:
                payload["text"] = document.text
            if document.token_count:
                payload["tokens"] = document.token_count
            if document.metadata:
                payload["metadata"] = dict(document.metadata)
            handle.write(json.dumps(payload, ensure_ascii=False) + "\n")


def load_jsonl(path: str | Path, *, name: str | None = None
               ) -> DocumentCollection:
    """Read a JSONL corpus written by :func:`save_jsonl` (or by hand)."""
    path = Path(path)
    collection = DocumentCollection(name=name or path.stem)
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ParseError(f"invalid JSON: {error}",
                                 path=str(path), line=line_no) from None
            if not isinstance(payload, dict) or "id" not in payload \
                    or "concepts" not in payload:
                raise ParseError("document object needs 'id' and 'concepts'",
                                 path=str(path), line=line_no)
            collection.add(Document(
                str(payload["id"]),
                [str(concept) for concept in payload["concepts"]],
                text=payload.get("text"),
                token_count=payload.get("tokens"),
                metadata=payload.get("metadata"),
            ))
    return collection


def save_concept_csv(collection: DocumentCollection,
                     path: str | Path) -> None:
    """Write the corpus as flat ``doc_id,concept`` rows."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["doc_id", "concept"])
        for document in collection:
            for concept in document.concepts:
                writer.writerow([document.doc_id, concept])


def load_concept_csv(path: str | Path, *, name: str | None = None
                     ) -> DocumentCollection:
    """Read a ``doc_id,concept`` CSV into a collection.

    Document order follows first appearance; text and metadata are not
    representable in this format.
    """
    path = Path(path)
    grouped: dict[str, list[str]] = {}
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or header[:2] != ["doc_id", "concept"]:
            raise ParseError("concept CSV must start with doc_id,concept",
                             path=str(path))
        for row in reader:
            if not row:
                continue
            if len(row) < 2:
                raise ParseError("short concept CSV row", path=str(path))
            grouped.setdefault(row[0], []).append(row[1])
    return DocumentCollection(
        (Document(doc_id, concepts) for doc_id, concepts in grouped.items()),
        name=name or path.stem,
    )
