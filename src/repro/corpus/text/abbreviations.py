"""Medical abbreviation expansion (the paper's first preprocessing step).

"First, we analyzed each document in order to identify and expand
abbreviations based on a public list of medical abbreviations"
(Section 6.1).  :data:`DEFAULT_ABBREVIATIONS` ships a compact list of the
most common clinical shorthands; :class:`AbbreviationExpander` applies a
user-supplied or merged list token-wise, so "pt c/o sob" becomes
"patient complains of shortness of breath" before concept mapping runs.
"""

from __future__ import annotations

import re
from collections.abc import Mapping

_WORD_RE = re.compile(r"[A-Za-z0-9]+(?:['\-][A-Za-z0-9]+)*")

DEFAULT_ABBREVIATIONS: dict[str, str] = {
    "htn": "hypertension",
    "dm": "diabetes mellitus",
    "dm2": "type 2 diabetes mellitus",
    "mi": "myocardial infarction",
    "chf": "congestive heart failure",
    "cad": "coronary artery disease",
    "copd": "chronic obstructive pulmonary disease",
    "cva": "cerebrovascular accident",
    "uti": "urinary tract infection",
    "sob": "shortness of breath",
    "cp": "chest pain",
    "afib": "atrial fibrillation",
    "gerd": "gastroesophageal reflux disease",
    "ckd": "chronic kidney disease",
    "dvt": "deep vein thrombosis",
    "pe": "pulmonary embolism",
    "bp": "blood pressure",
    "hr": "heart rate",
    "pt": "patient",
    "pts": "patients",
    "hx": "history",
    "fx": "fracture",
    "tx": "treatment",
    "dx": "diagnosis",
    "sx": "symptoms",
    "abd": "abdominal",
    "bilat": "bilateral",
    "c/o": "complains of",
    "w/o": "without",
    "s/p": "status post",
    "r/o": "rule out",
    "yo": "year old",
    "prn": "as needed",
    "bid": "twice daily",
    "qd": "daily",
    "po": "by mouth",
}


class AbbreviationExpander:
    """Token-wise abbreviation expansion.

    Parameters
    ----------
    table:
        Abbreviation -> expansion map; merged over (or replacing) the
        built-in defaults.
    include_defaults:
        Set false to use only the supplied table.
    """

    def __init__(self, table: Mapping[str, str] | None = None, *,
                 include_defaults: bool = True) -> None:
        merged: dict[str, str] = dict(
            DEFAULT_ABBREVIATIONS) if include_defaults else {}
        if table:
            merged.update({key.lower(): value for key, value in table.items()})
        self._table = merged
        # Abbreviations containing "/" (c/o, s/p, ...) span word-token
        # boundaries, so they are replaced by a literal pre-pass.
        slashed = {key for key in merged if "/" in key}
        self._slash_re = None
        if slashed:
            alternation = "|".join(
                re.escape(key) for key in sorted(slashed, key=len,
                                                 reverse=True)
            )
            self._slash_re = re.compile(rf"(?<!\w)(?:{alternation})(?!\w)",
                                        re.IGNORECASE)

    def expand(self, text: str) -> str:
        """Expand every known abbreviation in ``text``, in place.

        Word tokens are lowercased and substituted; punctuation, sentence
        boundaries and spacing are preserved, so negation scoping further
        down the pipeline still sees the original sentence structure.

        >>> AbbreviationExpander().expand("Pt with HTN and SOB")
        'patient with hypertension and shortness of breath'
        """
        if self._slash_re is not None:
            text = self._slash_re.sub(
                lambda match: self._table[match.group(0).lower()], text)
        return _WORD_RE.sub(
            lambda match: self._table.get(match.group(0).lower(),
                                          match.group(0).lower()),
            text,
        )

    def known(self, abbreviation: str) -> bool:
        """True if the abbreviation has an expansion."""
        return abbreviation.lower() in self._table

    def __len__(self) -> int:
        return len(self._table)
