"""Lightweight tokenization for clinical notes.

Clinical text is messy — dosages ("500MG"), list bullets, abbreviations
with periods — so the tokenizer stays deliberately simple and predictable:
words are maximal runs of letters/digits (keeping intra-word hyphens and
apostrophes), sentences split on ``.``, ``;``, ``!``, ``?`` and newlines.
Everything downstream (mapping, negation windows) works on word tokens.
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z0-9]+(?:['\-][A-Za-z0-9]+)*")
_SENTENCE_SPLIT_RE = re.compile(r"[.;!?\n]+")


def tokens(text: str) -> list[str]:
    """Word tokens of ``text``, lowercased.

    >>> tokens("Patient here for follow-up diabetes care.")
    ['patient', 'here', 'for', 'follow-up', 'diabetes', 'care']
    """
    return [match.group(0).lower() for match in _WORD_RE.finditer(text)]


def sentences(text: str) -> list[str]:
    """Sentence-ish segments of ``text`` (non-empty, stripped).

    >>> sentences("No fever. Denies chest pain; stable.")
    ['No fever', 'Denies chest pain', 'stable']
    """
    return [
        segment.strip()
        for segment in _SENTENCE_SPLIT_RE.split(text)
        if segment.strip()
    ]


def token_count(text: str) -> int:
    """Number of word tokens (the Table 3 tokens/document statistic)."""
    return len(tokens(text))
