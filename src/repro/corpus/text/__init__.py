"""Concept extraction from clinical text (the paper's MetaMap stage).

Section 6.1 of the paper links notes to SNOMED-CT in four steps: expand
abbreviations against a public list, identify ontology concepts in the
text, detect negation, and keep only positive-polarity concepts.  This
subpackage implements the same pipeline self-contained:

* :mod:`repro.corpus.text.tokenizer` — sentence and word tokenization;
* :mod:`repro.corpus.text.abbreviations` — medical abbreviation expansion;
* :mod:`repro.corpus.text.negation` — a NegEx-style negation detector;
* :mod:`repro.corpus.text.mapper` — longest-match gazetteer mapping of
  term spans to ontology concepts (labels and synonyms);
* :mod:`repro.corpus.text.pipeline` — the assembled
  :class:`~repro.corpus.text.pipeline.ConceptExtractor` producing
  :class:`~repro.corpus.document.Document` objects.
"""

from repro.corpus.text.abbreviations import AbbreviationExpander
from repro.corpus.text.mapper import ConceptMapper
from repro.corpus.text.negation import NegationDetector
from repro.corpus.text.notegen import generate_note, notes_corpus
from repro.corpus.text.pipeline import ConceptExtractor, ConceptMention
from repro.corpus.text.sections import (
    SectionPolicy,
    extract_with_sections,
    split_sections,
)
from repro.corpus.text.tokenizer import sentences, tokens

__all__ = [
    "tokens",
    "sentences",
    "AbbreviationExpander",
    "NegationDetector",
    "ConceptMapper",
    "ConceptExtractor",
    "ConceptMention",
    "SectionPolicy",
    "split_sections",
    "extract_with_sections",
    "generate_note",
    "notes_corpus",
]
