"""The assembled concept-extraction pipeline (Section 6.1's procedure).

``text -> expand abbreviations -> sentence split -> map term spans ->
drop negated mentions -> positive-polarity concept set``.

:class:`ConceptExtractor` exposes both the mention-level view (spans with
polarity, useful for inspection and the examples) and the document-level
view the search algorithms consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.corpus.document import Document
from repro.corpus.text.abbreviations import AbbreviationExpander
from repro.corpus.text.mapper import ConceptMapper
from repro.corpus.text.negation import NegationDetector
from repro.corpus.text.tokenizer import sentences, tokens
from repro.ontology.graph import Ontology
from repro.types import ConceptId, DocId


@dataclass(frozen=True)
class ConceptMention:
    """One matched term span."""

    concept_id: ConceptId
    text: str
    sentence_index: int
    start: int
    """Token offset of the span within its sentence."""
    end: int
    """Exclusive token end offset."""
    negated: bool


class ConceptExtractor:
    """End-to-end extraction of positive-polarity concepts from text.

    Parameters
    ----------
    mapper:
        Term gazetteer (build one with
        :meth:`repro.corpus.text.mapper.ConceptMapper.from_ontology`).
    expander, negation:
        Pipeline stages; defaults are the built-in abbreviation list and
        NegEx-style detector.

    Example
    -------
    >>> mapper = ConceptMapper({"aortic valve stenosis": "C1"})
    >>> extractor = ConceptExtractor(mapper)
    >>> extractor.extract_concepts("Pt w/o aortic valve stenosis")
    set()
    >>> extractor.extract_concepts("Pt with aortic valve stenosis")
    {'C1'}
    """

    def __init__(self, mapper: ConceptMapper, *,
                 expander: AbbreviationExpander | None = None,
                 negation: NegationDetector | None = None) -> None:
        self._mapper = mapper
        self._expander = expander or AbbreviationExpander()
        self._negation = negation or NegationDetector()

    @classmethod
    def for_ontology(cls, ontology: Ontology) -> "ConceptExtractor":
        """Extractor whose gazetteer covers the whole ontology."""
        return cls(ConceptMapper.from_ontology(ontology))

    def mentions(self, text: str) -> list[ConceptMention]:
        """All matched term spans with their negation polarity."""
        expanded = self._expander.expand(text)
        result: list[ConceptMention] = []
        for sentence_index, sentence in enumerate(sentences(expanded)):
            sentence_tokens = tokens(sentence)
            negated_positions = self._negation.negated_positions(
                sentence_tokens)
            for start, end, concept_id in self._mapper.spans(sentence_tokens):
                is_negated = any(
                    index in negated_positions for index in range(start, end)
                )
                result.append(ConceptMention(
                    concept_id=concept_id,
                    text=" ".join(sentence_tokens[start:end]),
                    sentence_index=sentence_index,
                    start=start,
                    end=end,
                    negated=is_negated,
                ))
        return result

    def extract_concepts(self, text: str) -> set[ConceptId]:
        """The positive-polarity concept set of ``text``.

        A concept mentioned both positively and negatively in the same
        note is kept (the positive mention wins), matching the mention-
        level filtering the paper describes.
        """
        positive = {
            mention.concept_id for mention in self.mentions(text)
            if not mention.negated
        }
        return positive

    def to_document(self, doc_id: DocId, text: str,
                    **metadata: Any) -> Document:
        """Build a ranked-searchable :class:`Document` from raw text."""
        return Document(
            doc_id,
            self.extract_concepts(text),
            text=text,
            token_count=len(tokens(text)),
            metadata=metadata or None,
        )
