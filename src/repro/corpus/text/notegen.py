"""Synthetic clinical-note generation (a faithful MIMIC-II stand-in).

The corpus generators in :mod:`repro.corpus.generators` produce concept
*sets*; this module renders such sets as plausible clinical note *text* —
sectioned, abbreviation-laden, with deliberate negations — so the full
extraction pipeline (expand → map → negate → filter) can be exercised and
validated at corpus scale: generating a note from a concept set and
re-extracting must recover exactly the positive concepts.

A generated note looks like::

    CHIEF COMPLAINT: patient presents with acute cardiac finding.
    HISTORY: hx of chronic renal disorder. denies focal neural lesion.
    ASSESSMENT: findings consistent with diffuse hepatic edema. stable.
    PLAN: continue current management. follow up in 2 weeks.

Negated mentions come from a *decoy* concept list (concepts that must NOT
end up in the document's concept set), making the generator double as a
negation-detection stress test.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.corpus.collection import DocumentCollection
from repro.corpus.text.pipeline import ConceptExtractor
from repro.ontology.graph import Ontology
from repro.types import ConceptId

_POSITIVE_TEMPLATES: Sequence[str] = (
    "patient presents with {term}",
    "pt reports {term}",
    "exam notable for {term}",
    "imaging demonstrates {term}",
    "findings consistent with {term}",
    "hx of {term}",
    "ongoing {term} managed medically",
    "labs suggest {term}",
)

_NEGATIVE_TEMPLATES: Sequence[str] = (
    "no evidence of {term}",
    "denies {term}",
    "absence of {term}",
    "negative for {term}",
    "{term} was ruled out",
    "without {term}",
)

_FILLER_SENTENCES: Sequence[str] = (
    "vitals stable",
    "continue current management",
    "follow up in 2 weeks",
    "medications reviewed and reconciled",
    "discussed plan with patient",
    "tolerating diet well",
    "no acute distress noted",
)

_SECTIONS: Sequence[str] = (
    "CHIEF COMPLAINT", "HISTORY", "EXAM", "ASSESSMENT", "PLAN",
)


def generate_note(ontology: Ontology, positive: Sequence[ConceptId],
                  negated: Sequence[ConceptId] = (), *,
                  seed: int = 0, filler_rate: float = 0.4) -> str:
    """Render concept lists as sectioned clinical-note text.

    Every concept in ``positive`` is mentioned affirmatively at least
    once; every concept in ``negated`` is mentioned exactly once inside a
    negation scope.  Re-extracting with the ontology's gazetteer
    recovers ``set(positive)`` (asserted by the round-trip tests).
    """
    rng = random.Random(seed)
    sentences: list[str] = []
    for concept in positive:
        template = _POSITIVE_TEMPLATES[
            rng.randrange(len(_POSITIVE_TEMPLATES))]
        sentences.append(template.format(term=ontology.label(concept)))
    for concept in negated:
        template = _NEGATIVE_TEMPLATES[
            rng.randrange(len(_NEGATIVE_TEMPLATES))]
        sentences.append(template.format(term=ontology.label(concept)))
    rng.shuffle(sentences)
    filler_count = round(len(sentences) * filler_rate) + 1
    for _ in range(filler_count):
        position = rng.randrange(len(sentences) + 1)
        sentences.insert(
            position,
            _FILLER_SENTENCES[rng.randrange(len(_FILLER_SENTENCES))],
        )

    # Distribute sentences over note sections.
    lines: list[str] = []
    per_section = max(1, len(sentences) // len(_SECTIONS))
    for index, section in enumerate(_SECTIONS):
        start = index * per_section
        end = start + per_section if index < len(_SECTIONS) - 1 else None
        chunk = sentences[start:end]
        if not chunk:
            continue
        lines.append(f"{section}: " + ". ".join(chunk) + ".")
    return "\n".join(lines)


def notes_corpus(ontology: Ontology, *, num_docs: int,
                 mean_concepts: float = 8.0, negation_rate: float = 0.3,
                 seed: int = 0, name: str = "NOTES",
                 doc_prefix: str = "note") -> DocumentCollection:
    """Generate a corpus of raw notes and extract it through the pipeline.

    Each document is born as text: positive concepts are sampled from the
    ontology, decoy concepts are added under negation, the note is
    rendered, and the concept set is produced by
    :class:`~repro.corpus.text.pipeline.ConceptExtractor` — the same path
    real notes would take.  The decoys therefore exercise (and are
    removed by) negation detection.
    """
    rng = random.Random(seed)
    candidates = [
        concept for concept in ontology.concepts()
        if concept != ontology.root
    ]
    if not candidates:
        raise ValueError("ontology has no non-root concepts")
    extractor = ConceptExtractor.for_ontology(ontology)
    documents = []
    for index in range(num_docs):
        size = max(1, round(rng.gauss(mean_concepts, mean_concepts * 0.3)))
        size = min(size, len(candidates))
        positive = rng.sample(candidates, size)
        decoy_count = round(size * negation_rate)
        decoy_pool = [c for c in candidates if c not in set(positive)]
        negated = rng.sample(decoy_pool, min(decoy_count, len(decoy_pool)))
        text = generate_note(ontology, positive, negated,
                             seed=rng.randrange(1 << 30))
        document = extractor.to_document(
            f"{doc_prefix}{index:05d}", text,
            generated_positive=len(positive),
            generated_negated=len(negated),
        )
        documents.append(document)
    return DocumentCollection(documents, name=name)
