"""NegEx-style negation detection.

"According to domain experts, negated concepts are not relevant when
measuring inter-patient similarity.  Therefore we only consider concepts
with positive polarity; e.g., we exclude concepts contained in phrases
such as 'absence of bradycardia'" (Section 6.1).

The detector follows the classic NegEx recipe (Chapman et al.): a list of
*preceding* negation triggers ("no", "denies", "absence of", …) negates
the following tokens up to a window limit or a conjunction/termination
token; a list of *following* triggers ("... was ruled out") negates a
window of tokens before them.  Pseudo-negations ("no increase") are left
positive.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

PRECEDING_TRIGGERS: tuple[tuple[str, ...], ...] = (
    ("no",), ("not",), ("without",), ("denies",), ("denied",),
    ("negative", "for"), ("free", "of"), ("absence", "of"), ("absent",),
    ("no", "evidence", "of"), ("no", "sign", "of"), ("no", "signs", "of"),
    ("rule", "out"), ("ruled", "out", "for"), ("never", "had"),
    ("unremarkable", "for"),
)

FOLLOWING_TRIGGERS: tuple[tuple[str, ...], ...] = (
    ("was", "ruled", "out"), ("is", "ruled", "out"),
    ("were", "ruled", "out"), ("unlikely",),
)

PSEUDO_TRIGGERS: tuple[tuple[str, ...], ...] = (
    ("no", "increase"), ("no", "change"), ("not", "only"),
    ("no", "further"),
)

TERMINATION_TOKENS: frozenset[str] = frozenset({
    "but", "however", "although", "except", "apart", "besides", "still",
})


class NegationDetector:
    """Token-window negation scoping.

    Parameters
    ----------
    window:
        Maximum number of tokens a preceding trigger negates (NegEx
        traditionally uses ~6).
    """

    def __init__(self, *, window: int = 6,
                 preceding: Iterable[Sequence[str]] = PRECEDING_TRIGGERS,
                 following: Iterable[Sequence[str]] = FOLLOWING_TRIGGERS,
                 pseudo: Iterable[Sequence[str]] = PSEUDO_TRIGGERS) -> None:
        self._window = window
        self._preceding = [tuple(t) for t in preceding]
        self._following = [tuple(t) for t in following]
        self._pseudo = [tuple(t) for t in pseudo]

    def negated_positions(self, sentence_tokens: Sequence[str]) -> set[int]:
        """Indices of tokens inside some negation scope.

        >>> detector = NegationDetector()
        >>> toks = "absence of bradycardia with stable vitals".split()
        >>> 2 in detector.negated_positions(toks)
        True
        """
        negated: set[int] = set()
        count = len(sentence_tokens)
        position = 0
        while position < count:
            matched = self._match_at(sentence_tokens, position, self._pseudo)
            if matched:
                position += matched
                continue
            matched = self._match_at(
                sentence_tokens, position, self._preceding)
            if matched:
                scope_start = position + matched
                scope_end = min(count, scope_start + self._window)
                for index in range(scope_start, scope_end):
                    if sentence_tokens[index] in TERMINATION_TOKENS:
                        break
                    negated.add(index)
                position += matched
                continue
            matched = self._match_at(
                sentence_tokens, position, self._following)
            if matched:
                scope_start = max(0, position - self._window)
                negated.update(range(scope_start, position))
                position += matched
                continue
            position += 1
        return negated

    @staticmethod
    def _match_at(sentence_tokens: Sequence[str], position: int,
                  triggers: list[tuple[str, ...]]) -> int:
        """Length of the longest trigger starting at ``position`` (0 if
        none)."""
        best = 0
        for trigger in triggers:
            length = len(trigger)
            if length <= best:
                continue
            if tuple(sentence_tokens[position:position + length]) == trigger:
                best = length
        return best
