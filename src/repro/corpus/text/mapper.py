"""Gazetteer mapping of term spans to ontology concepts.

The stand-in for MetaMap's candidate mapping: a dictionary of multi-word
terms (ontology preferred names plus synonyms) is matched greedily against
the token stream, longest span first, so "aortic valve stenosis" maps to
the specific concept rather than to "stenosis".  Matching is exact on
normalized tokens — the paper's retrieval-quality questions are out of
scope (Section 6.2 cites prior studies), so no fuzzy matching is needed.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.ontology.graph import Ontology
from repro.types import ConceptId


class ConceptMapper:
    """Longest-match lookup of token spans to concept ids.

    Parameters
    ----------
    terms:
        Term -> concept id map.  Terms are normalized to lowercase
        token tuples; multiple terms may map to the same concept
        (synonyms), but one term maps to exactly one concept.
    """

    def __init__(self, terms: Mapping[str, ConceptId]) -> None:
        self._by_tokens: dict[tuple[str, ...], ConceptId] = {}
        self._max_len = 0
        for term, concept_id in terms.items():
            token_key = tuple(term.lower().split())
            if not token_key:
                continue
            self._by_tokens[token_key] = concept_id
            self._max_len = max(self._max_len, len(token_key))

    @classmethod
    def from_ontology(cls, ontology: Ontology, *,
                      concepts: Iterable[ConceptId] | None = None
                      ) -> "ConceptMapper":
        """Build the gazetteer from preferred names and synonyms."""
        terms: dict[str, ConceptId] = {}
        universe = concepts if concepts is not None else ontology.concepts()
        for concept_id in universe:
            terms[ontology.label(concept_id)] = concept_id
            for synonym in ontology.synonyms(concept_id):
                terms[synonym] = concept_id
        return cls(terms)

    def spans(self, sentence_tokens: Sequence[str]
              ) -> list[tuple[int, int, ConceptId]]:
        """Greedy longest-match spans over one token sequence.

        Returns ``(start, end, concept)`` triples with ``end`` exclusive;
        matched spans do not overlap and earlier/longer matches win.
        """
        matches: list[tuple[int, int, ConceptId]] = []
        position = 0
        count = len(sentence_tokens)
        while position < count:
            found = None
            limit = min(self._max_len, count - position)
            for length in range(limit, 0, -1):
                key = tuple(sentence_tokens[position:position + length])
                concept_id = self._by_tokens.get(key)
                if concept_id is not None:
                    found = (position, position + length, concept_id)
                    break
            if found is None:
                position += 1
            else:
                matches.append(found)
                position = found[1]
        return matches

    def __len__(self) -> int:
        return len(self._by_tokens)

    def __contains__(self, term: object) -> bool:
        if not isinstance(term, str):
            return False
        return tuple(term.lower().split()) in self._by_tokens
