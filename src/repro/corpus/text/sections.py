"""Clinical-note section handling.

Clinical notes are organized in labelled sections ("CHIEF COMPLAINT",
"FAMILY HISTORY", "MEDICATIONS", …), and extraction quality improves when
the section context is honoured: a disorder mentioned under FAMILY
HISTORY belongs to a relative, not the patient (the "experiencer"
dimension of the NegEx/ConText family), and MEDICATIONS sections name
drugs rather than findings.

:func:`split_sections` parses the common ``HEADER: body`` layout;
:class:`SectionPolicy` decides which sections contribute concepts.  The
:class:`~repro.corpus.text.pipeline.ConceptExtractor` stays
section-agnostic; :func:`extract_with_sections` composes the two.
"""

from __future__ import annotations

import re
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.corpus.text.pipeline import ConceptExtractor, ConceptMention
from repro.types import ConceptId

_HEADER_RE = re.compile(
    r"^(?P<header>[A-Z][A-Z /&-]{2,40}):\s*(?P<body>.*)$"
)

DEFAULT_EXCLUDED_SECTIONS: frozenset[str] = frozenset({
    "FAMILY HISTORY",
    "SOCIAL HISTORY",
    "ALLERGIES",
})
"""Sections whose mentions describe someone/something other than the
patient's current condition."""


@dataclass(frozen=True)
class Section:
    """One note section: its header (or None for preamble) and body."""

    header: str | None
    body: str
    order: int


def split_sections(text: str) -> list[Section]:
    """Split a note into sections on ``ALL-CAPS HEADER:`` lines.

    Text before the first header becomes a header-less preamble section.
    Bodies keep their line structure, so sentence splitting downstream is
    unaffected.

    >>> parts = split_sections("intro\\nPLAN: follow up\\nmore plan")
    >>> [(s.header, s.body) for s in parts]
    [(None, 'intro'), ('PLAN', 'follow up\\nmore plan')]
    """
    sections: list[Section] = []
    header: str | None = None
    body_lines: list[str] = []
    order = 0

    def flush() -> None:
        nonlocal order, body_lines
        body = "\n".join(body_lines).strip()
        if body or header is not None:
            sections.append(Section(header, body, order))
            order += 1
        body_lines = []

    for line in text.splitlines():
        match = _HEADER_RE.match(line.strip())
        if match:
            flush()
            header = match.group("header").strip()
            body_lines = [match.group("body")] if match.group("body") else []
        else:
            body_lines.append(line)
    flush()
    return sections


@dataclass(frozen=True)
class SectionPolicy:
    """Which sections contribute to the patient's concept set.

    ``excluded`` headers are dropped entirely; ``included``, when
    non-empty, acts as a whitelist instead.  Header matching is
    case-insensitive.
    """

    excluded: frozenset[str] = DEFAULT_EXCLUDED_SECTIONS
    included: frozenset[str] = field(default_factory=frozenset)

    def admits(self, header: str | None) -> bool:
        """True when the section's mentions count for the patient."""
        if header is None:
            return not self.included
        normalized = header.upper()
        if self.included:
            return normalized in {h.upper() for h in self.included}
        return normalized not in {h.upper() for h in self.excluded}


@dataclass(frozen=True)
class SectionedMention:
    """A concept mention together with its section context."""

    mention: ConceptMention
    section: str | None
    admitted: bool


def extract_with_sections(
    extractor: ConceptExtractor, text: str, *,
    policy: SectionPolicy | None = None,
) -> tuple[set[ConceptId], list[SectionedMention]]:
    """Section-aware extraction.

    Returns the positive-polarity concept set drawn only from admitted
    sections, plus every mention with its section and admission flag (for
    inspection — excluded-section mentions are reported, not silently
    dropped).
    """
    policy = policy or SectionPolicy()
    concepts: set[ConceptId] = set()
    annotated: list[SectionedMention] = []
    for section in split_sections(text):
        admitted = policy.admits(section.header)
        for mention in extractor.mentions(section.body):
            annotated.append(SectionedMention(mention, section.header,
                                              admitted))
            if admitted and not mention.negated:
                concepts.add(mention.concept_id)
    return concepts, annotated


def section_headers(text: str) -> list[str]:
    """The headers present in a note, in order (preamble excluded)."""
    return [
        section.header for section in split_sections(text)
        if section.header is not None
    ]


def merge_policies(*policies: SectionPolicy) -> SectionPolicy:
    """Union of exclusions / intersection semantics for whitelists."""
    excluded: set[str] = set()
    included: set[str] = set()
    for policy in policies:
        excluded |= policy.excluded
        included |= policy.included
    return SectionPolicy(frozenset(excluded), frozenset(included))


def iter_admitted_bodies(text: str,
                         policy: SectionPolicy | None = None
                         ) -> Iterable[str]:
    """Bodies of admitted sections (e.g. to feed a plain extractor)."""
    policy = policy or SectionPolicy()
    for section in split_sections(text):
        if policy.admits(section.header):
            yield section.body
