"""The document model: an identifier plus a set of ontology concepts.

Following the biomedical literature the paper adopts (Section 1), a
document is represented by the set of positive-polarity ontology concepts
found in its text.  The raw text and token count are carried along for
corpus statistics (Table 3) and for the extraction pipeline, but play no
role in ranking.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.exceptions import EmptyDocumentError
from repro.types import ConceptId, DocId


class Document:
    """An immutable document: id, concept set, optional text.

    Parameters
    ----------
    doc_id:
        Unique identifier within a collection.
    concepts:
        The ontology concepts associated with the document.  Duplicates are
        collapsed; order is normalized to sorted for reproducibility.
    text:
        Optional raw note text (kept for the extraction pipeline/examples).
    token_count:
        Number of word tokens in the original text.  If omitted and text is
        given, a whitespace count is used.
    metadata:
        Free-form key/value payload (e.g. note type, patient id).
    """

    __slots__ = ("doc_id", "concepts", "concept_set", "text", "token_count",
                 "metadata")

    def __init__(self, doc_id: DocId, concepts: Iterable[ConceptId], *,
                 text: str | None = None, token_count: int | None = None,
                 metadata: Mapping[str, object] | None = None) -> None:
        self.doc_id = doc_id
        self.concept_set: frozenset[ConceptId] = frozenset(concepts)
        self.concepts: tuple[ConceptId, ...] = tuple(sorted(self.concept_set))
        self.text = text
        if token_count is None:
            token_count = len(text.split()) if text else 0
        self.token_count = token_count
        self.metadata: Mapping[str, object] = dict(metadata or {})

    def __len__(self) -> int:
        return len(self.concepts)

    def __contains__(self, concept_id: object) -> bool:
        return concept_id in self.concept_set

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Document):
            return NotImplemented
        return (self.doc_id == other.doc_id
                and self.concept_set == other.concept_set)

    def __hash__(self) -> int:
        return hash((self.doc_id, self.concept_set))

    def require_concepts(self) -> tuple[ConceptId, ...]:
        """Return the concepts, raising if the document has none.

        Distance computations (Eqs. 1-3) are undefined on concept-free
        documents, so ranking entry points call this up front.
        """
        if not self.concepts:
            raise EmptyDocumentError(self.doc_id)
        return self.concepts

    def restrict_to(self, allowed: frozenset[ConceptId] | set[ConceptId]
                    ) -> "Document":
        """A copy keeping only concepts present in ``allowed``.

        Used by the corpus-level concept filters (depth and collection
        frequency thresholds, Section 6.1).
        """
        return Document(
            self.doc_id,
            (cid for cid in self.concepts if cid in allowed),
            text=self.text,
            token_count=self.token_count,
            metadata=self.metadata,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Document {self.doc_id!r}: {len(self.concepts)} concepts>"
