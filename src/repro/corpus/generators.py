"""Synthetic EMR corpus generation (substitute for the MIMIC-II subset).

The paper evaluates on two corpora with deliberately opposite shapes
(Table 3):

* **PATIENT** — few documents (983), each huge (~707 concepts) and
  ontologically *cohesive*: all notes of a patient concern related
  conditions, so the concepts cluster in the ontology.  This is the regime
  where DRC calls are expensive and the best error threshold is 0.
* **RADIO** — many documents (12,373), each small (~125 concepts) and
  *sparse* in the ontology.  Here traversal dominates, DRC is cheap, and
  large error thresholds win.

:func:`generate_corpus` reproduces both regimes from two knobs: the mean
concepts per document and a *cohesion* factor.  A document is built by
sampling a few seed concepts and filling the rest of its concept set from
the seeds' valid-path neighborhoods; cohesion controls how much of the
document comes from neighborhoods versus uniform sampling.

Documents also carry a synthetic token count (and optionally pseudo-text
built from concept labels) so Table 3's tokens-per-document statistic has a
concrete source.
"""

from __future__ import annotations

import random

from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.ontology.graph import Ontology
from repro.ontology.traversal import ValidPathBFS
from repro.types import ConceptId

_FILLER_WORDS = (
    "patient", "presents", "with", "history", "of", "noted", "on", "exam",
    "stable", "follow", "up", "recommended", "daily", "continue", "plan",
    "assessment", "reviewed", "labs", "within", "normal", "limits",
)


def generate_corpus(ontology: Ontology, *, num_docs: int,
                    mean_concepts: float, cohesion: float = 0.7,
                    neighborhood_radius: int = 3,
                    tokens_per_concept: float = 5.0,
                    with_text: bool = False, seed: int = 0,
                    name: str = "corpus",
                    doc_prefix: str = "d") -> DocumentCollection:
    """Generate a synthetic corpus over an ontology.

    Parameters
    ----------
    ontology:
        The validated concept DAG to sample from.
    num_docs:
        Number of documents to generate.
    mean_concepts:
        Mean concept-set size; individual sizes are Gaussian around it
        (clipped to at least 1).
    cohesion:
        In ``[0, 1]``: the fraction of each document's concepts drawn from
        the valid-path neighborhoods of a few seed concepts rather than
        uniformly.  High cohesion mimics the PATIENT corpus, low cohesion
        the RADIO corpus.
    neighborhood_radius:
        BFS levels explored around each seed when sampling cohesively.
    tokens_per_concept:
        Expected ratio of text tokens to concepts (PATIENT ≈ 11.6,
        RADIO ≈ 2.2 in the paper), used to synthesize token counts.
    with_text:
        Also generate pseudo note text mentioning the concept labels; this
        feeds the extraction-pipeline examples but is off by default to
        keep large corpora cheap.
    seed:
        Seed for the private RNG; generation is deterministic.
    """
    if not 0 <= cohesion <= 1:
        raise ValueError("cohesion must be within [0, 1]")
    rng = random.Random(seed)
    concepts = [cid for cid in ontology.concepts() if cid != ontology.root]
    if not concepts:
        raise ValueError("ontology has no non-root concepts to sample")

    documents = []
    for index in range(num_docs):
        size = max(1, round(rng.gauss(mean_concepts, 0.3 * mean_concepts)))
        concept_set = _sample_document_concepts(
            rng, ontology, concepts, size, cohesion, neighborhood_radius
        )
        token_count = max(
            len(concept_set),
            round(len(concept_set) * tokens_per_concept
                  * rng.uniform(0.8, 1.2)),
        )
        text = None
        if with_text:
            text = _synthesize_text(rng, ontology, concept_set, token_count)
        documents.append(Document(
            f"{doc_prefix}{index:05d}",
            concept_set,
            text=text,
            token_count=token_count,
            metadata={"corpus": name},
        ))
    return DocumentCollection(documents, name=name)


def _sample_document_concepts(rng: random.Random, ontology: Ontology,
                              concepts: list[ConceptId], size: int,
                              cohesion: float, radius: int
                              ) -> set[ConceptId]:
    """Mix neighborhood (cohesive) and uniform concept samples."""
    target_cohesive = round(size * cohesion)
    chosen: set[ConceptId] = set()
    attempts = 0
    while len(chosen) < target_cohesive and attempts < 8:
        attempts += 1
        seed_concept = concepts[rng.randrange(len(concepts))]
        neighborhood = _neighborhood(ontology, seed_concept, radius)
        needed = target_cohesive - len(chosen)
        if len(neighborhood) <= needed:
            chosen.update(neighborhood)
        else:
            chosen.update(rng.sample(neighborhood, needed))
    while len(chosen) < size:
        chosen.add(concepts[rng.randrange(len(concepts))])
    return chosen


def _neighborhood(ontology: Ontology, origin: ConceptId,
                  radius: int) -> list[ConceptId]:
    """Concepts within ``radius`` valid-path steps of ``origin``."""
    result: list[ConceptId] = []
    for level, nodes in ValidPathBFS(ontology, origin):
        if level > radius:
            break
        result.extend(node for node in nodes if node != ontology.root)
    return result


def _synthesize_text(rng: random.Random, ontology: Ontology,
                     concept_set: set[ConceptId], token_count: int) -> str:
    """Pseudo clinical-note text that mentions every concept label."""
    words: list[str] = []
    for concept_id in sorted(concept_set):
        words.extend(ontology.label(concept_id).split())
        words.append(_FILLER_WORDS[rng.randrange(len(_FILLER_WORDS))])
    while len(words) < token_count:
        words.append(_FILLER_WORDS[rng.randrange(len(_FILLER_WORDS))])
    return " ".join(words[:max(token_count, len(words))])


def patient_like(ontology: Ontology, *, num_docs: int = 150,
                 mean_concepts: float = 90.0, seed: int = 1,
                 with_text: bool = False) -> DocumentCollection:
    """A PATIENT-shaped corpus: few, huge, ontologically dense documents.

    Sizes are scaled down from the paper's 983 × ~707 to keep pure-Python
    experiments interactive; the PATIENT/RADIO contrasts (documents ratio,
    concepts-per-document ratio, cohesion) are preserved.
    """
    return generate_corpus(
        ontology,
        num_docs=num_docs,
        mean_concepts=mean_concepts,
        cohesion=0.85,
        neighborhood_radius=3,
        tokens_per_concept=11.6,
        with_text=with_text,
        seed=seed,
        name="PATIENT",
        doc_prefix="p",
    )


def radio_like(ontology: Ontology, *, num_docs: int = 1_200,
               mean_concepts: float = 16.0, seed: int = 2,
               with_text: bool = False) -> DocumentCollection:
    """A RADIO-shaped corpus: many, small, ontologically sparse documents."""
    return generate_corpus(
        ontology,
        num_docs=num_docs,
        mean_concepts=mean_concepts,
        cohesion=0.35,
        neighborhood_radius=2,
        tokens_per_concept=2.2,
        with_text=with_text,
        seed=seed,
        name="RADIO",
        doc_prefix="r",
    )
