"""Concept filters used before indexing (Section 6.1 of the paper).

The paper excludes two kinds of concepts before building its indexes:

* **generic concepts** — anything whose depth in the ontology is below a
  cutoff (default 4), e.g. "disease"; the remaining concepts are over 99%
  of SNOMED-CT;
* **very common concepts** — anything whose collection frequency exceeds
  μ + σ of the corpus's frequency distribution, e.g. "blood"; the kept
  concepts are about 92% of those appearing in the corpus.

Both filters return concept whitelists so they can be composed and applied
with :meth:`repro.corpus.collection.DocumentCollection.restrict_concepts`.
"""

from __future__ import annotations

import math

from repro.corpus.collection import DocumentCollection
from repro.ontology.graph import Ontology
from repro.types import ConceptId

DEFAULT_DEPTH_THRESHOLD = 4
"""The paper's default: exclude concepts at depth < 4."""


def depth_filter(ontology: Ontology, *,
                 min_depth: int = DEFAULT_DEPTH_THRESHOLD) -> set[ConceptId]:
    """Concepts whose minimum root distance is at least ``min_depth``.

    Applied to ontologies whose depth statistics resemble SNOMED's, this
    keeps the overwhelming majority of concepts while dropping the handful
    of umbrella terms near the root.
    """
    return {
        concept_id for concept_id in ontology.concepts()
        if ontology.depth(concept_id) >= min_depth
    }


def collection_frequency_cutoff(collection: DocumentCollection) -> float:
    """The μ + σ collection-frequency cutoff for a corpus.

    μ and σ are the mean and standard deviation of per-concept document
    frequencies over the concepts that actually occur in the corpus.
    """
    frequencies = list(collection.concept_frequencies().values())
    if not frequencies:
        return 0.0
    mean = sum(frequencies) / len(frequencies)
    variance = sum((f - mean) ** 2 for f in frequencies) / len(frequencies)
    return mean + math.sqrt(variance)


def frequency_filter(collection: DocumentCollection, *,
                     cutoff: float | None = None) -> set[ConceptId]:
    """Concepts whose collection frequency does not exceed the cutoff.

    With the default μ + σ cutoff this keeps roughly the bottom ~92% of a
    heavy-tailed frequency distribution, dropping ubiquitous concepts that
    carry no discriminative signal (and bloat every postings scan).
    """
    frequencies = collection.concept_frequencies()
    if cutoff is None:
        cutoff = collection_frequency_cutoff(collection)
    return {
        concept_id for concept_id, frequency in frequencies.items()
        if frequency <= cutoff
    }


def apply_default_filters(ontology: Ontology,
                          collection: DocumentCollection, *,
                          min_depth: int = DEFAULT_DEPTH_THRESHOLD,
                          frequency_cutoff: float | None = None
                          ) -> DocumentCollection:
    """Apply both paper-default filters and return the reduced corpus.

    The depth filter is evaluated only on concepts that occur in the
    corpus, so huge ontologies are never scanned in full here.
    """
    occurring = collection.distinct_concepts()
    deep_enough = {
        concept_id for concept_id in occurring
        if concept_id in ontology and ontology.depth(concept_id) >= min_depth
    }
    frequent_ok = frequency_filter(collection, cutoff=frequency_cutoff)
    return collection.restrict_concepts(deep_enough & frequent_ok)
