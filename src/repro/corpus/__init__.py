"""Corpus substrate: documents as concept sets, plus the text pipeline.

The paper views an EMR as a set of ontology concepts extracted from the
note text by MetaMap, after abbreviation expansion and removal of negated
mentions (Section 6.1).  This subpackage provides the document/collection
model, corpus statistics (Table 3), the concept filters (depth threshold
and collection-frequency μ+σ), synthetic PATIENT-like and RADIO-like corpus
generators, and a self-contained concept-extraction pipeline in
:mod:`repro.corpus.text` that stands in for MetaMap.
"""

from repro.corpus.collection import CorpusStats, DocumentCollection
from repro.corpus.document import Document
from repro.corpus.filters import (
    collection_frequency_cutoff,
    depth_filter,
    frequency_filter,
)
from repro.corpus.generators import generate_corpus, patient_like, radio_like

__all__ = [
    "Document",
    "DocumentCollection",
    "CorpusStats",
    "depth_filter",
    "frequency_filter",
    "collection_frequency_cutoff",
    "generate_corpus",
    "patient_like",
    "radio_like",
]
