"""Plain-text tables for experiment output.

The paper presents results as plots; the harness prints the same series as
aligned text tables (x value per row, one column per series), which is
what lands in ``EXPERIMENTS.md`` and in the benchmark logs.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field


@dataclass
class Table:
    """A titled grid of pre-formatted cells."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row, formatting each cell for display."""
        self.rows.append([_format(cell) for cell in cells])

    def render(self) -> str:
        """The aligned plain-text rendering of the table."""
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append(_format_row(self.headers, widths))
        lines.append("-+-".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(_format_row(row, widths))
        for note in self.notes:
            lines.append(f"# {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 0.01:
            return f"{cell:.2e}"
        return f"{cell:,.3f}"
    return str(cell)


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return " | ".join(
        cell.ljust(width) for cell, width in zip(cells, widths)
    )


def series_table(title: str, x_name: str, x_values: Sequence[object],
                 series: Mapping[str, Sequence[object]],
                 notes: Sequence[str] = ()) -> Table:
    """One row per x value, one column per named series (plot-as-table)."""
    table = Table(title, [x_name, *series], notes=list(notes))
    for index, x_value in enumerate(x_values):
        table.add_row(x_value, *(values[index] for values in series.values()))
    return table
