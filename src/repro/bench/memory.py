"""Memory footprint measurement (the paper's space arguments, measured).

Section 4.1 rules out two designs on space grounds: the all-pairs concept
matrix (``O(|C|²)``) and the TA postings index (``O(|D|·|C|)``), against
which kNDS needs only the ontology plus linear-size inverted/forward
indexes.  This module measures those footprints concretely:

* :func:`deep_sizeof` — a recursive ``sys.getsizeof`` that follows
  containers and object ``__dict__``/``__slots__``, with cycle guarding;
* :func:`index_footprint` / :func:`space_comparison` — byte counts for
  each design on a given world, plus the extrapolation to the paper's
  SNOMED/UMLS sizes where the strawmen fall over.
"""

from __future__ import annotations

import sys
from collections.abc import Mapping

from repro.baselines.matrix import ConceptDistanceMatrix
from repro.baselines.ta import ThresholdAlgorithm
from repro.bench.reporting import Table
from repro.corpus.collection import DocumentCollection
from repro.index.memory import MemoryForwardIndex, MemoryInvertedIndex
from repro.ontology.graph import Ontology


def deep_sizeof(obj: object, *, _seen: set[int] | None = None) -> int:
    """Recursive object size in bytes.

    Follows tuples/lists/sets/dicts and object attributes; shared objects
    are counted once.  Good enough for comparing data-structure designs
    (not a precise allocator audit).
    """
    seen = _seen if _seen is not None else set()
    identity = id(obj)
    if identity in seen:
        return 0
    seen.add(identity)
    size = sys.getsizeof(obj)
    if isinstance(obj, Mapping):
        for key, value in obj.items():
            size += deep_sizeof(key, _seen=seen)
            size += deep_sizeof(value, _seen=seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += deep_sizeof(item, _seen=seen)
    if hasattr(obj, "__dict__"):
        size += deep_sizeof(vars(obj), _seen=seen)
    if hasattr(obj, "__slots__"):
        for slot in obj.__slots__:  # type: ignore[attr-defined]
            if hasattr(obj, slot):
                size += deep_sizeof(getattr(obj, slot), _seen=seen)
    return size


def index_footprint(ontology: Ontology,
                    collection: DocumentCollection) -> dict[str, int]:
    """Byte footprint of each retrieval design on a concrete world.

    The TA index and distance matrix are built restricted (TA: the
    corpus's 40 most frequent concepts; matrix: 50 concepts) and scaled
    linearly/quadratically to the full universe — building them outright
    is exactly what the paper says you cannot do.
    """
    inverted = MemoryInvertedIndex.from_collection(collection)
    forward = MemoryForwardIndex.from_collection(collection)
    footprint = {
        "inverted+forward": deep_sizeof(inverted) + deep_sizeof(forward),
    }
    frequencies = collection.concept_frequencies()
    ranked = sorted(frequencies, key=frequencies.get, reverse=True)
    ta_sample = ranked[:40]
    ta = ThresholdAlgorithm.build(ontology, collection,
                                  concepts=ta_sample)
    per_concept = deep_sizeof(ta._sorted) + deep_sizeof(ta._random)
    footprint["ta_postings_full_estimate"] = round(
        per_concept / max(1, len(ta_sample)) * len(frequencies))
    matrix_sample = ranked[:50]
    matrix = ConceptDistanceMatrix.build(ontology, concepts=matrix_sample)
    pair_bytes = deep_sizeof(matrix._matrix) / max(1, matrix.entries())
    footprint["matrix_full_estimate"] = round(
        pair_bytes * len(ontology) ** 2)
    return footprint


def space_comparison(ontology: Ontology,
                     collection: DocumentCollection) -> Table:
    """Render the Section 4.1 space argument as a measured table."""
    footprint = index_footprint(ontology, collection)
    table = Table(
        "Space — retrieval index designs (Section 4.1)",
        ["design", "bytes on this world", "asymptotic"],
        notes=[
            "TA and matrix rows extrapolate restricted builds to the "
            "full concept universe",
            "paper: |C| = 296,433 (SNOMED-CT) / 2.9M (UMLS); both "
            "strawmen are dismissed on exactly this blow-up",
        ],
    )
    table.add_row("kNDS inverted+forward",
                  f"{footprint['inverted+forward']:,}",
                  "O(sum of document sizes)")
    table.add_row("TA distance-sorted postings",
                  f"{footprint['ta_postings_full_estimate']:,}",
                  "O(|D| * |C|)")
    table.add_row("all-pairs concept matrix",
                  f"{footprint['matrix_full_estimate']:,}",
                  "O(|C|^2)")
    return table
