"""Workload generation for the experiments.

The paper's query workloads (Section 6.2):

* RDS experiments average over randomly generated concept queries of a
  given size ``nq``;
* SDS document-ranking experiments pick random documents from the corpus;
* the distance-calculation experiment (Figure 6) uses randomly generated
  query *documents* with exactly ``nq`` concepts each.

All generators sample from the concepts that actually occur in the target
corpus, so PATIENT-like and RADIO-like workloads inherit the respective
corpus's ontological density — the property driving the Figure 7 contrast.
"""

from __future__ import annotations

import random

from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.types import ConceptId


def _concept_pool(collection: DocumentCollection) -> list[ConceptId]:
    pool = sorted(collection.distinct_concepts())
    if not pool:
        raise ValueError(f"collection {collection.name!r} has no concepts")
    return pool


def random_concept_queries(collection: DocumentCollection, *, nq: int,
                           count: int, seed: int = 0
                           ) -> list[tuple[ConceptId, ...]]:
    """``count`` random RDS queries with ``nq`` distinct concepts each."""
    rng = random.Random(seed)
    pool = _concept_pool(collection)
    size = min(nq, len(pool))
    return [tuple(rng.sample(pool, size)) for _ in range(count)]


def random_query_documents(collection: DocumentCollection, *, nq: int,
                           count: int, seed: int = 0) -> list[Document]:
    """Random query documents with exactly ``nq`` concepts (Figure 6)."""
    rng = random.Random(seed)
    pool = _concept_pool(collection)
    size = min(nq, len(pool))
    return [
        Document(f"q{index:04d}", rng.sample(pool, size))
        for index in range(count)
    ]


def sample_documents(collection: DocumentCollection, *, count: int,
                     seed: int = 0) -> list[Document]:
    """Random existing documents, the SDS query workload."""
    rng = random.Random(seed)
    doc_ids = collection.doc_ids()
    chosen = rng.sample(doc_ids, min(count, len(doc_ids)))
    return [collection.get(doc_id) for doc_id in chosen]
