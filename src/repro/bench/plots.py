"""ASCII charts for experiment series (terminal-friendly "figures").

The paper presents its evaluation as plots; the harness's tables carry
the same numbers, and this module renders them as horizontal log-scale
bar charts so the shapes — quadratic blowups, flat baselines, optima —
are visible at a glance in a terminal or a CI log.

Example output for a two-series table::

    Figure 9 — Query time vs k (RDS, PATIENT)
    k=3    kNDS (s)     |####                                    | 0.0056
           baseline (s) |########################################| 1.652
    ...
"""

from __future__ import annotations

import math

from repro.bench.reporting import Table

BAR_WIDTH = 40


def _parse(cell: str) -> float | None:
    try:
        return float(cell.replace(",", ""))
    except ValueError:
        return None


def render_chart(table: Table, *, width: int = BAR_WIDTH,
                 log_scale: bool = True) -> str:
    """Render a series table as grouped horizontal bars.

    The first column is treated as the x value, every further numeric
    column as a series.  With ``log_scale`` (default) bar lengths are
    proportional to the log of the value — the right scale for the
    paper's orders-of-magnitude comparisons.  Non-numeric cells are shown
    verbatim without a bar.
    """
    numeric: list[float] = []
    for row in table.rows:
        for cell in row[1:]:
            value = _parse(cell)
            if value is not None and value > 0:
                numeric.append(value)
    if not numeric:
        return table.render()
    high = max(numeric)
    low = min(numeric)

    def bar(value: float) -> str:
        if value <= 0:
            return ""
        if log_scale and high > low:
            fraction = ((math.log10(value) - math.log10(low))
                        / (math.log10(high) - math.log10(low)))
            # Keep the smallest value visible with one mark.
            length = max(1, round(fraction * width))
        elif high > 0:
            length = max(1, round(value / high * width))
        else:
            length = 0
        return "#" * length

    label_width = max(len(header) for header in table.headers[1:])
    x_width = max(
        [len(table.headers[0])]
        + [len(str(row[0])) for row in table.rows]
    )
    lines = [table.title, "=" * len(table.title)]
    if log_scale and high > low:
        lines.append(f"(log scale: {low:g} .. {high:g})")
    for row in table.rows:
        x_value = str(row[0])
        for header, cell in zip(table.headers[1:], row[1:]):
            value = _parse(cell)
            prefix = f"{x_value:<{x_width}}"
            x_value = " " * len(x_value)  # print x once per group
            if value is None:
                lines.append(
                    f"{prefix} {header:<{label_width}} {cell}")
            else:
                lines.append(
                    f"{prefix} {header:<{label_width}} "
                    f"|{bar(value):<{width}}| {cell}")
        lines.append("")
    for note in table.notes:
        lines.append(f"# {note}")
    return "\n".join(lines).rstrip() + "\n"
