"""Statistical machinery for the evaluation (Section 6.1's t-test).

The paper: "In order to examine the statistical significance of our
results, we ran a two-tailed t-test for the times reported in Figure 9
with two sample variances and found out that the execution times measured
are statistically significant with p-value < 0.001."

This module reproduces that analysis without external dependencies:

* :func:`welch_t_test` — the unequal-variances ("two sample variances")
  two-tailed t-test, with the exact Student-t p-value computed through
  the regularized incomplete beta function (continued-fraction
  evaluation, the classic Numerical Recipes formulation);
* :func:`fit_growth_model` — least-squares fits of a timing series
  against candidate complexity models (``n``, ``n log n``, ``n²``),
  quantifying the paper's "grows with nlogn rate" / "grows
  quadratically" claims instead of eyeballing them.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass


# ----------------------------------------------------------------------
# Student-t via the regularized incomplete beta function
# ----------------------------------------------------------------------
def _log_beta(a: float, b: float) -> float:
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's algorithm)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        # Even step.
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        # Odd step.
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)``, the regularized incomplete beta function."""
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    if x == 0.0 or x == 1.0:
        return x
    front = math.exp(
        a * math.log(x) + b * math.log(1.0 - x) - _log_beta(a, b)
    )
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def student_t_two_tailed_p(t_statistic: float,
                           degrees_of_freedom: float) -> float:
    """Two-tailed p-value of a Student-t statistic."""
    if degrees_of_freedom <= 0:
        raise ValueError("degrees of freedom must be positive")
    x = degrees_of_freedom / (degrees_of_freedom + t_statistic ** 2)
    return regularized_incomplete_beta(
        degrees_of_freedom / 2.0, 0.5, x)


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a Welch two-sample t-test."""

    t_statistic: float
    degrees_of_freedom: float
    p_value: float
    mean_difference: float

    def significant(self, alpha: float = 0.001) -> bool:
        """The paper's reporting threshold: p < 0.001 by default."""
        return self.p_value < alpha


def _mean_and_variance(sample: Sequence[float]) -> tuple[float, float]:
    n = len(sample)
    mean = sum(sample) / n
    variance = sum((value - mean) ** 2 for value in sample) / (n - 1)
    return mean, variance


def welch_t_test(first: Sequence[float],
                 second: Sequence[float]) -> TTestResult:
    """Two-tailed Welch's t-test (unequal variances).

    This is the "two-tailed t-test ... with two sample variances" of the
    paper's Section 6.1.
    """
    if len(first) < 2 or len(second) < 2:
        raise ValueError("each sample needs at least two observations")
    mean1, var1 = _mean_and_variance(first)
    mean2, var2 = _mean_and_variance(second)
    n1, n2 = len(first), len(second)
    se1, se2 = var1 / n1, var2 / n2
    if se1 + se2 == 0:
        # Identical constant samples: no evidence of a difference.
        return TTestResult(0.0, float(n1 + n2 - 2), 1.0, mean1 - mean2)
    t_statistic = (mean1 - mean2) / math.sqrt(se1 + se2)
    dof = (se1 + se2) ** 2 / (
        se1 ** 2 / (n1 - 1) + se2 ** 2 / (n2 - 1)
    )
    p_value = student_t_two_tailed_p(abs(t_statistic), dof)
    return TTestResult(t_statistic, dof, p_value, mean1 - mean2)


# ----------------------------------------------------------------------
# Complexity-model fitting
# ----------------------------------------------------------------------
MODELS = {
    "n": lambda n: n,
    "n log n": lambda n: n * math.log(max(n, 2)),
    "n^2": lambda n: n * n,
}


@dataclass(frozen=True)
class GrowthFit:
    """Least-squares fit of a timing series to one complexity model."""

    model: str
    coefficient: float
    r_squared: float


def fit_growth_model(sizes: Sequence[float], timings: Sequence[float]
                     ) -> list[GrowthFit]:
    """Fit ``time ≈ a · f(n)`` for each candidate model.

    Returns fits sorted by descending R² — the first entry is the model
    that explains the series best.  Used to back the paper's Figure 6 and
    Figure 8 growth-rate claims with numbers.
    """
    if len(sizes) != len(timings) or len(sizes) < 3:
        raise ValueError("need at least three (size, timing) points")
    mean_time = sum(timings) / len(timings)
    total_ss = sum((t - mean_time) ** 2 for t in timings)
    fits = []
    for name, model in MODELS.items():
        features = [model(size) for size in sizes]
        denominator = sum(f * f for f in features)
        coefficient = (
            sum(f * t for f, t in zip(features, timings)) / denominator
        )
        residual_ss = sum(
            (t - coefficient * f) ** 2 for f, t in zip(features, timings)
        )
        r_squared = 1.0 - residual_ss / total_ss if total_ss else 1.0
        fits.append(GrowthFit(name, coefficient, r_squared))
    fits.sort(key=lambda fit: -fit.r_squared)
    return fits


def best_growth_model(sizes: Sequence[float],
                      timings: Sequence[float]) -> str:
    """Name of the best-fitting complexity model."""
    return fit_growth_model(sizes, timings)[0].model
