"""Experiment definitions: one function per table/figure of the paper.

Each ``fig*``/``table*`` function rebuilds the corresponding artifact of
Section 6 on synthetic SNOMED-like data and returns a
:class:`~repro.bench.reporting.Table` with the same rows/series the paper
plots.  Absolute times differ from the paper (pure Python vs Java, scaled
corpora); the *shapes* — who wins, growth rates, where the optimal error
threshold sits — are the reproduction targets, recorded in
``EXPERIMENTS.md``.

The experiment world (ontology + PATIENT-like + RADIO-like corpora and
their search engines) is built once per scale and cached.  Run any
experiment from the command line::

    python -m repro.bench.experiments table3 fig6 --scale small
"""

from __future__ import annotations

import argparse
import time
from collections.abc import Callable
from dataclasses import dataclass
from functools import lru_cache

from repro.baselines.fullscan import FullScanSearch
from repro.baselines.pairwise import PairwiseDistanceBaseline
from repro.bench.reporting import Table, series_table
from repro.bench.workloads import (
    random_concept_queries,
    random_query_documents,
    sample_documents,
)
from repro.core.arena import PackedDeweyArena
from repro.core.drc import DRC
from repro.core.knds import KNDSConfig, KNDSearch
from repro.core.results import QueryStats
from repro.corpus.collection import DocumentCollection
from repro.corpus.generators import patient_like, radio_like
from repro.index.sqlite import SQLiteIndexStore
from repro.ontology.dewey import DeweyIndex
from repro.ontology.generators import snomed_like
from repro.ontology.graph import Ontology

DEFAULT_ERROR_THRESHOLD = {"PATIENT": 0.5, "RADIO": 0.9}
"""The per-corpus defaults the paper settles on after Figure 7."""

EPSILON_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)
K_GRID = (3, 5, 10, 50, 100)
NQ_GRID = (1, 3, 5, 10)


@dataclass(frozen=True)
class BenchScale:
    """Sizing knobs for one benchmark world."""

    name: str
    ontology_concepts: int
    patient_docs: int
    patient_concepts: float
    radio_docs: int
    radio_concepts: float
    queries_per_point: int
    pairs_per_point: int
    """Distance computations per Figure 6 data point."""


SCALES: dict[str, BenchScale] = {
    # Keeps `pytest benchmarks/` interactive; corpus ratios follow Table 3
    # (PATIENT: few huge documents; RADIO: many small ones) and corpora are
    # big enough that the paper's literal k grid (up to 100) stays a small
    # fraction of either corpus.
    "small": BenchScale("small", 3_000, 200, 50, 1_000, 12, 4, 30),
    # Closer to the paper's proportions; minutes rather than seconds.
    "medium": BenchScale("medium", 20_000, 400, 110, 4_000, 20, 8, 50),
}


@dataclass
class World:
    """A fully built benchmark world for one scale."""

    scale: BenchScale
    ontology: Ontology
    dewey: DeweyIndex
    corpora: dict[str, DocumentCollection]
    searchers: dict[str, KNDSearch]
    scanners: dict[str, FullScanSearch]

    def corpus(self, name: str) -> DocumentCollection:
        """The PATIENT or RADIO collection of this world."""
        return self.corpora[name]


@lru_cache(maxsize=2)
def build_world(scale_name: str = "small") -> World:
    """Build (once per scale) the ontology, corpora and engines."""
    scale = SCALES[scale_name]
    ontology = snomed_like(scale.ontology_concepts, seed=42)
    dewey = DeweyIndex(ontology)
    # One shared packed arena: every searcher adopts it via the DRC, so
    # concept distances computed by one scenario are cached for all.
    drc = DRC(ontology, dewey, arena=PackedDeweyArena(ontology, dewey))
    corpora = {
        "PATIENT": patient_like(
            ontology, num_docs=scale.patient_docs,
            mean_concepts=scale.patient_concepts, seed=1),
        "RADIO": radio_like(
            ontology, num_docs=scale.radio_docs,
            mean_concepts=scale.radio_concepts, seed=2),
    }
    searchers = {
        name: KNDSearch(ontology, collection, dewey=dewey, drc=drc)
        for name, collection in corpora.items()
    }
    scanners = {
        name: FullScanSearch(ontology, collection, drc=drc)
        for name, collection in corpora.items()
    }
    return World(scale, ontology, dewey, corpora, searchers, scanners)


# ----------------------------------------------------------------------
# Tables 1-3
# ----------------------------------------------------------------------
def table3_corpus_stats(scale: str = "small") -> Table:
    """Table 3: document corpus statistics for PATIENT and RADIO."""
    world = build_world(scale)
    patient = world.corpus("PATIENT").stats()
    radio = world.corpus("RADIO").stats()
    table = Table(
        "Table 3 — Document corpus statistics",
        ["", "Patient", "Radiology"],
        notes=[
            "paper: 983/12,373 docs, 16,811/8,629 concepts, "
            "8,184/273.7 tokens per doc, 706.6/125.3 concepts per doc",
        ],
    )
    for (label, _), p_cell, r_cell in zip(
            patient.as_rows(), patient.as_rows(), radio.as_rows()):
        table.add_row(label, p_cell[1], r_cell[1])
    return table


# ----------------------------------------------------------------------
# Figure 6 — distance calculation time vs query size (SDS)
# ----------------------------------------------------------------------
FIG6_NQ_GRID = (5, 10, 20, 40, 80, 160, 240)
"""Query-document sizes for Figure 6.  Real EMRs carry hundreds of
concepts (PATIENT averages 706.6 in the paper), so the interesting region
is the upper end, where BL's quadratic term dominates."""


def fig6_distance_calc(corpus: str = "PATIENT", scale: str = "small",
                       nq_values: tuple[int, ...] = FIG6_NQ_GRID) -> Table:
    """Figure 6: DRC vs the quadratic pairwise baseline (BL).

    Both methods compute ``Ddd`` between random query-document pairs with
    ``nq`` concepts each; BL grows quadratically in ``nq``, DRC near
    ``n log n``.  Per the paper's setup, both methods amortize their
    per-concept precomputation across the workload: the paper's DRC reads
    Dewey paths from an ontology index, so the shared Dewey cache is
    warmed outside the timed region (and BL's ancestor cones likewise).
    """
    world = build_world(scale)
    collection = world.corpus(corpus)
    drc = DRC(world.ontology, world.dewey)
    baseline = PairwiseDistanceBaseline(world.ontology)
    bl_times: list[float] = []
    drc_times: list[float] = []
    for nq in nq_values:
        # Large documents cost quadratically in BL; shrink the sample so
        # every grid point costs roughly the same wall clock.
        count = max(4, world.scale.pairs_per_point // (nq // 20 + 1))
        documents = random_query_documents(
            collection, nq=nq, count=2 * count, seed=nq)
        pairs = list(zip(documents[0::2], documents[1::2]))
        for document in documents:
            for concept in document.concepts:
                world.dewey.addresses(concept)
                baseline._cone(concept)
        bl_times.append(_time_per_call(
            lambda: [
                baseline.document_document_distance(a.concepts, b.concepts)
                for a, b in pairs
            ],
            len(pairs),
        ))
        drc_times.append(_time_per_call(
            lambda: [
                drc.document_document_distance(a.concepts, b.concepts)
                for a, b in pairs
            ],
            len(pairs),
        ))
    from repro.bench.statistics import best_growth_model

    bl_model = best_growth_model(list(nq_values), bl_times)
    drc_model = best_growth_model(list(nq_values), drc_times)
    return series_table(
        f"Figure 6 — Distance calculation time vs nq, SDS ({corpus})",
        "nq",
        list(nq_values),
        {"BL (s)": bl_times, "DRC (s)": drc_times},
        notes=["paper shape: BL quadratic in nq, DRC ~n log n; "
               "DRC wins at realistic document sizes",
               f"least-squares best fits: BL ~ {bl_model}, "
               f"DRC ~ {drc_model}"],
    )


# ----------------------------------------------------------------------
# Figure 7 — query time vs error threshold
# ----------------------------------------------------------------------
def fig7_error_threshold(corpus: str = "PATIENT", mode: str = "rds",
                         nq: int = 3, k: int = 10, scale: str = "small",
                         eps_values: tuple[float, ...] = EPSILON_GRID
                         ) -> Table:
    """Figure 7(a-e, g, h): kNDS time vs ``εθ``, with the paper's
    time split (distance calculation / traversal / index IO)."""
    world = build_world(scale)
    totals, distances, traversals, ios = [], [], [], []
    for epsilon in eps_values:
        stats = _run_knds_workload(world, corpus, mode, nq, k,
                                   KNDSConfig(error_threshold=epsilon))
        totals.append(stats.total_seconds)
        distances.append(stats.distance_seconds)
        traversals.append(stats.traversal_seconds)
        ios.append(stats.io_seconds)
    note = ("paper shape: PATIENT best at eps=0 and distance-dominated; "
            "RADIO improves toward large eps and traversal-dominated")
    return series_table(
        f"Figure 7 — kNDS time vs error threshold "
        f"({mode.upper()}, nq={nq}, {corpus})",
        "eps",
        list(eps_values),
        {
            "total (s)": totals,
            "distance (s)": distances,
            "traversal (s)": traversals,
            "io (s)": ios,
        },
        notes=[note],
    )


def fig7_optimal_threshold(corpus: str = "RADIO", mode: str = "rds",
                           k: int = 10, scale: str = "small",
                           nq_values: tuple[int, ...] = (3, 5, 10),
                           eps_values: tuple[float, ...] = EPSILON_GRID
                           ) -> Table:
    """Figure 7(f): the εθ minimizing query time, per query size."""
    world = build_world(scale)
    best: list[float] = []
    for nq in nq_values:
        timings = []
        for epsilon in eps_values:
            stats = _run_knds_workload(world, corpus, mode, nq, k,
                                       KNDSConfig(error_threshold=epsilon))
            timings.append((stats.total_seconds, epsilon))
        best.append(min(timings)[1])
    return series_table(
        f"Figure 7(f) — Optimal error threshold vs nq ({corpus})",
        "nq",
        list(nq_values),
        {"optimal eps": best},
        notes=["paper shape: optimal eps grows with query size on RADIO"],
    )


# ----------------------------------------------------------------------
# Figure 8 — query time vs query size (RDS)
# ----------------------------------------------------------------------
def fig8_query_size(corpus: str = "PATIENT", k: int = 10,
                    scale: str = "small",
                    nq_values: tuple[int, ...] = NQ_GRID) -> Table:
    """Figure 8: kNDS vs the full-scan baseline as ``nq`` grows."""
    world = build_world(scale)
    epsilon = DEFAULT_ERROR_THRESHOLD[corpus]
    knds_times, baseline_times = [], []
    for nq in nq_values:
        stats = _run_knds_workload(world, corpus, "rds", nq, k,
                                   KNDSConfig(error_threshold=epsilon))
        knds_times.append(stats.total_seconds)
        baseline_times.append(
            _run_baseline_workload(world, corpus, "rds", nq, k))
    return series_table(
        f"Figure 8 — Query time vs nq (RDS, {corpus})",
        "nq",
        list(nq_values),
        {"kNDS (s)": knds_times, "baseline (s)": baseline_times},
        notes=["paper shape: kNDS well below baseline at every nq"],
    )


# ----------------------------------------------------------------------
# Figure 9 — query time vs number of results k
# ----------------------------------------------------------------------
def fig9_num_results(corpus: str = "PATIENT", mode: str = "rds",
                     nq: int = 3, scale: str = "small",
                     k_values: tuple[int, ...] = K_GRID) -> Table:
    """Figure 9: kNDS vs full scan as ``k`` grows.

    The baseline is flat in ``k`` (it always scans everything); kNDS stays
    far below it and grows only mildly with ``k``.
    """
    world = build_world(scale)
    epsilon = DEFAULT_ERROR_THRESHOLD[corpus]
    knds_times, baseline_times = [], []
    for k in k_values:
        stats = _run_knds_workload(world, corpus, mode, nq, k,
                                   KNDSConfig(error_threshold=epsilon))
        knds_times.append(stats.total_seconds)
        baseline_times.append(
            _run_baseline_workload(world, corpus, mode, nq, k))
    return series_table(
        f"Figure 9 — Query time vs k ({mode.upper()}, {corpus})",
        "k",
        list(k_values),
        {"kNDS (s)": knds_times, "baseline (s)": baseline_times},
        notes=["paper shape: baseline flat in k; kNDS faster by a wide "
               "margin and insensitive to k"],
    )


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------
def ablation_queue_limit(corpus: str = "RADIO", mode: str = "sds",
                         nq: int = 5, k: int = 10, scale: str = "small",
                         limits: tuple[int | None, ...] = (
                             50, 500, 5_000, 50_000, None)) -> Table:
    """Section 6.1's queue cap: smaller caps force more DRC probes."""
    world = build_world(scale)
    epsilon = DEFAULT_ERROR_THRESHOLD[corpus]
    totals, probes, forced = [], [], []
    for limit in limits:
        stats = _run_knds_workload(
            world, corpus, mode, nq, k,
            KNDSConfig(error_threshold=epsilon, queue_limit=limit))
        totals.append(stats.total_seconds)
        probes.append(stats.drc_calls)
        forced.append(stats.forced_rounds)
    return series_table(
        f"Ablation — queue limit ({mode.upper()}, {corpus})",
        "queue limit",
        [str(limit) for limit in limits],
        {"total (s)": totals, "DRC calls": probes,
         "forced rounds": forced},
        notes=["tight caps force analysis rounds and excess DRC probes "
               "(the paper's 'excessive calls to DRC')"],
    )


def ablation_optimizations(corpus: str = "RADIO", mode: str = "rds",
                           nq: int = 5, k: int = 10,
                           scale: str = "small") -> Table:
    """The Section 5.3 optimizations, toggled one at a time."""
    world = build_world(scale)
    epsilon = DEFAULT_ERROR_THRESHOLD[corpus]
    variants: list[tuple[str, KNDSConfig]] = [
        ("all on", KNDSConfig(error_threshold=epsilon)),
        ("no pruning", KNDSConfig(error_threshold=epsilon,
                                  prune_on_update=False,
                                  prune_at_pop=False)),
        ("no covered shortcut", KNDSConfig(error_threshold=epsilon,
                                           covered_shortcut=False)),
        ("no state dedupe", KNDSConfig(error_threshold=epsilon,
                                       dedupe=False)),
    ]
    table = Table(
        f"Ablation — kNDS optimizations ({mode.upper()}, {corpus})",
        ["variant", "total (s)", "DRC calls", "docs pruned",
         "nodes visited"],
    )
    for label, config in variants:
        stats = _run_knds_workload(world, corpus, mode, nq, k, config)
        table.add_row(label, stats.total_seconds, stats.drc_calls,
                      stats.docs_pruned, stats.nodes_visited)
    return table


def ablation_index_backend(corpus: str = "RADIO", nq: int = 5, k: int = 10,
                           scale: str = "small") -> Table:
    """Memory vs SQLite index backends: the I/O split of the paper's
    MySQL deployment."""
    world = build_world(scale)
    collection = world.corpus(corpus)
    epsilon = DEFAULT_ERROR_THRESHOLD[corpus]
    config = KNDSConfig(error_threshold=epsilon)
    queries = random_concept_queries(
        collection, nq=nq, count=world.scale.queries_per_point, seed=3)

    table = Table(
        f"Ablation — index backend (RDS, {corpus})",
        ["backend", "total (s)", "io (s)", "io share"],
    )
    store = SQLiteIndexStore.build(collection)
    backends = {
        "memory": world.searchers[corpus],
        "sqlite": KNDSearch(world.ontology, collection,
                            inverted=store.inverted, forward=store.forward,
                            dewey=world.dewey),
    }
    for label, searcher in backends.items():
        merged = QueryStats()
        for query in queries:
            merged.merge(searcher.rds(query, k, config=config).stats)
        average = merged.scaled(len(queries))
        share = (average.io_seconds / average.total_seconds
                 if average.total_seconds else 0.0)
        table.add_row(label, average.total_seconds, average.io_seconds,
                      f"{share:.1%}")
    store.close()
    return table


def scalability_corpus_size(mode: str = "rds", nq: int = 3, k: int = 10,
                            scale: str = "small",
                            sizes: tuple[int, ...] = (250, 500, 1_000,
                                                      2_000)) -> Table:
    """Scalability vs corpus size |D| (the claim in the paper's title).

    The paper sweeps query size and k but not |D|; this experiment
    completes the picture.  The full-scan baseline must grow linearly in
    |D| (one DRC probe per document); kNDS's cost is governed by how many
    documents its bounds let it skip, so it grows far slower on
    RADIO-shaped corpora.
    """
    world = build_world(scale)
    knds_times: list[float] = []
    baseline_times: list[float] = []
    examined: list[int] = []
    for size in sizes:
        collection = radio_like(world.ontology, num_docs=size,
                                mean_concepts=world.scale.radio_concepts,
                                seed=83)
        searcher = KNDSearch(world.ontology, collection,
                             dewey=world.dewey)
        scanner = FullScanSearch(world.ontology, collection)
        queries = random_concept_queries(
            collection, nq=nq, count=world.scale.queries_per_point,
            seed=size)
        merged = QueryStats()
        baseline_total = 0.0
        for query in queries:
            merged.merge(searcher.rds(
                query, k,
                config=KNDSConfig(
                    error_threshold=DEFAULT_ERROR_THRESHOLD["RADIO"]),
            ).stats)
            baseline_total += scanner.rds(query, k).stats.total_seconds
        average = merged.scaled(len(queries))
        knds_times.append(average.total_seconds)
        examined.append(average.docs_examined)
        baseline_times.append(baseline_total / len(queries))
    return series_table(
        f"Scalability — query time vs corpus size ({mode.upper()}, "
        "RADIO-shaped)",
        "|D|",
        list(sizes),
        {
            "kNDS (s)": knds_times,
            "baseline (s)": baseline_times,
            "kNDS docs examined": examined,
        },
        notes=["baseline grows linearly in |D| (one exact distance per "
               "document); kNDS examines a near-constant slice"],
    )


def significance_fig9(corpus: str = "PATIENT", mode: str = "rds",
                      nq: int = 3, k: int = 10, samples: int = 12,
                      scale: str = "small") -> Table:
    """Section 6.1's statistical test, reproduced.

    "we ran a two-tailed t-test for the times reported in Figure 9 with
    two sample variances and found out that the execution times measured
    are statistically significant with p-value < 0.001."  Collects
    per-query timing samples for kNDS and the baseline at the default k
    and runs Welch's t-test.
    """
    from repro.bench.statistics import welch_t_test

    world = build_world(scale)
    collection = world.corpus(corpus)
    epsilon = DEFAULT_ERROR_THRESHOLD[corpus]
    config = KNDSConfig(error_threshold=epsilon)
    searcher = world.searchers[corpus]
    scanner = world.scanners[corpus]
    if mode == "rds":
        queries = random_concept_queries(collection, nq=nq, count=samples,
                                         seed=67)
        knds_samples = [
            searcher.rds(query, k, config=config).stats.total_seconds
            for query in queries
        ]
        baseline_samples = [
            scanner.rds(query, k).stats.total_seconds for query in queries
        ]
    else:
        documents = sample_documents(collection, count=samples, seed=67)
        knds_samples = [
            searcher.sds(document, k, config=config).stats.total_seconds
            for document in documents
        ]
        baseline_samples = [
            scanner.sds(document, k).stats.total_seconds
            for document in documents
        ]
    result = welch_t_test(knds_samples, baseline_samples)
    table = Table(
        f"Significance — kNDS vs baseline timings "
        f"({mode.upper()}, {corpus}, k={k})",
        ["quantity", "value"],
        notes=["paper, Section 6.1: two-tailed t-test with two sample "
               "variances, p < 0.001"],
    )
    table.add_row("kNDS mean (s)", sum(knds_samples) / samples)
    table.add_row("baseline mean (s)", sum(baseline_samples) / samples)
    table.add_row("t statistic", result.t_statistic)
    table.add_row("degrees of freedom", result.degrees_of_freedom)
    table.add_row("p-value", f"{result.p_value:.2e}")
    table.add_row("significant at 0.001",
                  str(result.significant(alpha=0.001)))
    return table


def ablation_ta_comparison(corpus: str = "RADIO", nq: int = 3, k: int = 10,
                           scale: str = "small") -> Table:
    """Threshold Algorithm vs kNDS for RDS (Section 4.1's discussion).

    TA queries fast *once its offline index exists*; the table therefore
    reports the index build cost and size next to the query times.  The
    index here covers only the workload's query concepts — the paper's
    full index would cover every concept (|C| lists, ``O(|D|·|C|)``
    entries).
    """
    from repro.baselines.ta import ThresholdAlgorithm

    world = build_world(scale)
    collection = world.corpus(corpus)
    queries = random_concept_queries(
        collection, nq=nq, count=world.scale.queries_per_point, seed=41)

    build_start = time.perf_counter()
    needed = sorted({concept for query in queries for concept in query})
    ta = ThresholdAlgorithm.build(world.ontology, collection,
                                  concepts=needed)
    build_seconds = time.perf_counter() - build_start

    ta_total = 0.0
    for query in queries:
        ta_total += ta.rds(query, k).stats.total_seconds
    knds_stats = _run_knds_workload(
        world, corpus, "rds", nq, k,
        KNDSConfig(error_threshold=DEFAULT_ERROR_THRESHOLD[corpus]))

    table = Table(
        f"Ablation — TA vs kNDS (RDS, {corpus}, nq={nq})",
        ["method", "query (s)", "index build (s)", "index entries"],
        notes=["TA index restricted to the workload's query concepts; the "
               "paper's full offline index is O(|D|*|C|) and must be "
               "updated for every new document (see "
               "ablation_update_cost)"],
    )
    table.add_row("TA", ta_total / len(queries), build_seconds,
                  ta.index_size())
    table.add_row("kNDS", knds_stats.total_seconds, 0.0, 0)
    return table


# ----------------------------------------------------------------------
# Shared machinery
# ----------------------------------------------------------------------
def _run_knds_workload(world: World, corpus: str, mode: str, nq: int,
                       k: int, config: KNDSConfig) -> QueryStats:
    """Average kNDS stats over the standard workload for one setting."""
    searcher = world.searchers[corpus]
    collection = world.corpus(corpus)
    merged = QueryStats()
    if mode == "rds":
        queries = random_concept_queries(
            collection, nq=nq, count=world.scale.queries_per_point, seed=nq)
        for query in queries:
            merged.merge(searcher.rds(query, k, config=config).stats)
        return merged.scaled(len(queries))
    documents = sample_documents(
        collection, count=world.scale.queries_per_point, seed=nq)
    for document in documents:
        merged.merge(searcher.sds(document, k, config=config).stats)
    return merged.scaled(len(documents))


def _run_baseline_workload(world: World, corpus: str, mode: str, nq: int,
                           k: int) -> float:
    """Average full-scan time over the standard workload."""
    scanner = world.scanners[corpus]
    collection = world.corpus(corpus)
    total = 0.0
    if mode == "rds":
        queries = random_concept_queries(
            collection, nq=nq, count=world.scale.queries_per_point, seed=nq)
        for query in queries:
            total += scanner.rds(query, k).stats.total_seconds
        return total / len(queries)
    documents = sample_documents(
        collection, count=world.scale.queries_per_point, seed=nq)
    for document in documents:
        total += scanner.sds(document, k).stats.total_seconds
    return total / len(documents)


def _time_per_call(callable_once: Callable[[], object],
                   calls: int) -> float:
    start = time.perf_counter()
    callable_once()
    return (time.perf_counter() - start) / calls


ALL_EXPERIMENTS = {
    "table3": lambda scale: [table3_corpus_stats(scale)],
    "fig6": lambda scale: [
        fig6_distance_calc("PATIENT", scale),
        fig6_distance_calc("RADIO", scale),
    ],
    "fig7": lambda scale: [
        fig7_error_threshold("PATIENT", "rds", 3, scale=scale),
        fig7_error_threshold("PATIENT", "rds", 5, scale=scale),
        fig7_error_threshold("RADIO", "rds", 3, scale=scale),
        fig7_error_threshold("RADIO", "rds", 5, scale=scale),
        fig7_error_threshold("RADIO", "rds", 10, scale=scale),
        fig7_optimal_threshold("RADIO", "rds", scale=scale),
        fig7_error_threshold("PATIENT", "sds", 3, scale=scale),
        fig7_error_threshold("RADIO", "sds", 3, scale=scale),
    ],
    "fig8": lambda scale: [
        fig8_query_size("PATIENT", scale=scale),
        fig8_query_size("RADIO", scale=scale),
    ],
    "fig9": lambda scale: [
        fig9_num_results("PATIENT", "rds", scale=scale),
        fig9_num_results("PATIENT", "sds", scale=scale),
        fig9_num_results("RADIO", "rds", scale=scale),
        fig9_num_results("RADIO", "sds", scale=scale),
    ],
    "ablations": lambda scale: [
        ablation_queue_limit(scale=scale),
        ablation_optimizations(scale=scale),
        ablation_index_backend(scale=scale),
        ablation_ta_comparison(scale=scale),
    ],
    "significance": lambda scale: [
        significance_fig9("PATIENT", "rds", scale=scale),
        significance_fig9("RADIO", "rds", scale=scale),
    ],
    "scalability": lambda scale: [
        scalability_corpus_size(scale=scale),
    ],
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run selected experiments and print their tables."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        default=[],
                        choices=list(ALL_EXPERIMENTS),
                        help="which experiments to run (default: all)")
    parser.add_argument("--scale", default="small", choices=sorted(SCALES))
    parser.add_argument("--chart", action="store_true",
                        help="render series as ASCII bar charts")
    args = parser.parse_args(argv)
    chosen = args.experiments or list(ALL_EXPERIMENTS)
    for name in chosen:
        for table in ALL_EXPERIMENTS[name](args.scale):
            if args.chart:
                from repro.bench.plots import render_chart
                print(render_chart(table))
            else:
                print(table.render())
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
